#!/usr/bin/env python3
"""Use NICE as a simulator: step-by-step executions and random walks.

Section 1.3: "The programmer can also use NICE as a simulator to perform
manually-driven, step-by-step system executions or random walks on system
states."  This example drives the Figure 1 ping system by hand — choosing
one enabled transition at a time and printing what each step does — then
runs seeded random walks over the load-balancer scenario.

Run with::

    python examples/interactive_walk.py
"""

from repro import nice, scenarios


def step_by_step() -> None:
    print("=== step-by-step execution of the Figure 1 ping system ===")
    scenario = scenarios.ping_experiment(pings=1)
    system = scenario.system_factory()
    for step in range(30):
        enabled = system.enabled_transitions()
        if not enabled:
            print(f"step {step}: quiescent — execution complete")
            break
        # A manual driver would present this menu to the user; here we take
        # the first enabled transition to keep the example non-interactive.
        print(f"step {step}: {len(enabled)} enabled: "
              f"{', '.join(repr(t) for t in enabled[:4])}"
              f"{' ...' if len(enabled) > 4 else ''}")
        chosen = enabled[0]
        system.execute(chosen)
        print(f"         executed {chosen!r} -> state "
              f"{system.state_hash()[:12]}")
    delivered = {name: len(host.received)
                 for name, host in system.hosts.items()}
    print(f"packets delivered per host: {delivered}")


def random_walks() -> None:
    print("\n=== random walks on the load balancer ===")
    scenario = scenarios.loadbalancer_scenario()
    for seed in range(3):
        result = nice.random_walk(scenario, steps=200, seed=seed)
        print(f"seed={seed}: {result.transitions_executed} transitions, "
              f"{result.unique_states} unique states, "
              f"{len(result.violations)} violations")


def main() -> int:
    step_by_step()
    random_walks()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
