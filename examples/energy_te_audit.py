#!/usr/bin/env python3
"""Audit the energy-efficient traffic-engineering application (Section 8.3).

Demonstrates the part of NICE that goes beyond packets: *symbolic
statistics*.  The application flips between energy states when link
utilization crosses a threshold, but the model's tiny traffic volumes would
never reach it — NICE concolically executes the statistics handler to find
representative counter values for each handler path (``discover_stats``) and
explores both the low- and high-load behaviors.

Run with::

    python examples/energy_te_audit.py
"""

from repro import nice, scenarios
from repro.apps.energy_te import expected_path
from repro.config import NiceConfig
from repro.properties import NoForgottenPackets, UseCorrectRoutingTable

STAGES = [
    ("original (BUG-VIII: first packet never forwarded)",
     dict(bug_viii=True, bug_ix=True, bug_x=True, bug_xi=True), 1),
    ("after BUG-VIII fix (BUG-IX: race at the on-demand switch)",
     dict(bug_viii=False, bug_ix=True, bug_x=True, bug_xi=True), 1),
    ("after BUG-IX fix (BUG-X: every high-load flow goes on-demand)",
     dict(bug_viii=False, bug_ix=False, bug_x=True, bug_xi=True), 1),
    ("after BUG-X fix (BUG-XI: packets dropped when load reduces)",
     dict(bug_viii=False, bug_ix=False, bug_x=False, bug_xi=True), 2),
    ("all fixes applied",
     dict(bug_viii=False, bug_ix=False, bug_x=False, bug_xi=False), 2),
]


def main() -> int:
    print("Auditing REsPoNse-style traffic engineering with NICE.")
    print("Topology: 3 switches in a triangle; the third switch lies on the "
          "on-demand path.\n")

    for description, flags, polls in STAGES:
        scenario = scenarios.energy_te_scenario(
            properties=[NoForgottenPackets(),
                        UseCorrectRoutingTable(expected_path)],
            polls=polls, **flags)
        result = nice.run(scenario)
        status = "VIOLATION" if result.found_violation else "clean"
        print(f"[{status}] {description}")
        print(f"  transitions={result.transitions_executed}, "
              f"time={result.wall_time:.2f}s, "
              f"discover_stats runs={result.discover_stats_runs}")
        for violation in result.violations[:1]:
            print(f"  -> {violation.property_name}: "
                  f"{violation.message[:110]}")
        expected_clean = not any(flags.values())
        if expected_clean and result.found_violation:
            print("unexpected: fixed variant violates")
            return 1
        if not expected_clean and not result.found_violation:
            print("unexpected: bug not reproduced")
            return 1
        print()

    print("All four bugs reproduced and all fixes verified.")
    print("\nNote the discover_stats counts above: finding BUG-X and BUG-XI "
          "requires the concolic engine to synthesize high-utilization "
          "statistics that the model's real counters never reach.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
