#!/usr/bin/env python3
"""Quickstart: find a real bug in an unmodified controller program.

This reproduces the paper's flagship result on the MAC-learning switch
(Figure 3 / Section 8.1): NICE's combination of model checking and concolic
execution automatically discovers that pyswitch installs a forwarding rule
in only one direction, so after two hosts have exchanged packets both ways a
third packet still needlessly goes to the controller — a violation of the
StrictDirectPaths property (BUG-II).

Run with::

    python examples/quickstart.py
"""

from repro import nice, scenarios
from repro.apps.pyswitch_fixed import PySwitchFixed
from repro.mc.replay import format_trace


def main() -> int:
    print("Testing the unmodified pyswitch application...")
    scenario = scenarios.pyswitch_direct_path()
    result = nice.run(scenario)

    print(result.summary())
    if not result.found_violation:
        print("unexpected: no violation found")
        return 1

    violation = result.violations[0]
    print(f"\nBUG-II reproduced: {violation.property_name}")
    print(f"  {violation.message}")
    print("\nDeterministic trace that reproduces the bug:")
    print(format_trace(violation.trace))

    # Every violation comes with a replayable trace (Section 6).
    replayed = nice.replay(scenario, violation.trace,
                           expected_hash=violation.state_hash)
    print(f"\nreplay verified: final state {replayed.state_hash()[:12]}... "
          f"matches the recorded violation state")

    print("\nNow testing the fixed variant (reverse rule installed first)...")
    fixed = scenarios.pyswitch_direct_path(app_factory=PySwitchFixed)
    result_fixed = nice.run(fixed)
    print(result_fixed.summary())
    if result_fixed.found_violation:
        print("unexpected: the fixed variant still violates")
        return 1
    print("\nfixed variant passes StrictDirectPaths — bug gone.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
