#!/usr/bin/env python3
"""Audit the web server load balancer (Section 8.2).

Walks the paper's fix-one-find-the-next narrative: starting from the
original application (all four bugs present), NICE finds a violation, we
apply the corresponding fix, and re-run — until only the un-fixable design
flaw (BUG-VII, the duplicate-SYN policy ambiguity) remains.

Run with::

    python examples/loadbalancer_audit.py
"""

from repro import nice, scenarios
from repro.properties import FlowAffinity, NoForgottenPackets

#: (description, bug flags) in the order the paper discovers them.
AUDIT_STAGES = [
    ("original application (BUG-IV..VII present)",
     dict(bug_iv=True, bug_v=True, bug_vi=True, bug_vii=True)),
    ("after BUG-IV fix (forward the triggering packet)",
     dict(bug_iv=False, bug_v=True, bug_vi=True, bug_vii=True)),
    ("after BUG-V fix (install redirect before deleting)",
     dict(bug_iv=False, bug_v=False, bug_vi=True, bug_vii=True)),
    ("after BUG-VI fix (discard answered ARP buffers)",
     dict(bug_iv=False, bug_v=False, bug_vi=False, bug_vii=True)),
]


def run_stage(description: str, flags: dict, properties) -> bool:
    scenario = scenarios.loadbalancer_scenario(properties=properties, **flags)
    result = nice.run(scenario)
    status = "VIOLATION" if result.found_violation else "clean"
    print(f"\n[{status}] {description}")
    print(f"  transitions={result.transitions_executed}, "
          f"time={result.wall_time:.2f}s, "
          f"discover_packets runs={result.discover_packet_runs}")
    for violation in result.violations:
        print(f"  -> {violation.property_name}: {violation.message[:110]}")
    return result.found_violation


def main() -> int:
    print("Auditing the wildcard-rule load balancer with NICE.")
    print("Topology: 1 switch, 1 client, 2 replicas; a policy change "
          "fires mid-run.")

    for description, flags in AUDIT_STAGES:
        run_stage(description, flags,
                  [NoForgottenPackets(), FlowAffinity(["R1", "R2"])])

    print("\nFinal stage: only BUG-VII remains — the duplicate-SYN design "
          "flaw.")
    found = run_stage(
        "duplicate SYN during policy transition (FlowAffinity)",
        dict(bug_iv=False, bug_v=False, bug_vi=False, bug_vii=True),
        [FlowAffinity(["R1", "R2"])],
    )
    if not found:
        print("unexpected: BUG-VII not reproduced")
        return 1

    print("\nBUG-VII has no complete fix (Section 8.2: the load balancer "
          "cannot distinguish a retransmitted SYN from a new flow once the "
          "original went through the data plane); the fixed variant keeps "
          "controller-visible flows pinned, which is as far as a fix can go.")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
