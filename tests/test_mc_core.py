"""Tests for canonical serialization, the system model, and replay."""

import pytest
from hypothesis import given, strategies as st

from repro import scenarios
from repro.config import NiceConfig
from repro.errors import ReplayError, TransitionError
from repro.mc import transitions as tk
from repro.mc.canonical import canonicalize, state_hash, state_string
from repro.mc.replay import format_trace, replay_steps, replay_trace
from repro.mc.transitions import Transition


class TestCanonicalize:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "x", b"y"):
            assert canonicalize(value) == value

    def test_dict_key_order_irrelevant(self):
        assert canonicalize({"a": 1, "b": 2}) == canonicalize({"b": 2, "a": 1})

    def test_set_order_irrelevant(self):
        assert canonicalize({3, 1, 2}) == canonicalize({2, 3, 1})

    def test_list_order_matters(self):
        assert canonicalize([1, 2]) != canonicalize([2, 1])

    def test_objects_with_canonical_method(self):
        from repro.openflow.packet import MacAddress

        mac = MacAddress.from_int(5)
        assert canonicalize(mac) == mac.canonical()

    def test_plain_objects_use_vars(self):
        class Thing:
            def __init__(self):
                self.x = 1

        assert canonicalize(Thing()) == ("obj", "Thing", ("dict", ("x", 1)))

    def test_uncanonicalizable_raises(self):
        with pytest.raises(TypeError):
            canonicalize(object())

    @given(st.dictionaries(st.text(max_size=5), st.integers(), max_size=6))
    def test_hash_stable_across_insertion_orders(self, data):
        reordered = dict(sorted(data.items(), reverse=True))
        assert state_hash(data) == state_hash(reordered)

    def test_state_string_is_deterministic(self):
        payload = {"z": [1, 2], "a": {"nested": True}}
        assert state_string(payload) == state_string(payload)


class TestTransitionDescriptors:
    def test_equality_and_hash(self):
        a = Transition(tk.PROCESS_PKT, "s1")
        b = Transition(tk.PROCESS_PKT, "s1")
        c = Transition(tk.PROCESS_PKT, "s2")
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_payload_not_part_of_identity(self):
        a = Transition(tk.HOST_SEND, "A", ("sym", (1, 2)), payload="X")
        b = Transition(tk.HOST_SEND, "A", ("sym", (1, 2)), payload="Y")
        assert a == b

    def test_repr(self):
        assert repr(Transition(tk.HOST_RECV, "A")) == "host_recv(A)"
        assert "script" in repr(Transition(tk.HOST_SEND, "A", ("script", 0)))


class TestSystemModel:
    def make_system(self):
        return scenarios.ping_experiment(pings=1).system_factory()

    def test_boot_delivers_switch_joins(self):
        system = self.make_system()
        assert set(system.app.ctrl_state) == {"s1", "s2"}

    def test_initial_enabled_transitions(self):
        system = self.make_system()
        kinds = {(t.kind, t.actor) for t in system.enabled_transitions()}
        assert (tk.HOST_SEND, "A") in {(k, a) for k, a in kinds}

    def test_execute_unknown_switch_raises(self):
        system = self.make_system()
        with pytest.raises(TransitionError):
            system.execute(Transition(tk.PROCESS_PKT, "ghost"))

    def test_clone_isolates_mutation(self):
        system = self.make_system()
        clone = system.clone()
        send = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        system.execute(send)
        assert system.state_hash() != clone.state_hash()
        assert clone.hosts["A"].sent_count == 0

    def test_clone_shares_topology(self):
        system = self.make_system()
        assert system.clone().topo is system.topo

    def test_route_to_missing_attachment_records_loss(self):
        system = self.make_system()
        packet = system.hosts["A"].script[0].copy()
        packet.uid = ("test", 1)
        system.route("s1", [(2, packet)])   # port 2 leads to s2: delivered
        assert not system.ledger.lost
        # detach B and route to its port on s2
        system.attachments.pop(("s2", 2))
        packet2 = packet.copy()
        system.route("s2", [(2, packet2)])
        assert system.ledger.lost

    def test_uid_assignment_is_content_based(self):
        a = self.make_system()
        b = self.make_system()
        send = [t for t in a.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        a.execute(send)
        b.execute(send)
        assert a.ledger.injected == b.ledger.injected

    def test_state_hash_equal_for_equal_histories(self):
        a, b = self.make_system(), self.make_system()
        assert a.state_hash() == b.state_hash()

    def test_quiescent_after_full_run(self):
        system = self.make_system()
        for _ in range(100):
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system.execute(enabled[0])
        assert system.quiescent()
        assert len(system.hosts["A"].received) >= 1  # pong came back

    def test_ctrl_event_fires_once(self):
        scenario = scenarios.loadbalancer_scenario()
        system = scenario.system_factory()
        event = [t for t in system.enabled_transitions()
                 if t.kind == tk.CTRL_EVENT][0]
        system.execute(event)
        assert system.app.mode == "transition"
        with pytest.raises(TransitionError):
            system.execute(event)

    def test_host_move_updates_attachments(self):
        scenario = scenarios.pyswitch_mobile()
        system = scenario.system_factory()
        move = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_MOVE][0]
        system.execute(move)
        assert system.host_locations["B"] == ("s1", 3)
        assert system.attachments[("s1", 3)] == "B"
        assert ("s1", 2) not in system.attachments


class TestReplay:
    def test_replay_reaches_same_state(self):
        scenario = scenarios.ping_experiment(pings=1)
        system = scenario.system_factory()
        trace = []
        for _ in range(12):
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system.execute(enabled[-1])
            trace.append(enabled[-1])
        replayed = replay_trace(scenario.system_factory, trace,
                                expected_hash=system.state_hash())
        assert replayed.state_hash() == system.state_hash()

    def test_replay_detects_mismatch(self):
        scenario = scenarios.ping_experiment(pings=1)
        with pytest.raises(ReplayError):
            replay_trace(scenario.system_factory, [],
                         expected_hash="definitely-not-the-hash")

    def test_replay_invalid_transition_raises(self):
        scenario = scenarios.ping_experiment(pings=1)
        bogus = [Transition(tk.PROCESS_PKT, "s1")]  # nothing queued yet
        with pytest.raises(ReplayError):
            replay_trace(scenario.system_factory, bogus)

    def test_replay_steps_yields_intermediates(self):
        scenario = scenarios.ping_experiment(pings=1)
        system = scenario.system_factory()
        enabled = system.enabled_transitions()
        system.execute(enabled[0])
        steps = list(replay_steps(scenario.system_factory, [enabled[0]]))
        assert len(steps) == 2
        assert steps[0][0] == -1
        assert steps[1][1] == enabled[0]

    def test_format_trace(self):
        text = format_trace([Transition(tk.HOST_RECV, "A")])
        assert "host_recv(A)" in text
        assert format_trace([]) == "(empty trace)"


class TestSearchModes:
    def test_bfs_explores_same_reachable_space(self):
        import dataclasses

        base = scenarios.ping_experiment(pings=1)
        dfs = base
        bfs = scenarios.ping_experiment(
            pings=1, config=NiceConfig(search_order="bfs"))
        from repro import nice

        r_dfs, r_bfs = nice.run(dfs), nice.run(bfs)
        assert r_dfs.unique_states == r_bfs.unique_states

    def test_random_walk_is_seeded(self):
        from repro import nice

        scenario = scenarios.ping_experiment(pings=2)
        a = nice.random_walk(scenario, steps=50, seed=3)
        b = nice.random_walk(scenario, steps=50, seed=3)
        assert a.transitions_executed == b.transitions_executed
        assert a.unique_states == b.unique_states

    def test_max_depth_bounds_search(self):
        from repro import nice

        scenario = scenarios.ping_experiment(
            pings=2, config=NiceConfig(max_depth=3))
        bounded = nice.run(scenario)
        full = nice.run(scenarios.ping_experiment(pings=2))
        assert bounded.transitions_executed < full.transitions_executed

    def test_disabling_state_matching_counts_revisits(self):
        from repro import nice

        config = NiceConfig(state_matching=False, max_transitions=2000)
        result = nice.run(scenarios.ping_experiment(pings=1, config=config))
        exhaustive = nice.run(scenarios.ping_experiment(pings=1))
        assert result.transitions_executed >= exhaustive.transitions_executed
