"""Integration: the Section 8 bug matrix.

Every one of the paper's eleven bugs must be (a) found by NICE under the
default PKT-SEQ search, (b) gone in the fixed variant, and (c) found or
missed by each heuristic strategy exactly as Table 2 reports:

* NO-DELAY misses the race/statistics bugs V, X, XI and finds the rest;
* FLOW-IR misses only BUG-VII (the duplicate SYN is treated as a new,
  independent flow);
* UNUSUAL misses nothing.
"""

import pytest

from repro import nice, scenarios
from repro.apps.energy_te import expected_path
from repro.apps.pyswitch_fixed import (
    PySwitchFixed,
    PySwitchNaiveFix,
    PySwitchSpanningTree,
)
from repro.config import NiceConfig
from repro.properties import (
    FlowAffinity,
    NoForgottenPackets,
    UseCorrectRoutingTable,
)


def cfg(strategy="PKT-SEQ"):
    return NiceConfig(strategy=strategy)


def lb_scenario(bug, strategy="PKT-SEQ"):
    flags = {f"bug_{n}": False for n in ("iv", "v", "vi", "vii")}
    flags[f"bug_{bug}"] = True
    properties = ([FlowAffinity(["R1", "R2"])] if bug == "vii"
                  else [NoForgottenPackets()])
    return scenarios.loadbalancer_scenario(
        properties=properties, config=cfg(strategy), **flags)


def te_scenario(bug, strategy="PKT-SEQ"):
    flags = {f"bug_{n}": False for n in ("viii", "ix", "x", "xi")}
    flags[f"bug_{bug}"] = True
    properties = ([UseCorrectRoutingTable(expected_path)] if bug == "x"
                  else [NoForgottenPackets()])
    polls = 2 if bug == "xi" else 1
    return scenarios.energy_te_scenario(
        properties=properties, polls=polls, config=cfg(strategy), **flags)


class TestPySwitchBugs:
    def test_bug_i_host_unreachable_after_moving(self):
        result = nice.run(scenarios.pyswitch_mobile())
        assert result.found_violation
        assert result.violations[0].property_name == "NoBlackHoles"

    def test_bug_ii_delayed_direct_path(self):
        result = nice.run(scenarios.pyswitch_direct_path())
        assert result.found_violation
        assert result.violations[0].property_name == "StrictDirectPaths"

    def test_bug_ii_fixed_variant_passes(self):
        result = nice.run(scenarios.pyswitch_direct_path(
            app_factory=PySwitchFixed))
        assert not result.found_violation

    def test_bug_ii_naive_fix_still_races(self):
        # Section 8.1: "fixing this bug can easily introduce another one" —
        # installing the reverse rule after releasing the packet leaves the
        # race in place.
        result = nice.run(scenarios.pyswitch_direct_path(
            app_factory=PySwitchNaiveFix))
        assert result.found_violation

    def test_bug_iii_excess_flooding(self):
        result = nice.run(scenarios.pyswitch_loop())
        assert result.found_violation
        assert result.violations[0].property_name == "NoForwardingLoops"

    def test_bug_iii_spanning_tree_fix_passes(self):
        result = nice.run(scenarios.pyswitch_loop(
            app_factory=PySwitchSpanningTree))
        assert not result.found_violation

    def test_violation_trace_replays(self):
        scenario = scenarios.pyswitch_loop()
        result = nice.run(scenario)
        violation = result.violations[0]
        system = nice.replay(scenario, violation.trace,
                             expected_hash=violation.state_hash)
        assert system.state_hash() == violation.state_hash


class TestLoadBalancerBugs:
    def test_bug_iv_next_packet_dropped(self):
        result = nice.run(lb_scenario("iv"))
        assert result.found_violation
        assert result.violations[0].property_name == "NoForgottenPackets"

    def test_bug_v_packets_dropped_in_update_window(self):
        result = nice.run(lb_scenario("v"))
        assert result.found_violation

    def test_bug_vi_arp_request_forgotten(self):
        result = nice.run(lb_scenario("vi"))
        assert result.found_violation

    def test_bug_vii_duplicate_syn_splits_connection(self):
        result = nice.run(lb_scenario("vii"))
        assert result.found_violation
        assert result.violations[0].property_name == "FlowAffinity"

    def test_all_fixed_passes_no_forgotten_packets(self):
        result = nice.run(scenarios.loadbalancer_scenario(
            bug_iv=False, bug_v=False, bug_vi=False, bug_vii=False,
            properties=[NoForgottenPackets()]))
        assert not result.found_violation


class TestEnergyTEBugs:
    def test_bug_viii_first_packet_dropped(self):
        result = nice.run(te_scenario("viii"))
        assert result.found_violation

    def test_bug_ix_intermediate_switch_race(self):
        result = nice.run(te_scenario("ix"))
        assert result.found_violation

    def test_bug_x_only_on_demand_routes(self):
        result = nice.run(te_scenario("x"))
        assert result.found_violation
        assert result.violations[0].property_name == "UseCorrectRoutingTable"

    def test_bug_xi_packets_dropped_when_load_reduces(self):
        result = nice.run(te_scenario("xi"))
        assert result.found_violation

    def test_all_fixed_passes(self):
        result = nice.run(scenarios.energy_te_scenario(
            bug_viii=False, bug_ix=False, bug_x=False, bug_xi=False,
            properties=[NoForgottenPackets(),
                        UseCorrectRoutingTable(expected_path)],
            polls=1))
        assert not result.found_violation


class TestStrategyMissMatrix:
    """The Missed cells of Table 2."""

    def test_no_delay_misses_bug_v(self):
        assert not nice.run(lb_scenario("v", "NO-DELAY")).found_violation

    def test_no_delay_misses_bug_x(self):
        assert not nice.run(te_scenario("x", "NO-DELAY")).found_violation

    def test_no_delay_misses_bug_xi(self):
        assert not nice.run(te_scenario("xi", "NO-DELAY")).found_violation

    def test_no_delay_still_finds_bug_iv(self):
        assert nice.run(lb_scenario("iv", "NO-DELAY")).found_violation

    def test_no_delay_still_finds_bug_ix(self):
        # The cross-switch installation race survives NO-DELAY because only
        # per-channel communication is atomic (Table 2 reports NO-DELAY
        # finding BUG-IX).
        assert nice.run(te_scenario("ix", "NO-DELAY")).found_violation

    def test_flow_ir_misses_bug_vii(self):
        assert not nice.run(lb_scenario("vii", "FLOW-IR")).found_violation

    def test_flow_ir_still_finds_bug_iv(self):
        assert nice.run(lb_scenario("iv", "FLOW-IR")).found_violation

    @pytest.mark.parametrize("bug,builder", [
        ("v", lb_scenario), ("vii", lb_scenario),
        ("ix", te_scenario), ("x", te_scenario), ("xi", te_scenario),
    ])
    def test_unusual_misses_nothing(self, bug, builder):
        assert nice.run(builder(bug, "UNUSUAL")).found_violation


class TestBugVIIDesignFlaw:
    """BUG-VII is a design flaw without a complete fix (Section 8.2: the
    authors of the load balancer 'only realized this was a problem after
    careful consideration').  The controller-visible half — a duplicate SYN
    re-assigning a flow the controller already tracks — is fixable and the
    fixed variant must keep the original assignment."""

    def test_fixed_keeps_known_flow_assignment(self):
        from repro.apps.loadbalancer_fixed import LoadBalancerFixed
        from repro.controller.api import RecordingControllerAPI
        from repro.openflow.packet import TCP_SYN, tcp_packet
        from repro.scenarios import (
            IP_A, MAC_A, VIP, VIP_MAC, _lb_replicas)

        app = LoadBalancerFixed(
            switch="s1", client_port=1, client_ip=IP_A, vip=VIP,
            vip_mac=VIP_MAC, replicas=_lb_replicas())
        api = RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        data = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80)
        app.packet_in(api, "s1", 1, data, 1, "action")
        assert app.flow_assignments[(IP_A, 1000)] == 0  # old policy
        dup_syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80,
                             flags=TCP_SYN)
        app.packet_in(api, "s1", 1, dup_syn, 2, "action")
        assert app.flow_assignments[(IP_A, 1000)] == 0  # unchanged

    def test_buggy_reassigns_known_flow(self):
        from repro.apps.loadbalancer import LoadBalancer
        from repro.controller.api import RecordingControllerAPI
        from repro.openflow.packet import TCP_SYN, tcp_packet
        from repro.scenarios import (
            IP_A, MAC_A, VIP, VIP_MAC, _lb_replicas)

        app = LoadBalancer(
            switch="s1", client_port=1, client_ip=IP_A, vip=VIP,
            vip_mac=VIP_MAC, replicas=_lb_replicas())
        api = RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        data = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80)
        app.packet_in(api, "s1", 1, data, 1, "action")
        dup_syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80,
                             flags=TCP_SYN)
        app.packet_in(api, "s1", 1, dup_syn, 2, "action")
        assert app.flow_assignments[(IP_A, 1000)] == 1  # re-assigned
