"""End-to-end integration scenarios beyond the bug matrix."""

import dataclasses

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc import transitions as tk
from repro.properties import (
    DirectPaths,
    NoBlackHoles,
    NoForgottenPackets,
    NoForwardingLoops,
    make_properties,
)


class TestCleanRunsSatisfyEverything:
    """The generic property library must hold on correct executions —
    no false positives (Section 8.4: "there are no false positives in our
    case studies")."""

    def test_ping_satisfies_generic_properties(self):
        base = scenarios.ping_experiment(pings=2)
        scenario = nice.Scenario(
            base.topo, base.app_factory, base.hosts_factory,
            make_properties(["NoForwardingLoops", "NoBlackHoles",
                             "NoForgottenPackets"]),
            base.config, name="ping-props")
        result = nice.run(scenario)
        assert not result.found_violation
        assert result.terminated == "exhausted"

    def test_fixed_lb_satisfies_generic_properties(self):
        scenario = scenarios.loadbalancer_scenario(
            bug_iv=False, bug_v=False, bug_vi=False, bug_vii=False,
            properties=make_properties(
                ["NoForwardingLoops", "NoForgottenPackets"]))
        result = nice.run(scenario)
        assert not result.found_violation


class TestSymbolicDiscoveryThroughSearch:
    def test_discovery_cached_per_controller_state(self):
        scenario = scenarios.pyswitch_direct_path()
        searcher = scenario.make_searcher()
        result = searcher.run()
        # Far fewer discovery runs than states: the Figure 5 cache works.
        assert 0 < result.discover_packet_runs < result.unique_states

    def test_stats_discovery_only_when_pending(self):
        scenario = scenarios.pyswitch_direct_path()  # no stats traffic
        result = nice.run(scenario)
        assert result.discover_stats_runs == 0

    def test_te_explores_both_load_states(self):
        """discover_stats makes the high-load path reachable even though
        the model's real counters never cross the threshold."""
        from repro.properties.base import Property

        class SawHighLoad(Property):
            name = "SawHighLoad"

            def check(self, system, transition):
                if system.app.energy_state == "high":
                    self.violation("high-load state reached")

        scenario = scenarios.energy_te_scenario(
            bug_viii=False, bug_ix=False, bug_x=False, bug_xi=False,
            properties=[SawHighLoad()], polls=1)
        result = nice.run(scenario)
        assert result.found_violation  # i.e. high load was explored


class TestSearchBudgets:
    @pytest.mark.slow
    def test_first_violation_stops_early(self):
        stop = nice.run(scenarios.pyswitch_loop())
        keep = nice.run(
            scenarios.pyswitch_loop(config=dataclasses.replace(
                NiceConfig(), stop_at_first_violation=False,
                max_transitions=2000)))
        assert stop.terminated == "first_violation"
        assert len(keep.violations) >= len(stop.violations)
        assert keep.transitions_executed > stop.transitions_executed

    def test_violation_traces_are_minimal_ish(self):
        # DFS finds a short trace for the loop bug; the trace must stay
        # bounded by the depth it was found at.
        result = nice.run(scenarios.pyswitch_loop())
        assert len(result.violations[0].trace) <= 30


class TestMobilityEndToEnd:
    def test_traffic_follows_host_after_move_with_flooding(self):
        """Sanity for the mobility model itself: with no rules installed
        (flood-only controller), packets reach B wherever it sits."""
        from repro.controller.app import App

        class FloodEverything(App):
            name = "hub"

            def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
                api.flood_packet(sw_id, None, bufid)

        base = scenarios.pyswitch_mobile(app_factory=FloodEverything)
        system = base.system_factory()
        move = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_MOVE][0]
        system.execute(move)
        send = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_SEND and t.actor == "A"][0]
        system.execute(send)
        for _ in range(60):
            enabled = [t for t in system.enabled_transitions()
                       if t.kind in (tk.PROCESS_PKT, tk.PROCESS_OF,
                                     tk.CTRL_HANDLE, tk.HOST_RECV)]
            if not enabled:
                break
            system.execute(enabled[0])
        received_by_b = [p for p in system.hosts["B"].received]
        assert received_by_b, "flooded packet must reach B's new location"
