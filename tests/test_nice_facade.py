"""Tests for the NICE facade and the predefined scenarios."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc import transitions as tk


class TestScenarioObject:
    def test_factories_produce_fresh_state(self):
        scenario = scenarios.pyswitch_loop()
        a = scenario.system_factory()
        b = scenario.system_factory()
        assert a is not b
        assert a.state_hash() == b.state_hash()
        send = [t for t in a.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        a.execute(send)
        assert a.state_hash() != b.state_hash()

    def test_searcher_has_symbolic_engine_when_configured(self):
        with_se = scenarios.pyswitch_direct_path().make_searcher()
        assert with_se.discoverer is not None
        without = scenarios.ping_experiment(pings=1).make_searcher()
        assert without.discoverer is None

    def test_all_builders_construct(self):
        builders = [
            scenarios.ping_experiment,
            scenarios.pyswitch_mobile,
            scenarios.pyswitch_direct_path,
            scenarios.pyswitch_loop,
            scenarios.loadbalancer_scenario,
            scenarios.energy_te_scenario,
        ]
        for builder in builders:
            scenario = builder()
            system = scenario.system_factory()
            # Purely-symbolic scenarios get their sends from the searcher's
            # discover_packets, so the base enabled set may be empty.
            assert (system.enabled_transitions()
                    or scenario.config.use_symbolic_execution)


class TestRunAndReplay:
    def test_run_returns_statistics(self):
        result = nice.run(scenarios.ping_experiment(pings=1))
        assert result.terminated == "exhausted"
        assert result.transitions_executed > 0
        assert result.unique_states > 0
        assert "transitions executed" in result.summary()

    def test_every_violation_trace_replays(self):
        scenario = scenarios.pyswitch_loop()
        result = nice.run(scenario)
        for violation in result.violations:
            replayed = nice.replay(scenario, violation.trace,
                                   expected_hash=violation.state_hash)
            assert replayed.state_hash() == violation.state_hash

    def test_violation_detection_is_deterministic(self):
        first = nice.run(scenarios.pyswitch_loop())
        second = nice.run(scenarios.pyswitch_loop())
        assert first.transitions_executed == second.transitions_executed
        assert (first.violations[0].trace == second.violations[0].trace)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(0, 1000))
    def test_random_walks_never_crash(self, seed):
        result = nice.random_walk(scenarios.ping_experiment(pings=2),
                                  steps=60, seed=seed)
        assert result.transitions_executed <= 60

    def test_search_determinism_across_orders(self):
        # DFS and BFS must agree on the reachable state count (same graph).
        dfs = nice.run(scenarios.ping_experiment(pings=2))
        bfs = nice.run(scenarios.ping_experiment(
            pings=2, config=NiceConfig(search_order="bfs")))
        assert dfs.unique_states == bfs.unique_states


class TestConfigValidation:
    def test_rejects_unknown_strategy(self):
        with pytest.raises(ValueError):
            NiceConfig(strategy="TELEPORT")

    def test_rejects_unknown_order(self):
        with pytest.raises(ValueError):
            NiceConfig(search_order="spiral")

    def test_rejects_bad_bounds(self):
        with pytest.raises(ValueError):
            NiceConfig(max_pkt_sequence=-1)
        with pytest.raises(ValueError):
            NiceConfig(max_outstanding=0)
        with pytest.raises(ValueError):
            NiceConfig(max_paths=0)
