"""Unit tests for rules, actions, and OpenFlow messages."""

import pytest

from repro.controller.api import normalize_actions
from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    ActionSetDlDst,
    ActionSetDlSrc,
    ActionTable,
    actions_from_pair,
    canonical_actions,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    FlowMod,
    OFPFC_ADD,
    PacketOut,
    StatsReply,
)
from repro.openflow.packet import MacAddress
from repro.openflow.rules import DEFAULT_PRIORITY, PERMANENT, Rule


class TestActions:
    def test_value_equality(self):
        assert ActionOutput(3) == ActionOutput(3)
        assert ActionOutput(3) != ActionOutput(4)
        assert ActionFlood() == ActionFlood()
        assert ActionFlood() != ActionDrop()

    def test_hashable(self):
        actions = {ActionOutput(1), ActionOutput(1), ActionDrop()}
        assert len(actions) == 2

    def test_set_dl_actions_carry_mac(self):
        mac = MacAddress.from_int(9)
        assert ActionSetDlSrc(mac).canonical() == ("set_dl_src", repr(mac))
        assert ActionSetDlDst(mac) != ActionSetDlSrc(mac)

    def test_paper_pair_style(self):
        assert actions_from_pair("output", 7) == [ActionOutput(7)]
        assert actions_from_pair("flood", None) == [ActionFlood()]
        assert actions_from_pair("controller", None) == [ActionController()]
        with pytest.raises(ValueError):
            actions_from_pair("warp", 1)

    def test_canonical_actions_order_sensitive(self):
        a = canonical_actions([ActionSetDlDst(MacAddress.from_int(1)),
                               ActionOutput(2)])
        b = canonical_actions([ActionOutput(2),
                               ActionSetDlDst(MacAddress.from_int(1))])
        assert a != b   # action lists execute in order


class TestRules:
    def test_counters_start_zero_and_accumulate(self):
        rule = Rule(Match(), [ActionOutput(1)])
        assert (rule.packet_count, rule.byte_count) == (0, 0)
        rule.record_hit(100)
        rule.record_hit(28)
        assert (rule.packet_count, rule.byte_count) == (2, 128)

    def test_defaults(self):
        rule = Rule(Match(), [ActionOutput(1)])
        assert rule.priority == DEFAULT_PRIORITY
        assert rule.idle_timeout == PERMANENT
        assert not rule.can_expire

    def test_can_expire(self):
        assert Rule(Match(), [], hard_timeout=5).can_expire
        assert Rule(Match(), [], idle_timeout=5).can_expire

    def test_same_entry_ignores_actions_and_counters(self):
        a = Rule(Match(tp_dst=80), [ActionOutput(1)], priority=7)
        b = Rule(Match(tp_dst=80), [ActionDrop()], priority=7)
        c = Rule(Match(tp_dst=80), [ActionOutput(1)], priority=8)
        assert a.same_entry(b)
        assert not a.same_entry(c)

    def test_canonical_with_and_without_counters(self):
        rule = Rule(Match(), [ActionOutput(1)])
        rule.record_hit(64)
        with_counters = rule.canonical(include_counters=True)
        without = rule.canonical(include_counters=False)
        assert with_counters != without
        fresh = Rule(Match(), [ActionOutput(1)])
        assert fresh.canonical(include_counters=False) == without


class TestMessages:
    def test_flow_mod_validates_command(self):
        with pytest.raises(ValueError):
            FlowMod("upsert", Match())

    def test_packet_out_needs_target(self):
        with pytest.raises(ValueError):
            PacketOut(None, None, [ActionOutput(1)])

    def test_message_value_equality(self):
        a = FlowMod(OFPFC_ADD, Match(tp_dst=80), [ActionOutput(1)])
        b = FlowMod(OFPFC_ADD, Match(tp_dst=80), [ActionOutput(1)])
        assert a == b and hash(a) == hash(b)

    def test_stats_reply_canonical_freezes_nested_dicts(self):
        a = StatsReply("s1", "port", {1: {"tx_bytes": 5, "rx_bytes": 0}})
        b = StatsReply("s1", "port", {1: {"rx_bytes": 0, "tx_bytes": 5}})
        assert a.canonical() == b.canonical()

    def test_table_action_via_api_default(self):
        assert normalize_actions([ActionTable()]) == [ActionTable()]
