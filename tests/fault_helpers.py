"""Tests-only fault-injection wrappers for the parallel-search transports.

:class:`ChaosTransport` wraps a real transport and kills a scheduled
worker after the Nth task submission, through the transport's own
``kill_worker`` hook (SIGKILL for local pools and co-located socket
workers, connection teardown for remote ones).  The death then travels
the production path — pipe EOF / socket reset -> ``WorkerGone`` ->
scheduler requeue — which is exactly what the chaos suite wants to
exercise; nothing here touches scheduler internals.

:class:`StallTransport` SIGSTOPs (wedges, not kills) a scheduled worker
instead: the pipes stay open, no EOF fires, and only the scheduler's
task-deadline machinery can notice — the hang-detection counterpart of
:class:`ChaosTransport`.

:class:`ElasticJoiner` wraps a :class:`SocketTransport` and, after the
Nth submission, launches one extra ``nice worker`` aimed at the live
master, blocking until the elastic accept loop admits it — making
"a worker joins mid-search" deterministic instead of a sleep-and-hope
race.

Both install via :func:`install`, which monkeypatches the scheduler's
``create_transport`` seam.
"""

from __future__ import annotations

import time

from repro.mc import scheduler as scheduler_mod
from repro.mc.transport import create_transport


class _TransportWrapper:
    """Delegate everything to the wrapped transport except ``submit``."""

    def __init__(self, inner):
        self._inner = inner

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def submit(self, worker_id, task):
        self._inner.submit(worker_id, task)
        self._after_submit()

    def _after_submit(self):
        raise NotImplementedError


class ChaosTransport(_TransportWrapper):
    """Kill worker K after the Nth successful task submission.

    ``schedule`` maps submission count -> victim worker id, e.g.
    ``{3: 0, 6: 1}`` kills worker 0 after the 3rd submit and worker 1
    after the 6th.
    """

    def __init__(self, inner, schedule: dict[int, int]):
        super().__init__(inner)
        self._schedule = dict(schedule)
        self._submitted = 0
        #: Victims actually killed, for test-side assertions.
        self.killed: list[int] = []

    def _after_submit(self):
        self._submitted += 1
        victim = self._schedule.pop(self._submitted, None)
        if victim is not None:
            self._inner.kill_worker(victim)
            self.killed.append(victim)


class StallTransport(_TransportWrapper):
    """SIGSTOP (wedge, don't kill) worker K after the Nth submission.

    A stopped process is the purest "hung worker": the OS keeps the pipes
    open, so no EOF ever fires and only the task-deadline machinery can
    notice.  The victim is the exact failure shape heartbeats + deadlines
    exist for, without involving any hostile model code.
    """

    def __init__(self, inner, schedule: dict[int, int]):
        super().__init__(inner)
        self._schedule = dict(schedule)
        self._submitted = 0
        #: Victims actually stopped, for test-side assertions.
        self.stalled: list[int] = []

    def _after_submit(self):
        import os
        import signal

        self._submitted += 1
        victim = self._schedule.pop(self._submitted, None)
        if victim is None:
            return
        pid = self._inner.worker_pid(victim)
        if pid is None:  # remote worker: cannot wedge, skip this leg
            return
        os.kill(pid, signal.SIGSTOP)
        self.stalled.append(victim)


class ElasticJoiner(_TransportWrapper):
    """Launch one extra socket worker after the Nth submission and wait
    until the master's elastic accept loop has admitted it."""

    JOIN_TIMEOUT = 30.0

    def __init__(self, inner, after: int):
        super().__init__(inner)
        self._after = after
        self._submitted = 0
        #: Worker ids present before the join, for test-side assertions.
        self.initial_workers: set[int] = set()

    def _after_submit(self):
        self._submitted += 1
        if self._submitted != self._after:
            return
        inner = self._inner
        self.initial_workers = set(inner._connections)
        inner.spawn_worker()
        deadline = time.monotonic() + self.JOIN_TIMEOUT
        while time.monotonic() < deadline:
            if set(inner._connections) - self.initial_workers:
                return
            time.sleep(0.01)
        raise AssertionError(
            f"elastic worker did not join within {self.JOIN_TIMEOUT:.0f}s")


def install(monkeypatch, wrap):
    """Monkeypatch the scheduler's ``create_transport`` so every transport
    it builds is passed through ``wrap`` (e.g. ``lambda t:
    ChaosTransport(t, {3: 0})``)."""
    def wrapped(config, spec):
        transport = create_transport(config, spec)
        return None if transport is None else wrap(transport)

    monkeypatch.setattr(scheduler_mod, "create_transport", wrapped)
