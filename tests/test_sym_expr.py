"""Unit and property-based tests for the constraint expression language."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SymbolicError
from repro.sym.expr import (
    BinOp,
    BoolConst,
    ByteAt,
    Cmp,
    Const,
    InSet,
    Not,
    Var,
    eval_bool,
    eval_expr,
    expr_constants,
    expr_vars,
    negate,
)

X = Var("x")
Y = Var("y")


class TestEvaluation:
    def test_const_and_var(self):
        assert eval_expr(Const(5), {}) == 5
        assert eval_expr(X, {"x": 9}) == 9

    def test_unassigned_var_raises(self):
        with pytest.raises(SymbolicError):
            eval_expr(X, {})

    def test_binops(self):
        env = {"x": 12, "y": 5}
        assert eval_expr(BinOp("add", X, Y), env) == 17
        assert eval_expr(BinOp("sub", X, Y), env) == 7
        assert eval_expr(BinOp("mul", X, Y), env) == 60
        assert eval_expr(BinOp("floordiv", X, Y), env) == 2
        assert eval_expr(BinOp("mod", X, Y), env) == 2
        assert eval_expr(BinOp("and", X, Y), env) == 4
        assert eval_expr(BinOp("or", X, Y), env) == 13
        assert eval_expr(BinOp("xor", X, Y), env) == 9
        assert eval_expr(BinOp("lshift", X, Const(2)), env) == 48
        assert eval_expr(BinOp("rshift", X, Const(2)), env) == 3

    def test_division_by_zero(self):
        with pytest.raises(SymbolicError):
            eval_expr(BinOp("floordiv", X, Const(0)), {"x": 1})

    def test_byte_extraction(self):
        mac = 0x0A0B0C0D0E0F
        env = {"m": mac}
        base = Var("m", 48)
        assert eval_expr(ByteAt(base, 0, 6), env) == 0x0A
        assert eval_expr(ByteAt(base, 5, 6), env) == 0x0F

    def test_comparisons(self):
        env = {"x": 3, "y": 7}
        assert eval_bool(Cmp("lt", X, Y), env)
        assert not eval_bool(Cmp("ge", X, Y), env)
        assert eval_bool(Cmp("ne", X, Y), env)

    def test_inset(self):
        assert eval_bool(InSet(X, [1, 2, 3]), {"x": 2})
        assert not eval_bool(InSet(X, [1, 2, 3]), {"x": 9})

    def test_not_and_bool_const(self):
        assert eval_bool(Not(BoolConst(False)), {})
        assert not eval_bool(BoolConst(False), {})

    def test_eval_bool_on_int_expr_raises(self):
        with pytest.raises(SymbolicError):
            eval_bool(X, {"x": 1})

    def test_unknown_ops_rejected(self):
        with pytest.raises(SymbolicError):
            BinOp("pow", X, Y)
        with pytest.raises(SymbolicError):
            Cmp("spaceship", X, Y)


class TestNegation:
    @given(st.sampled_from(["eq", "ne", "lt", "le", "gt", "ge"]),
           st.integers(-50, 50), st.integers(-50, 50))
    def test_cmp_negation_flips_truth(self, op, a, b):
        expr = Cmp(op, X, Y)
        env = {"x": a, "y": b}
        assert eval_bool(negate(expr), env) == (not eval_bool(expr, env))

    @given(st.integers(0, 10), st.lists(st.integers(0, 10), min_size=1))
    def test_inset_negation(self, value, values):
        expr = InSet(X, values)
        env = {"x": value}
        assert eval_bool(negate(expr), env) == (not eval_bool(expr, env))

    def test_double_negation_simplifies(self):
        expr = InSet(X, [1])
        assert negate(negate(expr)) == expr


class TestStructure:
    def test_expressions_are_hashable_values(self):
        a = Cmp("eq", BinOp("and", X, Const(1)), Const(0))
        b = Cmp("eq", BinOp("and", Var("x"), Const(1)), Const(0))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Cmp("eq", X, Const(0))

    def test_expr_vars(self):
        expr = Cmp("eq", BinOp("add", X, Y), ByteAt(Var("m"), 1, 6))
        assert expr_vars(expr) == {"x", "y", "m"}
        assert expr_vars(Not(InSet(X, [1]))) == {"x"}

    def test_expr_constants(self):
        expr = Cmp("gt", BinOp("mul", X, Const(100)), Const(70))
        assert expr_constants(expr) == {100, 70}
        assert expr_constants(InSet(X, [4, 5])) == {4, 5}


class TestRoundtripWithProxies:
    """The proxy layer must produce expressions whose evaluation matches
    the concrete arithmetic it mirrored — the core concolic soundness
    invariant."""

    @given(st.integers(0, 0xFFFF), st.integers(0, 0xFFFF),
           st.sampled_from(["add", "sub", "mul", "and", "or", "xor"]))
    def test_symint_op_matches_evaluator(self, a, b, op):
        from repro.sym.concolic import PathRecorder, SymInt

        recorder = PathRecorder()
        sym = SymInt(a, Var("x"), recorder)
        method = {"add": "__add__", "sub": "__sub__", "mul": "__mul__",
                  "and": "__and__", "or": "__or__", "xor": "__xor__"}[op]
        result = getattr(sym, method)(b)
        assert result.concrete == eval_expr(result.expr, {"x": a})

    @given(st.integers(0, (1 << 48) - 1), st.integers(0, 5))
    def test_symbytes_byte_access_matches(self, mac_int, index):
        from repro.openflow.packet import MacAddress
        from repro.sym.concolic import PathRecorder, SymBytes

        recorder = PathRecorder()
        sym = SymBytes(MacAddress.from_int(mac_int), Var("m", 48), recorder)
        byte = sym[index]
        assert byte.concrete == eval_expr(byte.expr, {"m": mac_int})
