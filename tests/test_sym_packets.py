"""Tests for symbolic packet construction and domain knowledge."""

from repro.openflow.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    MacAddress,
    TCP_SYN,
)
from repro.sym.concolic import PathRecorder, SymBytes, SymInt
from repro.sym.packets import (
    FRESH_IP,
    FRESH_MAC,
    PACKET_FIELDS,
    SymbolicPacketFactory,
)
from repro.topo.topology import Topology

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def make_factory(app=None):
    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_host("A", MAC_A, "10.0.0.1", "s1", 1)
    topo.add_host("B", MAC_B, "10.0.0.2", "s1", 2)
    from repro.hosts.client import Client

    host = Client("A", MAC_A, topo.hosts["A"].ip)
    return SymbolicPacketFactory(topo, host, app)


class TestDomains:
    def test_source_fields_pinned_to_sender(self):
        domains = make_factory().domains()
        assert domains["eth_src"].candidates == [MAC_A.to_int()]
        assert domains["ip_src"].candidates == [0x0A000001]

    def test_destination_includes_topology_broadcast_and_fresh(self):
        domains = make_factory().domains()
        dst = domains["eth_dst"].candidates
        assert MAC_B.to_int() in dst
        assert MacAddress.broadcast().to_int() in dst
        assert FRESH_MAC in dst
        assert MAC_A.to_int() not in dst   # own address excluded

    def test_ip_dst_includes_fresh(self):
        domains = make_factory().domains()
        assert FRESH_IP in domains["ip_dst"].candidates

    def test_app_hook_extends_domains(self):
        class AppWithDomains:
            def symbolic_domains(self):
                return {"ip_dst": [0x0A0000FF], "tp_dst": [8080]}

        domains = make_factory(AppWithDomains()).domains()
        assert 0x0A0000FF in domains["ip_dst"].candidates
        assert 8080 in domains["tp_dst"].candidates

    def test_all_declared_fields_have_domains(self):
        domains = make_factory().domains()
        assert {name for name, _w in PACKET_FIELDS} == set(domains)


class TestSymbolicPacket:
    def test_fields_are_proxies(self):
        factory = make_factory()
        packet = factory.make(PathRecorder(), factory.default_assignment())
        assert isinstance(packet.eth_src, SymBytes)
        assert isinstance(packet.eth_dst, SymBytes)
        assert isinstance(packet.eth_type, SymInt)
        assert isinstance(packet.tcp_flags, SymInt)

    def test_proxy_values_follow_assignment(self):
        factory = make_factory()
        assignment = factory.default_assignment()
        assignment["eth_dst"] = MacAddress.broadcast().to_int()
        assignment["tcp_flags"] = TCP_SYN
        packet = factory.make(PathRecorder(), assignment)
        assert packet.eth_dst.concrete == MacAddress.broadcast()
        assert packet.tcp_flags.concrete == TCP_SYN

    def test_aliases_work_on_symbolic_packet(self):
        # Figure 3's pkt.src / pkt.dst / pkt.type must resolve on proxies.
        factory = make_factory()
        packet = factory.make(PathRecorder(), factory.default_assignment())
        assert packet.src is packet.eth_src
        assert packet.dst is packet.eth_dst
        assert packet.type is packet.eth_type


class TestRepresentatives:
    def test_default_assignment_round_trips(self):
        factory = make_factory()
        packet = factory.packet_from_assignment(factory.default_assignment())
        assert packet.eth_src == MAC_A

    def test_unconstrained_fields_zeroed(self):
        factory = make_factory()
        assignment = factory.default_assignment()
        assignment["eth_type"] = ETH_TYPE_ARP
        packet = factory.packet_from_assignment(
            assignment, constrained={"eth_type"})
        assert packet.eth_type == ETH_TYPE_ARP
        assert packet.tcp_flags == 0      # don't-care zeroed
        assert packet.nw_proto == 0
        assert packet.eth_src == MAC_A    # pinned field kept

    def test_constrained_fields_preserved(self):
        factory = make_factory()
        assignment = factory.default_assignment()
        assignment["tcp_flags"] = TCP_SYN
        packet = factory.packet_from_assignment(
            assignment, constrained={"eth_type", "tcp_flags", "ip_dst",
                                     "nw_proto"})
        assert packet.tcp_flags == TCP_SYN
        assert packet.eth_type == ETH_TYPE_IP
