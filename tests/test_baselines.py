"""Tests for the SPIN-like and JPF-like comparison baselines."""

import pytest

from repro import scenarios
from repro.baselines import JpfLikeSearcher, JpfSystem, SpinLikeSearcher
from repro.config import NiceConfig
from repro.mc import transitions as tk


def ping_scenario(pings=1):
    return scenarios.ping_experiment(pings=pings)


def jpf_factory(scenario):
    def factory():
        system = JpfSystem(scenario.topo, scenario.app_factory(),
                           scenario.hosts_factory(), scenario.config)
        system.boot()
        return system

    return factory


class TestSpinLike:
    def test_explores_same_space_as_nice(self):
        from repro import nice

        scenario = ping_scenario()
        spin = SpinLikeSearcher(scenario.system_factory, scenario.config).run()
        mc = nice.run(scenario)
        assert spin.transitions_executed == mc.transitions_executed
        assert spin.unique_states == mc.unique_states

    def test_stored_bytes_dwarf_hash_bytes(self):
        scenario = ping_scenario()
        result = SpinLikeSearcher(scenario.system_factory,
                                  scenario.config).run()
        assert result.stored_bytes > result.hash_bytes
        assert result.hash_bytes == result.unique_states * 32

    def test_memory_limit_aborts(self):
        scenario = ping_scenario()
        result = SpinLikeSearcher(scenario.system_factory, scenario.config,
                                  memory_limit=2_000).run()
        assert result.out_of_memory
        assert result.stored_bytes > 2_000

    def test_transition_budget(self):
        scenario = ping_scenario()
        config = NiceConfig(max_transitions=5)
        result = SpinLikeSearcher(scenario.system_factory, config).run()
        assert result.transitions_executed == 5


class TestJpfLike:
    def test_handler_becomes_multiple_scheduling_points(self):
        scenario = ping_scenario()
        system = jpf_factory(scenario)()
        send = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        system.execute(send)
        system.execute([t for t in system.enabled_transitions()
                        if t.kind == tk.PROCESS_PKT][0])
        # The packet_in handler runs buffered: its API effects are now
        # individual apply_op transitions.
        handle = [t for t in system.enabled_transitions()
                  if t.kind == tk.CTRL_HANDLE][0]
        system.execute(handle)
        assert system.pending_ops
        ops_before = len(system.pending_ops)
        apply_op = [t for t in system.enabled_transitions()
                    if t.kind == "apply_op"][0]
        system.execute(apply_op)
        assert len(system.pending_ops) == ops_before - 1

    def test_pending_ops_in_state_identity(self):
        scenario = ping_scenario()
        a = jpf_factory(scenario)()
        b = jpf_factory(scenario)()
        assert a.state_hash() == b.state_hash()
        a.pending_ops.append(("install_rule", ("s1",), {}))
        assert a.state_hash() != b.state_hash()

    def test_clone_preserves_pending_ops(self):
        scenario = ping_scenario()
        system = jpf_factory(scenario)()
        system.pending_ops.append(("flood_packet", ("s1", None, 1), {}))
        clone = system.clone()
        assert isinstance(clone, JpfSystem)
        assert clone.pending_ops == system.pending_ops
        clone.pending_ops.pop()
        assert system.pending_ops  # no sharing

    def test_explores_more_than_nice(self):
        from repro import nice

        scenario = ping_scenario()
        jpf = JpfLikeSearcher(jpf_factory(scenario), scenario.config).run()
        mc = nice.run(scenario)
        assert jpf.transitions_executed > mc.transitions_executed

    def test_budget_marks_incomplete(self):
        scenario = ping_scenario()
        config = NiceConfig(max_transitions=10)
        result = JpfLikeSearcher(jpf_factory(scenario), config).run()
        assert not result.completed
