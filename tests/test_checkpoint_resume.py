"""Restartable search: crash-recovery harness + store/checkpoint units
(ISSUE 5).

Acceptance contract: a search SIGKILLed mid-run — master *and* workers,
at seeded interruption points, on the fork, spawn, and socket transports
as well as serially — and resumed from its last checkpoint with
``nice.resume`` explores a **bit-identical** state space (and reaches
identical property verdicts) vs. an uninterrupted serial run; a torn
snapshot (truncated file) is detected by its manifest and resume falls
back to the previous valid checkpoint; SIGTERM triggers a final
checkpoint and a clean ``terminated == "sigterm"`` exit.

The kills run through :mod:`checkpoint_helpers`: a subprocess in its own
session SIGKILLs its whole process group the moment the explored set
reaches the interruption point — the real crash path, no cleanup, no
atexit.  Unit tests cover the sharded store (spill, reload, digest-width
guard) and the checkpoint validator directly.
"""

from __future__ import annotations

import dataclasses
import os
import signal

import pytest

from checkpoint_helpers import (
    Interrupted,
    corrupt_newest,
    crash_run,
    interrupt_after,
)
from contract import counters, requires_fork, violated_properties
from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc import store as store_mod
from repro.mc.store import (
    CheckpointError,
    Checkpointer,
    MemoryStore,
    ShardedStore,
    load_latest_checkpoint,
)
from repro.scenarios import with_config

#: Deterministic small tasks, as in the chaos suite: many interruption
#: points, and parallel legs that cannot hide work in large batches.
KNOBS = dict(stop_at_first_violation=False, batch_groups=1, batch_nodes=1,
             adaptive_batching=False)

ENGINES = [
    pytest.param(dict(workers=2, start_method="fork"), "local-fork",
                 marks=requires_fork, id="fork"),
    pytest.param(dict(workers=2, start_method="spawn"), "local-spawn",
                 id="spawn"),
    pytest.param(dict(workers=2, transport="socket"), "socket", id="socket"),
    pytest.param(dict(workers=0), "serial", id="serial"),
]


def exhaustive_ping(**overrides):
    return with_config(scenarios.ping_experiment(pings=2),
                       **{**KNOBS, **overrides})


@pytest.fixture(scope="module")
def serial_ping():
    return nice.run(exhaustive_ping())


def assert_matches_serial(stats, serial_ping):
    assert counters(stats) == counters(serial_ping)
    assert violated_properties(stats) == violated_properties(serial_ping)


# ----------------------------------------------------------------------
# Acceptance: SIGKILL mid-run + resume == uninterrupted, all transports
# ----------------------------------------------------------------------

class TestCrashRecovery:
    @pytest.mark.parametrize("overrides,engine", ENGINES)
    def test_sigkill_then_resume_bit_identical(self, overrides, engine,
                                               serial_ping, tmp_path):
        # ~510 unique states total: kill at 150 with two full snapshots
        # (interval 60) already on disk.
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=150,
                             checkpoint_interval=60, **KNOBS, **overrides)
        scenario, stats = nice.resume(ckpt_dir)
        assert_matches_serial(stats, serial_ping)
        assert stats.resumed_from is not None
        assert stats.engine == engine
        assert stats.checkpoints_written >= 2  # lineage counts its past

    @pytest.mark.slow
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("overrides", [dict(workers=0),
                                           dict(workers=2)])
    def test_seeded_interruption_points(self, seed, overrides, serial_ping,
                                        tmp_path):
        """The nightly sweep: kill points spread across the whole run."""
        kill_after = 70 + 67 * seed  # 70..405 of ~510 states
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=kill_after,
                             checkpoint_interval=45, **KNOBS, **overrides)
        _, stats = nice.resume(ckpt_dir)
        assert_matches_serial(stats, serial_ping)

    def test_resume_can_switch_transport(self, serial_ping, tmp_path):
        """A serially checkpointed search resumes on the parallel engine
        (and could equally go the other way): the frontier is stored in
        the transport-agnostic sibling-group form."""
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=150,
                             checkpoint_interval=60, workers=0, **KNOBS)
        _, stats = nice.resume(ckpt_dir, workers=2)
        assert stats.workers == 2
        assert_matches_serial(stats, serial_ping)


# ----------------------------------------------------------------------
# Torn writes: the newest snapshot is corrupt, the previous one serves
# ----------------------------------------------------------------------

class TestTornWrites:
    def test_resume_falls_back_to_previous_checkpoint(self, serial_ping,
                                                      tmp_path):
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=200,
                             checkpoint_interval=50, workers=0, **KNOBS)
        snapshots = sorted(ckpt_dir.glob("ckpt-*"))
        assert len(snapshots) == 2  # retention keeps exactly two
        torn = corrupt_newest(ckpt_dir)
        _, stats = nice.resume(ckpt_dir)
        assert stats.resumed_from == str(snapshots[0])
        assert stats.resumed_from != str(torn)
        assert_matches_serial(stats, serial_ping)

    def test_truncated_meta_also_falls_back(self, serial_ping, tmp_path):
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=200,
                             checkpoint_interval=50, workers=0, **KNOBS)
        corrupt_newest(ckpt_dir, "meta.pkl")
        _, stats = nice.resume(ckpt_dir)
        assert_matches_serial(stats, serial_ping)

    def test_every_checkpoint_torn_is_a_clean_error(self, tmp_path):
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=200,
                             checkpoint_interval=50, workers=0, **KNOBS)
        for snapshot in ckpt_dir.glob("ckpt-*"):
            target = max((p for p in snapshot.iterdir() if p.is_file()),
                         key=lambda p: p.stat().st_size)
            target.write_bytes(target.read_bytes()[:16])
        with pytest.raises(CheckpointError, match="no usable checkpoint"):
            nice.resume(ckpt_dir)


# ----------------------------------------------------------------------
# SIGTERM: snapshot-and-stop, then resume
# ----------------------------------------------------------------------

class TestSigterm:
    def test_sigterm_checkpoints_and_resumes(self, serial_ping, tmp_path,
                                             monkeypatch):
        # Deliver SIGTERM to ourselves at a deterministic state count;
        # the handler only flags, and the loop snapshots at its next
        # consistent point before unwinding.
        interrupt_after(monkeypatch, 150,
                        action=lambda: os.kill(os.getpid(), signal.SIGTERM))
        stats = nice.run(exhaustive_ping(
            checkpoint_dir=str(tmp_path / "ckpt"), checkpoint_interval=60))
        assert stats.terminated == "sigterm"
        assert stats.checkpoints_written >= 1
        monkeypatch.undo()  # the resumed leg must not re-trigger the kill
        _, resumed = nice.resume(tmp_path / "ckpt")
        assert_matches_serial(resumed, serial_ping)

    @requires_fork
    def test_sigterm_parallel_drains_before_snapshot(self, serial_ping,
                                                     tmp_path, monkeypatch):
        interrupt_after(monkeypatch, 150,
                        action=lambda: os.kill(os.getpid(), signal.SIGTERM))
        stats = nice.run(exhaustive_ping(
            workers=2, checkpoint_dir=str(tmp_path / "ckpt"),
            checkpoint_interval=60))
        assert stats.terminated == "sigterm"
        monkeypatch.undo()
        _, resumed = nice.resume(tmp_path / "ckpt")
        assert_matches_serial(resumed, serial_ping)


# ----------------------------------------------------------------------
# In-process interruption (the cheap crash the differential suite uses)
# ----------------------------------------------------------------------

class TestInProcessInterrupt:
    def test_interrupted_then_resumed_serial(self, serial_ping, tmp_path,
                                             monkeypatch):
        interrupt_after(monkeypatch, 150)
        with pytest.raises(Interrupted):
            nice.run(exhaustive_ping(checkpoint_dir=str(tmp_path / "c"),
                                     checkpoint_interval=60))
        monkeypatch.undo()
        _, stats = nice.resume(tmp_path / "c")
        assert_matches_serial(stats, serial_ping)

    def test_sharded_store_resumes_too(self, serial_ping, tmp_path,
                                       monkeypatch):
        interrupt_after(monkeypatch, 150)
        with pytest.raises(Interrupted):
            nice.run(exhaustive_ping(
                checkpoint_dir=str(tmp_path / "c"), checkpoint_interval=60,
                store="sharded", store_shards=4, store_memory_budget=16))
        monkeypatch.undo()
        _, stats = nice.resume(tmp_path / "c")
        assert stats.store == "sharded"
        assert_matches_serial(stats, serial_ping)


class TestSchedulerEarlyStop:
    @requires_fork
    def test_initial_violation_closes_the_store(self, monkeypatch):
        """A violation in the *initial* state ends a parallel run before
        the transport starts; the scheduler must still close its store
        (a sharded one holds open files and a temp spill directory)."""
        from repro.errors import PropertyViolation

        class AlwaysViolated:
            property_name = "AlwaysViolated"

            def reset(self, system):
                pass

            def check(self, system, transition):
                raise PropertyViolation("AlwaysViolated", "bad from boot")

            def check_quiescent(self, system):
                pass

        scenario = with_config(scenarios.ping_experiment(pings=1),
                               workers=2, store="sharded")
        scenario.properties = [AlwaysViolated()]
        created = []
        real_create = store_mod.create_store

        def tracking_create(config):
            store = real_create(config)
            created.append(store)
            return store

        monkeypatch.setattr(store_mod, "create_store", tracking_create)
        stats = nice.run(scenario)
        assert stats.found_violation
        assert stats.store == "sharded"
        assert created, "the parallel engine never built its store"
        assert not created[0].directory.exists(), \
            "the spill directory leaked past the early return"


class TestNoStateMatching:
    def test_checkpoints_key_on_transitions_without_state_matching(
            self, tmp_path):
        """With state matching off the explored store never grows past
        the initial digest — progress (and thus the checkpoint cadence)
        must key on executed transitions instead, and resume must land
        on the same bounded end state."""
        bounded = exhaustive_ping(state_matching=False, max_transitions=400,
                                  checkpoint_dir=str(tmp_path / "c"),
                                  checkpoint_interval=100)
        stats = nice.run(bounded)
        assert stats.terminated == "max_transitions"
        assert stats.checkpoints_written >= 2
        _, resumed = nice.resume(tmp_path / "c")
        assert resumed.terminated == "max_transitions"
        assert resumed.transitions_executed == stats.transitions_executed
        assert resumed.quiescent_states == stats.quiescent_states


# ----------------------------------------------------------------------
# Store units: membership, spill, reload, guards
# ----------------------------------------------------------------------

def _digests(n):
    import hashlib
    return [hashlib.md5(str(i).encode()).hexdigest() for i in range(n)]


class TestShardedStore:
    def test_membership_matches_memory_store(self, tmp_path):
        sharded = ShardedStore(shards=4, memory_budget=10,
                               directory=str(tmp_path / "s"))
        memory = MemoryStore()
        for digest in _digests(200):
            assert sharded.add(digest) == memory.add(digest)
        for digest in _digests(200):  # every re-add is a duplicate
            assert sharded.add(digest) is False
        assert len(sharded) == len(memory) == 200
        assert sorted(sharded.digests()) == sorted(memory.digests())
        sharded.close()

    def test_spill_path_is_exercised_and_correct(self, tmp_path):
        store = ShardedStore(shards=2, memory_budget=5,
                             directory=str(tmp_path / "s"))
        batch = _digests(100)
        for digest in batch:
            store.add(digest)
        spilled = store.counters()
        assert spilled["evictions"] >= 90
        # Cold lookups must come back from disk, not lie.
        assert all(digest in store for digest in batch)
        assert "f" * 32 not in store
        assert store.counters()["spill_reads"] > 0
        store.close()

    def test_mixed_digest_width_is_rejected(self, tmp_path):
        store = ShardedStore(directory=str(tmp_path / "s"))
        store.add("a" * 32)
        with pytest.raises(ValueError, match="digest width"):
            store.add("b" * 64)
        store.close()

    def test_owned_spill_directory_is_removed_on_close(self):
        store = ShardedStore(shards=2)
        spill_dir = store.directory
        store.add("c" * 32)
        assert spill_dir.exists()
        store.close()
        assert not spill_dir.exists()


class TestCheckpointMachinery:
    def _store_with(self, digests):
        store = MemoryStore()
        store.preload(digests)
        return store

    def test_retention_keeps_two(self, tmp_path):
        from repro.mc.search import SearchStats
        config = NiceConfig(checkpoint_dir=str(tmp_path))
        store = self._store_with(_digests(5))
        for _ in range(4):
            store_mod.write_checkpoint(
                tmp_path, spec=None, config=config, stats=SearchStats(),
                frontier=[], rng_state=None, store=store)
        assert len(sorted(tmp_path.glob("ckpt-*"))) == 2

    def test_loaded_checkpoint_round_trips(self, tmp_path):
        from repro.mc.search import SearchStats
        config = NiceConfig(checkpoint_dir=str(tmp_path))
        stats = SearchStats()
        stats.transitions_executed = 42
        digests = _digests(7)
        frontier = [((), None)]
        store_mod.write_checkpoint(
            tmp_path, spec=None, config=config, stats=stats,
            frontier=frontier, rng_state=("x", 1), store=self._store_with(
                digests))
        loaded = load_latest_checkpoint(tmp_path)
        assert sorted(loaded.iter_digests()) == sorted(digests)
        assert loaded.frontier == frontier
        assert loaded.rng_state == ("x", 1)
        assert loaded.stats["transitions_executed"] == 42
        assert loaded.config == config

    def test_unportable_spec_warns_but_checkpoints(self, tmp_path):
        """Hand-built scenarios (no registry spec) still checkpoint; the
        warning tells the operator resume needs scenario=."""
        from repro.mc.search import SearchStats
        config = NiceConfig(checkpoint_dir=str(tmp_path))
        with pytest.warns(RuntimeWarning, match="hand-built"):
            Checkpointer(config, None, MemoryStore(), SearchStats())

    def test_hand_built_scenario_resumes_with_explicit_scenario(
            self, tmp_path, monkeypatch, serial_ping):
        """nice.resume(scenario=...) covers scenarios the registry cannot
        rebuild — the differential suite's generated scenarios."""
        hand_built = scenarios.ping_experiment(pings=2)
        hand_built = with_config(hand_built, **KNOBS)
        hand_built.spec = None  # sever the registry identity
        config = dataclasses.replace(hand_built.config,
                                     checkpoint_dir=str(tmp_path / "c"),
                                     checkpoint_interval=60)
        hand_built.config = config
        interrupt_after(monkeypatch, 150)
        with pytest.raises(Interrupted), pytest.warns(RuntimeWarning):
            nice.run(hand_built)
        monkeypatch.undo()
        with pytest.raises(CheckpointError, match="no scenario spec"):
            nice.resume(tmp_path / "c")
        _, stats = nice.resume(tmp_path / "c", scenario=hand_built,
                               checkpoint_dir=None)
        assert_matches_serial(stats, serial_ping)
