"""Unit tests for the flow table, including the canonical representation
that powers the Table 1 state-space reduction."""

from hypothesis import given, strategies as st

from repro.openflow.actions import ActionDrop, ActionOutput
from repro.openflow.flowtable import FlowTable
from repro.openflow.match import Match
from repro.openflow.packet import MacAddress, Packet
from repro.openflow.rules import Rule


def mac(n: int) -> MacAddress:
    return MacAddress.from_int(n)


def pkt(src: int = 1, dst: int = 2) -> Packet:
    return Packet(eth_src=mac(src), eth_dst=mac(dst))


def rule(src: int, out: int, priority: int = 100) -> Rule:
    return Rule(Match(dl_src=mac(src)), [ActionOutput(out)], priority=priority)


class TestInstallRemove:
    def test_install_and_lookup(self):
        table = FlowTable()
        table.install(rule(1, 9))
        hit = table.lookup(pkt(src=1), in_port=1)
        assert hit is not None
        assert hit.actions == [ActionOutput(9)]
        assert table.lookup(pkt(src=5), in_port=1) is None

    def test_install_identical_entry_replaces(self):
        table = FlowTable()
        table.install(rule(1, 9))
        table.install(rule(1, 10))
        assert len(table) == 1
        assert table.lookup(pkt(src=1), 1).actions == [ActionOutput(10)]

    def test_nonstrict_delete_removes_overlapping(self):
        table = FlowTable()
        table.install(rule(1, 9))
        table.install(rule(2, 9))
        removed = table.remove(Match())  # wildcard overlaps everything
        assert len(removed) == 2
        assert len(table) == 0

    def test_strict_delete_requires_identical_pattern(self):
        table = FlowTable()
        table.install(rule(1, 9))
        assert table.remove(Match(), strict=True) == []
        assert len(table) == 1
        removed = table.remove(Match(dl_src=mac(1)), priority=100, strict=True)
        assert len(removed) == 1

    def test_remove_rule_object(self):
        table = FlowTable()
        r = rule(1, 9)
        table.install(r)
        assert table.remove_rule(r)
        assert not table.remove_rule(r)


class TestLookupSemantics:
    def test_highest_priority_wins(self):
        table = FlowTable()
        table.install(rule(1, 9, priority=10))
        table.install(rule(1, 8, priority=200))
        assert table.lookup(pkt(src=1), 1).actions == [ActionOutput(8)]

    def test_equal_priority_earliest_insertion_wins(self):
        # Two distinct but overlapping patterns at the same priority: the
        # earliest-installed entry must win deterministically.
        table = FlowTable()
        table.install(Rule(Match(in_port=1), [ActionOutput(1)], priority=50))
        table.install(Rule(Match(), [ActionDrop()], priority=50))
        assert table.lookup(pkt(), 1).actions == [ActionOutput(1)]

    def test_identical_match_and_priority_replaces(self):
        # OFPFC_ADD semantics: an identical entry overwrites the old one.
        table = FlowTable()
        table.install(Rule(Match(), [ActionOutput(1)], priority=50))
        table.install(Rule(Match(), [ActionDrop()], priority=50))
        assert len(table) == 1
        assert table.lookup(pkt(), 1).actions == [ActionDrop()]

    def test_in_port_constrained_rule(self):
        table = FlowTable()
        table.install(Rule(Match(in_port=2), [ActionOutput(3)]))
        assert table.lookup(pkt(), 2) is not None
        assert table.lookup(pkt(), 1) is None


class TestCanonicalRepresentation:
    def test_disjoint_rule_orderings_merge(self):
        # The paper's example: two non-overlapping microflow rules installed
        # in either order must serialize identically.
        t1, t2 = FlowTable(), FlowTable()
        t1.install(rule(1, 9))
        t1.install(rule(2, 8))
        t2.install(rule(2, 8))
        t2.install(rule(1, 9))
        assert t1.canonical() == t2.canonical()

    def test_noncanonical_mode_distinguishes_orderings(self):
        # NO-SWITCH-REDUCTION: insertion order leaks into the state.
        t1 = FlowTable(canonical=False)
        t2 = FlowTable(canonical=False)
        t1.install(rule(1, 9))
        t1.install(rule(2, 8))
        t2.install(rule(2, 8))
        t2.install(rule(1, 9))
        assert t1.canonical() != t2.canonical()

    def test_counters_distinguish_states_by_default(self):
        t1, t2 = FlowTable(), FlowTable()
        t1.install(rule(1, 9))
        t2.install(rule(1, 9))
        t1.lookup(pkt(src=1), 1).record_hit(64)
        assert t1.canonical() != t2.canonical()
        assert t1.canonical(include_counters=False) == t2.canonical(
            include_counters=False)

    @given(st.permutations(list(range(6))))
    def test_canonical_is_order_invariant_for_disjoint_rules(self, order):
        # Property: any insertion order of pairwise-disjoint rules yields
        # the same canonical form.
        reference = FlowTable()
        for i in range(6):
            reference.install(rule(i + 1, i))
        table = FlowTable()
        for i in order:
            table.install(rule(i + 1, i))
        assert table.canonical() == reference.canonical()

    @given(st.permutations(list(range(5))), st.integers(0, 4))
    def test_lookup_agrees_across_insertion_orders(self, order, probe):
        # Property: for disjoint same-priority rules, the data-plane decision
        # must not depend on insertion order.
        reference = FlowTable()
        for i in range(5):
            reference.install(rule(i + 1, i))
        table = FlowTable()
        for i in order:
            table.install(rule(i + 1, i))
        probe_pkt = pkt(src=probe + 1)
        ref_hit = reference.lookup(probe_pkt, 1)
        got_hit = table.lookup(probe_pkt, 1)
        assert (ref_hit is None) == (got_hit is None)
        if ref_hit is not None:
            assert ref_hit.actions == got_hit.actions


class TestExpiry:
    def test_expirable_rules_have_hard_timeout(self):
        table = FlowTable()
        table.install(Rule(Match(), [ActionOutput(1)], hard_timeout=5))
        table.install(Rule(Match(dl_src=mac(1)), [ActionOutput(2)]))
        assert len(table.expirable_rules()) == 1
