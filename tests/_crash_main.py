"""Subprocess entry point of the crash-recovery harness.

Runs one checkpointing search and SIGKILLs its *own process group* — the
master and every worker it spawned — the moment the explored set reaches
a seeded interruption point.  Killing the whole group at a state count
(not a checkpoint boundary) leaves exactly what a real crash leaves:
completed snapshots on disk plus an arbitrary amount of lost
post-checkpoint work.  The parent test launches this script with
``start_new_session=True`` so the kill cannot reach pytest, and asserts
the exit status is ``-SIGKILL``.

The interruption point is planted through the
:func:`repro.mc.store.create_store` seam (the engines resolve it at run
time for exactly this purpose): every *fresh* digest admitted to the
explored set counts toward ``kill_after_states``.

Usage: ``python _crash_main.py '<json payload>'`` with keys
``scenario`` (registry name), ``kwargs`` (builder kwargs),
``overrides`` (NiceConfig fields — must include ``checkpoint_dir``),
and ``kill_after_states``.
"""

from __future__ import annotations

import json
import os
import signal
import sys


def main() -> int:
    payload = json.loads(sys.argv[1])

    # Our own directory is on sys.path (script invocation), so the
    # interruption seam is the exact same code the in-process tests use.
    from checkpoint_helpers import interrupting_create_store

    from repro import nice, scenarios
    from repro.mc import store as store_mod
    from repro.scenarios import with_config

    kill_after = payload["kill_after_states"]

    def kill_own_process_group():
        os.killpg(os.getpgid(0), signal.SIGKILL)

    store_mod.create_store = interrupting_create_store(
        kill_after, kill_own_process_group)

    scenario = scenarios.REGISTRY[payload["scenario"]](
        **payload.get("kwargs", {}))
    nice.run(with_config(scenario, **payload["overrides"]))
    # Reaching here means the kill point was never hit — the test asked
    # for an interruption point past the end of the state space.
    print(f"search finished without reaching the kill point "
          f"({kill_after} states)", file=sys.stderr, flush=True)
    return 3


if __name__ == "__main__":
    sys.exit(main())
