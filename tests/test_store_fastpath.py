"""Store fast path (ISSUE 9): batched appends, per-shard Bloom filters,
packed v2 records, and O(new-states) checkpoint compaction.

Unit coverage for the machinery the differential/crash suites exercise
end-to-end: add_batch semantics and the flush-on-checkpoint ordering of
the tail buffers, Bloom negative gating of disk probes (and false
positives falling through to the exact probe), the mixed-hash-mode
guard on lookups as well as inserts, hard-link compaction across
snapshot generations (including survival of retention pruning), the
format-1 -> format-2 migration path, and the Checkpointer's counter
rollback when a snapshot fails mid-write.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os

import pytest

from checkpoint_helpers import Interrupted, crash_run, interrupt_after
from contract import counters, violated_properties
from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc import store as store_mod
from repro.mc.search import SearchStats
from repro.mc.store import (
    Checkpointer,
    MemoryStore,
    ShardedStore,
    load_latest_checkpoint,
    restore_store,
    validate_checkpoint,
    write_checkpoint,
)
from repro.scenarios import with_config

KNOBS = dict(stop_at_first_violation=False, batch_groups=1, batch_nodes=1,
             adaptive_batching=False)

WIDTH = 16  # packed md5 record bytes


def _hex(i: int) -> str:
    return hashlib.md5(str(i).encode()).hexdigest()


def _digests(n: int) -> list[str]:
    return [_hex(i) for i in range(n)]


def _shard0_digest(i: int, shards: int = 4) -> str:
    """A digest whose first six record bytes are zero — always shard 0,
    whatever the shard count."""
    return "000000000000" + _hex(i)[:20]


def _ping(**overrides):
    return with_config(scenarios.ping_experiment(pings=2),
                       **{**KNOBS, **overrides})


@pytest.fixture(scope="module")
def serial_ping():
    return nice.run(_ping())


def assert_matches_serial(stats, serial_ping):
    assert counters(stats) == counters(serial_ping)
    assert violated_properties(stats) == violated_properties(serial_ping)


# ----------------------------------------------------------------------
# Batched appends
# ----------------------------------------------------------------------

class TestAddBatch:
    def test_flags_are_per_digest_in_order(self, tmp_path):
        store = ShardedStore(shards=2, directory=str(tmp_path / "s"))
        a, b = _hex(1), _hex(2)
        assert store.add_batch([a, b, a, b, _hex(3)]) == \
            [True, True, False, False, True]
        assert len(store) == 3
        store.close()

    def test_batch_routes_through_instance_add(self, tmp_path):
        """The crash harness monkeypatches ``add`` on the instance;
        batching must not tunnel past that seam."""
        store = ShardedStore(shards=2, directory=str(tmp_path / "s"))
        seen = []
        real_add = store.add
        store.add = lambda digest: (seen.append(digest), real_add(digest))[1]
        store.add_batch(_digests(5))
        assert seen == _digests(5)
        store.close()

    def test_tails_buffer_until_checkpoint_flushes(self, tmp_path):
        """Appends land in tail buffers (one write per 64 KiB run, not
        per state); a snapshot flushes every tail first, so the
        checkpoint holds all records including the buffered ones."""
        store = ShardedStore(shards=4, directory=str(tmp_path / "s"))
        store.add_batch(_digests(50))
        assert sum(store._flushed) == 0  # nothing hit disk yet
        write_checkpoint(tmp_path / "c", spec=None,
                         config=NiceConfig(checkpoint_dir=str(tmp_path)),
                         stats=SearchStats(), frontier=[], rng_state=None,
                         store=store)
        assert sum(store._flushed) == 50 * WIDTH
        loaded = load_latest_checkpoint(tmp_path / "c")
        assert sorted(loaded.iter_digests()) == sorted(_digests(50))
        assert loaded.record_width == WIDTH
        assert loaded.record_encoding == store_mod.RECORD_HEX
        store.close()


# ----------------------------------------------------------------------
# Bloom filters
# ----------------------------------------------------------------------

class TestBloom:
    def test_negative_gates_the_disk_probe(self, tmp_path):
        store = ShardedStore(shards=2, memory_budget=1,
                             directory=str(tmp_path / "s"))
        held = _shard0_digest(1)
        store.add(held)
        store.add(_hex(2))  # evicts `held` from the resident set
        store.flush()       # `held` now lives on disk only
        probes_before = store.counters()["spill_reads"]
        # Same 48-bit prefix, different record: the index alone cannot
        # answer, but the Bloom bitset can — definitely not flushed.
        absent = _shard0_digest(99)
        assert absent not in store
        assert store.counters()["bloom_negatives"] == 1
        assert store.counters()["spill_reads"] == probes_before
        # A true hit passes the filter and reads the record back.
        assert held in store
        assert store.counters()["spill_reads"] > probes_before
        store.close()

    def test_false_positive_falls_through_to_exact_probe(self, tmp_path):
        """A saturated one-byte bitset answers 'maybe' for everything;
        membership must stay exact regardless."""
        store = ShardedStore(shards=2, memory_budget=5, bloom_bits=8,
                             directory=str(tmp_path / "s"))
        batch = _digests(100)
        for digest in batch:
            store.add(digest)
        store.flush()
        assert all(digest in store for digest in batch)
        for digest in batch[:20]:  # present prefix, absent record
            assert digest[:12] + "f" * 20 not in store
        assert "f" * 32 not in store
        store.close()

    def test_disabled_bloom_still_exact(self, tmp_path):
        store = ShardedStore(shards=2, memory_budget=5, bloom_bits=0,
                             directory=str(tmp_path / "s"))
        for digest in _digests(100):
            store.add(digest)
        store.flush()
        assert all(digest in store for digest in _digests(100))
        assert "f" * 32 not in store
        assert store.counters()["bloom_negatives"] == 0
        store.close()

    def test_bits_cover_exactly_the_flushed_records(self, tmp_path):
        """Deferred maintenance: bits are set when a tail run goes to
        disk, so a record still in the tail gets no bits — and its
        probes stay in memory."""
        store = ShardedStore(shards=1, directory=str(tmp_path / "s"))
        store.add(_hex(1))
        assert not any(store._bloom[0].data)  # nothing flushed, no bits
        store.flush()
        assert any(store._bloom[0].data)
        store.close()


# ----------------------------------------------------------------------
# Mixed hash modes (satellite: lookups must be as strict as inserts)
# ----------------------------------------------------------------------

class TestMixedWidthGuard:
    def test_lookup_raises_like_add(self, tmp_path):
        store = ShardedStore(directory=str(tmp_path / "s"))
        store.add("a" * 32)
        with pytest.raises(ValueError, match="digest width"):
            store.add("b" * 64)
        with pytest.raises(ValueError, match="digest width"):
            "b" * 64 in store
        store.close()

    def test_memory_store_snapshot_rejects_mixed_widths(self, tmp_path):
        store = MemoryStore()
        store.add("a" * 32)
        store.add("b" * 64)  # the plain set cannot police this on add
        with pytest.raises(ValueError, match="digest width"):
            store.snapshot_into(tmp_path)


# ----------------------------------------------------------------------
# Hard-link compaction
# ----------------------------------------------------------------------

class TestCompaction:
    def _write(self, root, store, previous=None):
        return write_checkpoint(
            root, spec=None, config=NiceConfig(checkpoint_dir=str(root)),
            stats=SearchStats(), frontier=[], rng_state=None,
            store=store, previous=previous)

    def test_unchanged_shards_are_linked_grown_shards_append(self, tmp_path):
        store = ShardedStore(shards=4, memory_budget=16, bloom_bits=1 << 10,
                             directory=str(tmp_path / "s"))
        store.add_batch(_digests(200))
        first = self._write(tmp_path / "c", store)
        full_bytes = validate_checkpoint(first).bytes_written
        # Grow shard 0 only; shards 1-3 must ride along untouched.
        extra = [_shard0_digest(i) for i in range(10)]
        store.add_batch(extra)
        second = self._write(tmp_path / "c", store, previous=first)
        for name in os.listdir(first):
            if name.startswith("states-") and not name.startswith(
                    "states-0000"):
                assert (second / name).stat().st_ino == \
                    (first / name).stat().st_ino
        delta = second / "states-0000-0001.bin"
        assert delta.stat().st_size == len(extra) * WIDTH
        assert (second / "states-0000-0000.bin").stat().st_ino == \
            (first / "states-0000-0000.bin").stat().st_ino
        # O(new states): the second snapshot writes exactly the grown
        # shard's delta segment + its rewritten Bloom bitset + the meta
        # blob — every other byte is a hard link.
        loaded_second = validate_checkpoint(second)
        meta_bytes = loaded_second.file_info["meta.pkl"]["bytes"]
        bloom0_bytes = (second / "bloom-0000.bin").stat().st_size
        assert loaded_second.bytes_written == \
            meta_bytes + delta.stat().st_size + bloom0_bytes
        assert loaded_second.bytes_written < full_bytes
        loaded = load_latest_checkpoint(tmp_path / "c")
        assert sorted(loaded.iter_digests()) == sorted(_digests(200) + extra)
        store.close()

    def test_links_survive_retention_pruning(self, tmp_path):
        """CHECKPOINT_KEEP drops the snapshot a segment was first
        written into; the hard link keeps the inode alive and the
        newest snapshot keeps validating (checksums included)."""
        store = ShardedStore(shards=2, bloom_bits=1 << 10,
                             directory=str(tmp_path / "s"))
        store.add_batch(_digests(100))
        previous = self._write(tmp_path / "c", store)
        for start in (100, 110, 120):  # two prunes of the chain's head
            store.add_batch([_hex(i) for i in range(start, start + 10)])
            previous = self._write(tmp_path / "c", store, previous=previous)
        snapshots = sorted((tmp_path / "c").glob("ckpt-*"))
        assert len(snapshots) == store_mod.CHECKPOINT_KEEP
        loaded = validate_checkpoint(snapshots[-1])  # checksums intact
        assert sorted(loaded.iter_digests()) == sorted(_digests(130))
        store.close()

    def test_adopted_baseline_links_on_the_first_resumed_snapshot(
            self, tmp_path):
        store = ShardedStore(shards=4, memory_budget=16,
                             directory=str(tmp_path / "a"))
        store.add_batch(_digests(300))
        first = self._write(tmp_path / "c", store)
        store.close()

        fresh = ShardedStore(shards=4, memory_budget=16,
                             directory=str(tmp_path / "b"))
        ckpt = load_latest_checkpoint(tmp_path / "c")
        baseline = restore_store(fresh, ckpt)
        assert baseline == ckpt.path
        assert len(fresh) == 300
        assert all(digest in fresh for digest in _digests(300))
        # The shipped Bloom summaries were loaded verbatim.
        for shard in range(4):
            bloom_file = ckpt.path / f"bloom-{shard:04d}.bin"
            if bloom_file.exists():
                assert bytes(fresh._bloom[shard].data) == \
                    bloom_file.read_bytes()
        second = self._write(tmp_path / "c", fresh, previous=baseline)
        for name in os.listdir(first):
            if name.endswith(".bin"):
                assert (second / name).stat().st_ino == \
                    (first / name).stat().st_ino
        fresh.close()

    def test_rebuilt_blooms_match_shipped_summaries(self, tmp_path):
        """Bitset content is a pure function of the shard's record set —
        a resume that cannot use the summaries (changed layout) rebuilds
        byte-identical ones at flush time."""
        store = ShardedStore(shards=4, directory=str(tmp_path / "a"))
        store.add_batch(_digests(300))
        self._write(tmp_path / "c", store)
        store.close()
        ckpt = load_latest_checkpoint(tmp_path / "c")
        rebuilt = ShardedStore(shards=4, directory=str(tmp_path / "b"))
        rebuilt.preload(ckpt.iter_digests())  # no summaries offered
        rebuilt.flush()
        for shard in range(4):
            bloom_file = ckpt.path / f"bloom-{shard:04d}.bin"
            if bloom_file.exists():
                assert bytes(rebuilt._bloom[shard].data) == \
                    bloom_file.read_bytes()
        rebuilt.close()


# ----------------------------------------------------------------------
# digests() under a concurrent flush (ISSUE 10 regression)
# ----------------------------------------------------------------------

class TestDigestsMidFlush:
    def test_flush_mid_iteration_neither_skips_nor_repeats(self, tmp_path):
        """A checkpoint can flush the tails while ``digests()`` streams
        (the frontier serializer iterates the store the snapshot is
        about to pin): the iteration must still yield exactly the
        records present when the shard's walk began — reading the
        flushed extent and tail live would skip the migrated tail
        records or yield them twice."""
        store = ShardedStore(shards=1, directory=str(tmp_path / "s"))
        store.add_batch(_digests(50))
        store.flush()
        store.add_batch([_hex(i) for i in range(50, 100)])  # tail only
        walker = store.digests()
        seen = [next(walker) for _ in range(10)]  # mid-flushed-leg
        store.flush()  # moves the tail past the flushed mark
        seen.extend(walker)
        assert sorted(seen) == sorted(_digests(100))
        store.close()

    def test_appends_during_iteration_do_not_corrupt_the_walk(
            self, tmp_path):
        """New digests added mid-iteration may or may not appear (the
        walk pins each shard as it reaches it), but the pinned records
        must come back exactly once even though appends move the shared
        file handle."""
        store = ShardedStore(shards=1, directory=str(tmp_path / "s"))
        store.add_batch(_digests(80))
        store.flush()
        walker = store.digests()
        seen = [next(walker) for _ in range(5)]
        store.add_batch([_hex(i) for i in range(80, 90)])
        store.flush()
        seen.extend(walker)
        assert sorted(seen) == sorted(_digests(80))
        store.close()


# ----------------------------------------------------------------------
# Resume across Bloom knob changes (ISSUE 10 bugfix)
# ----------------------------------------------------------------------

class TestBloomKnobResume:
    def _write(self, root, store):
        return write_checkpoint(
            root, spec=None,
            config=NiceConfig(checkpoint_dir=str(root), store_shards=4),
            stats=SearchStats(), frontier=[], rng_state=None, store=store)

    def test_bloom_checkpoint_resumes_with_bloom_disabled(self, tmp_path):
        """``--store-bloom-bits 0`` resuming a bloom-carrying snapshot
        must ignore the stale bitsets entirely, not load or consult
        them."""
        store = ShardedStore(shards=4, bloom_bits=1 << 10,
                             directory=str(tmp_path / "a"))
        store.add_batch(_digests(200))
        self._write(tmp_path / "c", store)
        store.close()
        ckpt = load_latest_checkpoint(tmp_path / "c")
        assert ckpt.summary_files  # the snapshot does carry bitsets
        fresh = ShardedStore(shards=4, bloom_bits=0,
                             directory=str(tmp_path / "b"))
        restore_store(fresh, ckpt)
        assert fresh._bloom is None  # no stale bitsets adopted
        assert len(fresh) == 200
        assert all(digest in fresh for digest in _digests(200))
        assert _hex(10_000) not in fresh  # exact probes, no filter
        fresh.close()

    def test_bloomless_checkpoint_resumes_with_bloom_enabled(
            self, tmp_path):
        """The inverse direction: a summary-less snapshot resumed with
        bloom enabled rebuilds bitsets from the records at flush time —
        byte-identical to a store that grew the same records natively."""
        store = ShardedStore(shards=4, bloom_bits=0,
                             directory=str(tmp_path / "a"))
        store.add_batch(_digests(200))
        self._write(tmp_path / "c", store)
        store.close()
        ckpt = load_latest_checkpoint(tmp_path / "c")
        assert not ckpt.summary_files
        fresh = ShardedStore(shards=4, directory=str(tmp_path / "b"))
        restore_store(fresh, ckpt)
        fresh.flush()
        native = ShardedStore(shards=4, directory=str(tmp_path / "n"))
        native.add_batch(_digests(200))
        native.flush()
        for shard in range(4):
            assert bytes(fresh._bloom[shard].data) == \
                bytes(native._bloom[shard].data)
        fresh.close()
        native.close()


# ----------------------------------------------------------------------
# Format-1 checkpoints still resume (migration path)
# ----------------------------------------------------------------------

def _downconvert_to_format_1(snapshot) -> None:
    """Rewrite a format-2 snapshot as its format-1 equivalent: ASCII
    records in one ``states-SSSS.bin`` per shard, no Bloom summaries, no
    v2 manifest keys — what a pre-bump build would have written."""
    manifest = json.loads((snapshot / "MANIFEST.json").read_text())
    assert manifest["format"] == store_mod.CHECKPOINT_FORMAT
    by_shard: dict[int, list] = {}
    for name in manifest["record_files"]:
        shard = int(name.split("-")[1].split(".")[0])
        by_shard.setdefault(shard, []).append(name)
    record_files = []
    files = {"meta.pkl": manifest["files"]["meta.pkl"]}
    for shard, names in sorted(by_shard.items()):
        ascii_records = bytearray()
        for name in sorted(names):
            packed = (snapshot / name).read_bytes()
            for off in range(0, len(packed), manifest["record_width"]):
                record = packed[off:off + manifest["record_width"]]
                ascii_records += record.hex().encode("ascii")
            (snapshot / name).unlink()
        legacy = f"states-{shard:04d}.bin"
        (snapshot / legacy).write_bytes(ascii_records)
        record_files.append(legacy)
        files[legacy] = {"bytes": len(ascii_records),
                         "blake2b": store_mod._file_digest(snapshot / legacy)}
    for name in manifest.get("summary_files", []):
        (snapshot / name).unlink()
    (snapshot / "MANIFEST.json").write_text(json.dumps({
        "format": 1,
        "states": manifest["states"],
        "record_width": manifest["record_width"] * 2,
        "record_files": record_files,
        "store": manifest["store"],
        "files": files,
    }, indent=1))


class TestFormatMigration:
    def test_resume_from_format_1_is_bit_identical(
            self, tmp_path, monkeypatch, serial_ping):
        scenario = _ping(checkpoint_dir=str(tmp_path / "c"),
                         checkpoint_interval=60, store="sharded",
                         store_shards=4, store_memory_budget=32)
        interrupt_after(monkeypatch, 150)
        with pytest.raises(Interrupted):
            nice.run(scenario)
        monkeypatch.undo()
        snapshots = sorted((tmp_path / "c").glob("ckpt-*"))
        _downconvert_to_format_1(snapshots[-1])
        for stale in snapshots[:-1]:  # leave only the format-1 snapshot
            import shutil
            shutil.rmtree(stale)
        loaded = load_latest_checkpoint(tmp_path / "c")
        assert loaded.format == 1
        assert loaded.record_encoding == store_mod.RECORD_ASCII
        _, stats = nice.resume(tmp_path / "c")
        assert_matches_serial(stats, serial_ping)
        # The resumed lineage writes format-2 snapshots from then on.
        newest = validate_checkpoint(
            sorted((tmp_path / "c").glob("ckpt-*"))[-1])
        assert newest.format == store_mod.CHECKPOINT_FORMAT
        assert newest.record_encoding == store_mod.RECORD_HEX


# ----------------------------------------------------------------------
# Checkpointer counter rollback (satellite: failed writes must not count)
# ----------------------------------------------------------------------

class TestWriteRollback:
    def test_failed_snapshot_rolls_back_checkpoints_written(self, tmp_path):
        config = NiceConfig(checkpoint_dir=str(tmp_path))
        store = MemoryStore()
        store.preload(_digests(5))
        stats = SearchStats()
        with pytest.warns(RuntimeWarning):
            checkpointer = Checkpointer(config, None, store, stats)

        def failing_snapshot_into(directory, previous=None):
            raise OSError("disk full")

        real = store.snapshot_into
        store.snapshot_into = failing_snapshot_into
        with pytest.raises(OSError, match="disk full"):
            checkpointer.write([], None)
        assert stats.checkpoints_written == 0
        assert stats.checkpoint_bytes_written == 0
        store.snapshot_into = real
        checkpointer.write([], None)
        assert stats.checkpoints_written == 1
        assert stats.checkpoint_bytes_written > 0


# ----------------------------------------------------------------------
# Crash-recovery harness: the sharded fast path has a SIGKILL leg
# ----------------------------------------------------------------------

class TestShardedCrashRecovery:
    def test_sigkill_then_resume_bit_identical(self, serial_ping, tmp_path):
        ckpt_dir = crash_run(tmp_path / "ckpt", kill_after_states=150,
                             checkpoint_interval=60, workers=0,
                             store="sharded", store_shards=4,
                             store_memory_budget=32, **KNOBS)
        _, stats = nice.resume(ckpt_dir)
        assert stats.store == "sharded"
        assert_matches_serial(stats, serial_ping)
