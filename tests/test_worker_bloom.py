"""Worker-side Bloom dedup pre-filter (ISSUE 10, protocol v4).

The scheduler broadcasts per-shard Bloom summaries of the master's
explored set; workers stub out children whose digest the summary may
hold (parking the full transition in a bounded cache) and the master
verifies every stub against the authoritative store, hydrating the rare
false positive with a by-digest fetch.  This suite covers the pieces in
isolation — summary delta/apply round-trips, the packed result encoding,
the parked-cache bound, the ``base_for`` counter contract — and then the
whole pipeline end-to-end: the explored state space must be
bit-identical to the serial engine with the pre-filter on, off, and
*saturated* (a deliberately tiny bitset that turns almost every fresh
child into a false-positive stub, forcing hydration round-trips on the
hot path), including under a worker death that takes its parked
children with it.
"""

from __future__ import annotations

from collections import OrderedDict

import pytest

from contract import counters, requires_fork, violated_properties
from fault_helpers import ChaosTransport, install
from repro import nice, scenarios
from repro.mc.scheduler import _Scheduler
from repro.mc.store import BloomFilter, DedupSummary, ShardedStore
from repro.mc.worker import WorkerRuntime
from repro.mc.wire import BloomSummary
from repro.scenarios import with_config

KNOBS = dict(stop_at_first_violation=False, batch_groups=1, batch_nodes=1,
             adaptive_batching=False)

ENGINES = [
    pytest.param(dict(start_method="fork"), marks=requires_fork,
                 id="fork"),
    pytest.param(dict(start_method="spawn"), id="spawn"),
    pytest.param(dict(transport="socket"), id="socket"),
]


def _hex(i: int) -> str:
    import hashlib
    return hashlib.md5(str(i).encode()).hexdigest()


def _ping(**overrides):
    return with_config(scenarios.ping_experiment(pings=2),
                       **{**KNOBS, **overrides})


@pytest.fixture(scope="module")
def serial_ping():
    return nice.run(_ping())


def assert_matches_serial(stats, serial_ping):
    assert counters(stats) == counters(serial_ping)
    assert violated_properties(stats) == violated_properties(serial_ping)


# ----------------------------------------------------------------------
# Summary delta/apply round-trip
# ----------------------------------------------------------------------

class TestDedupSummary:
    def test_delta_ships_only_dirty_shards_and_clears(self):
        master = DedupSummary(1 << 12, shards=4)
        for i in range(50):
            master.add(_hex(i))
        first = master.delta()
        assert first  # something grew
        assert master.delta() == []  # dirty set consumed
        master.add(_hex(999))
        second = master.delta()
        assert len(second) <= len(first)

    def test_apply_reproduces_membership(self):
        master = DedupSummary(1 << 12, shards=4)
        replica = DedupSummary(1 << 12, shards=4)
        digests = [_hex(i) for i in range(200)]
        for digest in digests:
            master.add(digest)
        replica.apply(master.delta())
        # A Bloom filter never answers a false negative: every digest
        # the master holds must probe positive on the replica.
        assert all(replica.probably_contains(d) for d in digests)

    def test_incremental_deltas_accumulate(self):
        master = DedupSummary(1 << 12, shards=2)
        replica = DedupSummary(1 << 12, shards=2)
        for start in (0, 100, 200):
            batch = [_hex(i) for i in range(start, start + 100)]
            for digest in batch:
                master.add(digest)
            replica.apply(master.delta())
            assert all(replica.probably_contains(d) for d in batch)

    def test_apply_ignores_foreign_shards(self):
        replica = DedupSummary(1 << 12, shards=2)
        replica.apply([(7, bytes((1 << 12) >> 3))])  # out of range: no-op
        assert not replica.probably_contains(_hex(1))

    def test_unpackable_digest_probes_negative(self):
        summary = DedupSummary(1 << 12, shards=2)
        assert summary.probably_contains("") is False
        assert summary.probably_contains(None) is False

    def test_store_export_matches_worker_summary(self, tmp_path):
        """The master exports deltas straight from its store; a worker
        replica built from them must cover every stored digest."""
        store = ShardedStore(shards=4, directory=str(tmp_path / "s"))
        store.enable_summary(1 << 12, 4)
        digests = [_hex(i) for i in range(300)]
        store.add_batch(digests)
        replica = DedupSummary(1 << 12, shards=4)
        replica.apply(store.bloom_delta())
        assert all(replica.probably_contains(d) for d in digests)
        assert store.bloom_delta() == []  # drained
        store.close()

    def test_apply_summary_rebuilds_on_shape_change(self):
        runtime = WorkerRuntime.__new__(WorkerRuntime)
        runtime.summary = DedupSummary(1 << 12, shards=2)
        old = runtime.summary
        runtime.apply_summary(BloomSummary(shards=4, bits=1 << 10,
                                           deltas=[]))
        assert runtime.summary is not old
        assert runtime.summary.shards == 4
        assert runtime.summary.budget == 1 << 10
        assert runtime.summary.bits == DedupSummary(1 << 10, shards=4).bits

    def test_chunked_slices_apply_like_whole_bitsets(self):
        """``(shard, offset, chunk)`` slices — the size-capped broadcast
        form — must reassemble to exactly the whole-bitset state."""
        master = DedupSummary(1 << 12, shards=2)
        for i in range(200):
            master.add(_hex(i))
        replica = DedupSummary(1 << 12, shards=2)
        for shard, data in master.delta():
            for offset in range(0, len(data), 16):
                replica.apply([(shard, offset, data[offset:offset + 16])])
        assert all(replica.probably_contains(_hex(i)) for i in range(200))
        assert [bytes(f.data) for f in replica.filters] == \
            [bytes(f.data) for f in master.filters]


# ----------------------------------------------------------------------
# Budget-capped broadcast: one message never outgrows a pipe buffer
# ----------------------------------------------------------------------

class TestSummaryBroadcastBudget:
    """A summary message bigger than a pipe's unread capacity blocks the
    master in ``submit`` — forever, against a worker that died between
    the submit-time liveness check and the write (the deadlock the
    fault-tolerance suite hung on).  ``_summary_for`` must therefore cap
    every message at SUMMARY_BUDGET bitset bytes and resume shipping
    where it left off on the next dispatch."""

    @staticmethod
    def _scheduler(payload):
        sched = _Scheduler.__new__(_Scheduler)
        sched._summary_shards = len(payload)
        sched._summary_bits = sum(len(d) for d in payload.values()) * 8
        sched._summary_versions = dict.fromkeys(payload, 1)
        sched._summary_payload = dict(payload)
        sched._worker_synced = {}
        sched._worker_pending = {}
        return sched

    def test_budget_caps_each_message_and_sync_converges(self):
        shard_bytes = _Scheduler.SUMMARY_BUDGET // 2
        payload = {s: bytes([s]) * shard_bytes for s in range(5)}
        sched = self._scheduler(payload)
        got: dict[int, bytearray] = {}
        rounds = 0
        while (message := sched._summary_for(0)) is not None:
            rounds += 1
            assert sum(len(chunk) for _, _, chunk in message.deltas) \
                <= _Scheduler.SUMMARY_BUDGET
            for shard, offset, chunk in message.deltas:
                buf = got.setdefault(shard, bytearray(shard_bytes))
                buf[offset:offset + len(chunk)] = chunk
        assert rounds >= 3  # 5 half-budget shards cannot fit two messages
        assert {s: bytes(b) for s, b in got.items()} == payload

    def test_oversized_shard_ships_in_slices(self):
        big = bytes(range(256)) * (_Scheduler.SUMMARY_BUDGET * 3 // 256)
        sched = self._scheduler({0: big})
        rebuilt = bytearray(len(big))
        while (message := sched._summary_for(0)) is not None:
            for _, offset, chunk in message.deltas:
                assert len(chunk) <= _Scheduler.SUMMARY_BUDGET
                rebuilt[offset:offset + len(chunk)] = chunk
        assert bytes(rebuilt) == big

    def test_version_bump_mid_broadcast_reships_the_shard(self):
        size = _Scheduler.SUMMARY_BUDGET * 2
        sched = self._scheduler({0: b"a" * size})
        assert sched._summary_for(0) is not None  # first half, version 1
        sched._summary_versions[0] = 2  # the shard grows mid-broadcast
        sched._summary_payload[0] = b"b" * size
        while sched._summary_for(0) is not None:
            pass
        # Completing at the stale version forced a fresh full pass.
        assert sched._worker_synced[0][0] == 2


# ----------------------------------------------------------------------
# Packed result encoding (compact on the worker, inflate on the master)
# ----------------------------------------------------------------------

def _out(children):
    return {"children": [(gi, si, list(kids))
                         for gi, si, kids in children]}


class TestCompactInflate:
    def test_round_trip_restores_every_kid(self):
        kids_a = [("t1", _hex(1)), (None, _hex(2)), ("t2", _hex(3))]
        kids_b = [(None, _hex(2)), ("t3", _hex(4))]
        out = _out([(0, None, kids_a), (1, 2, kids_b)])
        WorkerRuntime._compact_digests(out)
        packed = out["kid_digests"]
        assert packed[0] == "hex" and packed[1] == 16
        assert len(packed[2]) == 5 * 16
        # Stubs collapse to a bare None slot, full kids keep transitions.
        assert out["children"][0][2][1] is None
        assert out["children"][0][2][0] == ("t1", None)
        _Scheduler._inflate_digests(out)
        assert out["children"] == [(0, None, kids_a), (1, 2, kids_b)]
        assert "kid_digests" not in out

    def test_ascii_digests_round_trip(self):
        kids = [("t", "state-one"), (None, "state-two")]
        out = _out([(0, 0, kids)])
        WorkerRuntime._compact_digests(out)
        assert out["kid_digests"][0] == "ascii"
        _Scheduler._inflate_digests(out)
        assert out["children"] == [(0, 0, kids)]

    def test_mixed_widths_fall_back_to_inline(self):
        kids = [("t", "ab"), (None, "abcd")]
        out = _out([(0, 0, kids)])
        WorkerRuntime._compact_digests(out)
        assert "kid_digests" not in out
        assert out["children"] == [(0, 0, kids)]  # untouched

    def test_unencodable_digest_falls_back_to_inline(self):
        kids = [("t", "ok-digest"), (None, "bad☃digest")]
        out = _out([(0, 0, kids)])
        WorkerRuntime._compact_digests(out)
        assert "kid_digests" not in out
        assert out["children"] == [(0, 0, kids)]

    def test_inflate_without_blob_is_a_no_op(self):
        kids = [("t", _hex(1)), (None, _hex(2))]
        out = _out([(0, 0, kids)])
        _Scheduler._inflate_digests(out)
        assert out["children"] == [(0, 0, kids)]


# ----------------------------------------------------------------------
# base_for counter contract (ISSUE 10 bugfix)
# ----------------------------------------------------------------------

class TestBaseForAccounting:
    """DESIGN.md: every restoration bumps exactly one of cache_hits /
    cache_misses — a hit whenever *any* cached entry provided the clone
    source (the root entry ``()`` included), a miss only for the
    fall-through full replay from the initial state."""

    class _FakeSystem:
        def clone(self):
            return self

    def _runtime(self, cached=()):
        runtime = WorkerRuntime.__new__(WorkerRuntime)
        runtime.cache = OrderedDict(
            (trace, self._FakeSystem()) for trace in cached)
        runtime.initial = self._FakeSystem()
        runtime._replay = lambda system, trace, k: system
        return runtime

    @staticmethod
    def _counters():
        return {"cache_hits": 0, "cache_misses": 0, "replayed": 0}

    def test_exact_hit_replays_nothing(self):
        runtime = self._runtime(cached=[("a", "b")])
        out = self._counters()
        runtime.base_for(("a", "b"), out)
        assert (out["cache_hits"], out["cache_misses"]) == (1, 0)
        assert out["replayed"] == 0

    def test_ancestor_hit_replays_the_suffix(self):
        runtime = self._runtime(cached=[("a",)])
        out = self._counters()
        runtime.base_for(("a", "b", "c"), out)
        assert (out["cache_hits"], out["cache_misses"]) == (1, 0)
        assert out["replayed"] == 2

    def test_root_entry_restore_of_a_deep_trace_is_a_hit(self):
        runtime = self._runtime(cached=[()])
        out = self._counters()
        runtime.base_for(("a", "b", "c"), out)
        assert (out["cache_hits"], out["cache_misses"]) == (1, 0)
        assert out["replayed"] == 3

    def test_root_trace_restore_with_cached_root_is_a_hit(self):
        runtime = self._runtime(cached=[()])
        out = self._counters()
        runtime.base_for((), out)
        assert (out["cache_hits"], out["cache_misses"]) == (1, 0)
        assert out["replayed"] == 0

    def test_cold_cache_is_a_miss_with_full_replay(self):
        runtime = self._runtime(cached=[])
        out = self._counters()
        runtime.base_for(("a", "b"), out)
        assert (out["cache_hits"], out["cache_misses"]) == (0, 1)
        assert out["replayed"] == 2

    def test_hits_plus_misses_equals_restorations(self):
        runtime = self._runtime(cached=[(), ("a",)])
        out = self._counters()
        for trace in [(), ("a",), ("a", "b"), ("x", "y"), ("a", "b")]:
            runtime.base_for(trace, out)
        assert out["cache_hits"] + out["cache_misses"] == 5


# ----------------------------------------------------------------------
# Parked-children cache
# ----------------------------------------------------------------------

class TestParkedCache:
    def _runtime(self):
        runtime = WorkerRuntime.__new__(WorkerRuntime)
        runtime.parked = OrderedDict()
        return runtime

    def test_fetch_returns_exactly_the_requested_ordinals(self):
        runtime = self._runtime()
        runtime.park(7, ["t0", "t1", "t2"])
        assert runtime.fetch_children(7, [0, 2]) == {0: "t0", 2: "t2"}
        # The fetch consumed the entry: the task is merged after it.
        assert runtime.fetch_children(7, [0]) is None

    def test_eviction_answers_missing(self):
        runtime = self._runtime()
        for task_id in range(WorkerRuntime.MAX_PARKED + 3):
            runtime.park(task_id, ["t"])
        assert len(runtime.parked) == WorkerRuntime.MAX_PARKED
        assert runtime.fetch_children(0, [0]) is None  # evicted (oldest)
        assert runtime.fetch_children(
            WorkerRuntime.MAX_PARKED + 2, [0]) == {0: "t"}

    def test_out_of_range_ordinal_answers_missing(self):
        runtime = self._runtime()
        runtime.park(1, ["t0"])
        assert runtime.fetch_children(1, [5]) is None


# ----------------------------------------------------------------------
# End-to-end exactness (the acceptance contract)
# ----------------------------------------------------------------------

class TestEndToEnd:
    @pytest.mark.parametrize("overrides", ENGINES)
    def test_prefilter_is_bit_identical(self, overrides, serial_ping):
        stats = nice.run(_ping(workers=2, **overrides))
        assert_matches_serial(stats, serial_ping)

    @pytest.mark.parametrize("overrides", ENGINES)
    def test_disabled_prefilter_is_bit_identical(self, overrides,
                                                 serial_ping):
        stats = nice.run(_ping(workers=2, store_bloom_broadcast=False,
                               **overrides))
        assert_matches_serial(stats, serial_ping)
        assert stats.bloom_prefilter_drops == 0
        assert stats.result_bytes_saved == 0

    def test_saturated_summary_forces_hydration_and_stays_exact(
            self, serial_ping):
        """An 8-bit bitset saturates almost immediately, so nearly every
        child — fresh ones included — crosses as a stub and the master's
        verification walk must hydrate the fresh ones.  The hostile case
        for the stub/hydrate protocol, on the hot path of every task."""
        stats = nice.run(_ping(workers=2, store_bloom_bits=8))
        assert_matches_serial(stats, serial_ping)
        assert stats.bloom_prefilter_drops > 0
        assert stats.bloom_prefilter_fp > 0  # hydration round-trips ran

    def test_prefilter_reports_savings_on_revisits(self, serial_ping):
        stats = nice.run(_ping(workers=2))
        assert_matches_serial(stats, serial_ping)
        if stats.bloom_prefilter_drops:
            assert stats.result_bytes_saved > 0
        assert stats.result_payload_bytes > 0


# ----------------------------------------------------------------------
# Chaos: a worker dies holding parked bloom-positive children
# ----------------------------------------------------------------------

class TestChaosWithParkedChildren:
    def test_death_holding_parked_children_stays_exact(self, serial_ping,
                                                       monkeypatch):
        """The saturated summary guarantees the victim worker has stubs
        parked (and the master hydration fetches in flight) when it is
        killed: its tasks requeue, the parked transitions are gone, and
        re-expansion plus master-side dedup must still land on the
        serial state space."""
        wrappers = []

        def wrap(transport):
            chaos = ChaosTransport(transport, {5: 0})
            wrappers.append(chaos)
            return chaos

        install(monkeypatch, wrap)
        stats = nice.run(_ping(workers=2, store_bloom_bits=8))
        assert wrappers and wrappers[0].killed == [0]
        assert_matches_serial(stats, serial_ping)
        assert stats.bloom_prefilter_drops > 0
