"""Unit tests for the NOX-like controller platform."""

import pytest

from repro.controller.api import (
    LiveControllerAPI,
    RecordingControllerAPI,
    normalize_actions,
    normalize_match,
    OUTPUT,
)
from repro.controller.app import App
from repro.controller.runtime import ControllerRuntime
from repro.errors import ControllerError
from repro.openflow.actions import ActionDrop, ActionFlood, ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    FlowMod,
    PacketIn,
    PacketOut,
    PortStatus,
    StatsReply,
    StatsRequest,
)
from repro.openflow.packet import MacAddress, Packet
from repro.openflow.switch import SwitchModel


class FakeSystem:
    """Just enough of a System for the live API: a switch registry."""

    def __init__(self):
        self.switches = {"s1": SwitchModel("s1", [1, 2])}


def pkt():
    return Packet(eth_src=MacAddress.from_int(1), eth_dst=MacAddress.from_int(2))


class TestNormalization:
    def test_match_passthrough(self):
        match = Match(tp_dst=80)
        assert normalize_match(match) is match

    def test_match_from_dict(self):
        match = normalize_match({"tp_dst": 80})
        assert match.tp_dst == 80

    def test_bad_match(self):
        with pytest.raises(ControllerError):
            normalize_match(42)

    def test_paper_style_action_pair(self):
        assert normalize_actions([OUTPUT, 3]) == [ActionOutput(3)]

    def test_action_objects_passthrough(self):
        actions = [ActionFlood(), ActionDrop()]
        assert normalize_actions(actions) == actions

    def test_action_names(self):
        assert normalize_actions(["flood"]) == [ActionFlood()]
        assert normalize_actions(["drop"]) == [ActionDrop()]

    def test_bad_action(self):
        with pytest.raises(ControllerError):
            normalize_actions(["teleport"])


class TestLiveAPI:
    def test_install_rule_enqueues_flow_mod(self):
        system = FakeSystem()
        api = LiveControllerAPI(system)
        api.install_rule("s1", {"tp_dst": 80}, [OUTPUT, 2], soft_timer=5)
        message = system.switches["s1"].ofp_in.peek()
        assert isinstance(message, FlowMod)
        assert message.idle_timeout == 5
        assert message.actions == [ActionOutput(2)]

    def test_packet_out_defaults_to_table(self):
        from repro.openflow.actions import ActionTable

        system = FakeSystem()
        api = LiveControllerAPI(system)
        api.send_packet_out("s1", pkt=None, bufid=7)
        message = system.switches["s1"].ofp_in.peek()
        assert isinstance(message, PacketOut)
        assert message.actions == [ActionTable()]

    def test_flood_packet(self):
        system = FakeSystem()
        api = LiveControllerAPI(system)
        api.flood_packet("s1", None, 3)
        assert system.switches["s1"].ofp_in.peek().actions == [ActionFlood()]

    def test_drop_buffer_sends_empty_action_list(self):
        system = FakeSystem()
        api = LiveControllerAPI(system)
        api.drop_buffer("s1", 3)
        assert system.switches["s1"].ofp_in.peek().actions == []

    def test_stats_and_barrier(self):
        system = FakeSystem()
        api = LiveControllerAPI(system)
        api.query_port_stats("s1", xid=9)
        api.send_barrier("s1", xid=4)
        items = system.switches["s1"].ofp_in.items()
        assert isinstance(items[0], StatsRequest) and items[0].xid == 9
        assert items[1].xid == 4

    def test_unknown_switch(self):
        api = LiveControllerAPI(FakeSystem())
        with pytest.raises(ControllerError):
            api.install_rule("nope", {}, [OUTPUT, 1])


class TestRecordingAPI:
    def test_records_without_side_effects(self):
        api = RecordingControllerAPI()
        api.install_rule("s1", {}, [OUTPUT, 1])
        api.flood_packet("s1", None, 2)
        api.drop_buffer("s1", 2)
        assert [c[0] for c in api.calls] == [
            "install_rule", "flood_packet", "drop_buffer"]


class RecorderApp(App):
    """Collects handler invocations for dispatch tests."""

    def __init__(self):
        self.events = []

    def boot(self, api, topo):
        self.events.append(("boot",))

    def switch_join(self, api, sw_id, stats):
        self.events.append(("join", sw_id))

    def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
        self.events.append(("packet_in", sw_id, inport, bufid, reason))

    def port_stats_in(self, api, sw_id, stats, xid=0):
        self.events.append(("stats", sw_id, xid))

    def port_status(self, api, sw_id, port, is_up):
        self.events.append(("port_status", sw_id, port, is_up))

    def barrier_reply(self, api, sw_id, xid=0):
        self.events.append(("barrier", sw_id, xid))


class TestRuntimeDispatch:
    def test_boot_delivers_joins_sorted(self):
        app = RecorderApp()
        runtime = ControllerRuntime(app)
        runtime.boot(RecordingControllerAPI(), None, ["s2", "s1"])
        assert app.events == [("boot",), ("join", "s1"), ("join", "s2")]

    def test_dispatch_packet_in(self):
        app = RecorderApp()
        runtime = ControllerRuntime(app)
        switch = SwitchModel("s1", [1])
        switch.ofp_out.enqueue(PacketIn("s1", 1, pkt(), 5, "no_match"))
        assert runtime.peek_kind(switch) == "packet_in"
        runtime.handle_message(RecordingControllerAPI(), switch)
        assert app.events[-1] == ("packet_in", "s1", 1, 5, "no_match")
        assert len(switch.ofp_out) == 0

    def test_dispatch_stats_and_others(self):
        app = RecorderApp()
        runtime = ControllerRuntime(app)
        switch = SwitchModel("s1", [1])
        switch.ofp_out.enqueue(StatsReply("s1", "port", {1: {}}, xid=2))
        switch.ofp_out.enqueue(PortStatus("s1", 1, False))
        switch.ofp_out.enqueue(BarrierReply("s1", xid=7))
        api = RecordingControllerAPI()
        assert runtime.peek_kind(switch) == "stats"
        runtime.handle_message(api, switch)
        runtime.handle_message(api, switch)
        runtime.handle_message(api, switch)
        assert app.events == [("stats", "s1", 2),
                              ("port_status", "s1", 1, False),
                              ("barrier", "s1", 7)]

    def test_handle_on_empty_raises(self):
        runtime = ControllerRuntime(RecorderApp())
        with pytest.raises(ControllerError):
            runtime.handle_message(RecordingControllerAPI(),
                                   SwitchModel("s1", [1]))

    def test_peek_kind_empty(self):
        runtime = ControllerRuntime(RecorderApp())
        assert runtime.peek_kind(SwitchModel("s1", [1])) is None
