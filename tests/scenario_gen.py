"""Seeded random scenario generator for the differential test suite.

:func:`random_scenario` builds a bounded, deterministic-from-seed NICE
scenario: a random loop-free switch topology (loops make the exhaustive
space unbounded — that is BUG-III's job, not this suite's), a random mix
of scripted clients and ping responders on random attachment points, and
random (small) PKT-SEQ bounds.  Loop-free topologies plus scripted
traffic keep every generated state space exhaustively searchable in well
under a second, so the differential suite can sweep many seeds.

The generated scenarios are *hand-built* (no registry spec): the
differential engines that need to cross a process boundary do so through
the ``fork`` transport, which inherits the closures.
"""

from __future__ import annotations

import random

from repro.config import NiceConfig
from repro.hosts.client import Client
from repro.hosts.ping import PingResponder
from repro.nice import Scenario
from repro.openflow.packet import MacAddress, ip_from_string, l2_ping
from repro.properties import NoBlackHoles, NoForwardingLoops
from repro.topo.topology import Topology


def random_scenario(seed: int) -> Scenario:
    """A bounded scenario, deterministic from ``seed``."""
    rng = random.Random(seed)
    topo = Topology()

    # Switches in a random tree: switch i links to a random earlier
    # switch, so the topology is connected and loop-free.  Ports 1..2 are
    # reserved for inter-switch links (a tree needs at most one uplink
    # and this generator caps fan-out), the rest host attachment.
    n_switches = rng.randint(1, 3)
    next_port: dict[str, int] = {}
    uplinks: dict[str, int] = {}
    for i in range(n_switches):
        name = f"s{i + 1}"
        topo.add_switch(name, list(range(1, 8)))
        next_port[name] = 3
        uplinks[name] = 1
        if i:
            parent = f"s{rng.randint(1, i)}"
            topo.add_link(name, 1, parent, uplinks[parent])
            uplinks[name] = 2
            uplinks[parent] += 1
            if uplinks[parent] > 2:  # parent's link ports exhausted
                uplinks[parent] = next_port[parent]
                next_port[parent] += 1

    n_hosts = rng.randint(2, 3)
    macs = [MacAddress((0, 0, 0, 0, 9, i + 1)) for i in range(n_hosts)]
    ips = [ip_from_string(f"10.9.0.{i + 1}") for i in range(n_hosts)]
    names = [f"h{i + 1}" for i in range(n_hosts)]
    for name, mac, ip in zip(names, macs, ips):
        switch = f"s{rng.randint(1, n_switches)}"
        topo.add_host(name, mac, ip, switch, next_port[switch])
        next_port[switch] += 1

    # Host mix: every host is either a scripted client (1-2 pings to a
    # random *other* host) or a ping responder; at most 3 scripted
    # packets in total bound the PKT-SEQ tree.
    budget = 3
    host_plans: list[tuple[str, list]] = []
    for i, name in enumerate(names):
        if i and rng.random() < 0.4:
            host_plans.append((name, None))  # responder
            continue
        pings = min(budget, rng.randint(1, 2))
        budget -= pings
        script = []
        for p in range(pings):
            target = rng.choice([j for j in range(n_hosts) if j != i])
            script.append(l2_ping(macs[i], macs[target],
                                  payload=f"p{i}.{p}"))
        host_plans.append((name, script))

    def hosts_factory():
        hosts = []
        for (name, script), mac, ip in zip(host_plans, macs, ips):
            if script is None:
                hosts.append(PingResponder(name, mac, ip))
            else:
                client = Client(name, mac, ip, script=list(script),
                                symbolic_client=False)
                client.ordered_script = rng_bool
                hosts.append(client)
        return hosts

    rng_bool = rng.random() < 0.5
    total_packets = sum(len(s) for _, s in host_plans if s is not None)
    config = NiceConfig(
        use_symbolic_execution=False,
        stop_at_first_violation=False,
        max_pkt_sequence=max(total_packets, 1),
        # A burst of 2 on a full 3-packet script explodes the interleaving
        # space past what a many-seed sweep can afford; cap it.
        max_outstanding=1 if total_packets >= 3 else rng.randint(1, 2),
    )

    from repro.apps.pyswitch import PySwitch

    return Scenario(topo, PySwitch, hosts_factory,
                    [NoForwardingLoops(), NoBlackHoles()], config,
                    name=f"random-{seed}")
