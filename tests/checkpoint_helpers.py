"""Tests-only driver for the crash-recovery harness.

:func:`crash_run` launches ``_crash_main.py`` in its **own session** (so
the in-process ``killpg`` cannot reach pytest), waits for the SIGKILL,
and returns the checkpoint directory the dead master left behind.
:func:`corrupt_newest` simulates a torn write by truncating a file of
the newest snapshot — resume must fall back to the previous one.

:func:`interrupt_after` plants an *in-process* interruption point (the
same ``create_store`` seam the subprocess harness uses) that raises
instead of SIGKILLing — the cheap variant the differential suite runs
per seed, and the SIGTERM tests reuse it to deliver the signal at a
deterministic state count.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys

import repro
from repro.mc import store as store_mod

HERE = pathlib.Path(__file__).resolve().parent
_SRC = str(pathlib.Path(repro.__file__).resolve().parent.parent)


class Interrupted(Exception):
    """Raised by the in-process interruption point."""


def crash_run(checkpoint_dir, kill_after_states: int, *, scenario="ping",
              kwargs=None, timeout=180.0, **overrides) -> pathlib.Path:
    """Run a checkpointing search in a subprocess and SIGKILL it (master
    plus workers) once ``kill_after_states`` states are explored; returns
    ``checkpoint_dir`` with at least one completed snapshot in it."""
    checkpoint_dir = pathlib.Path(checkpoint_dir)
    payload = {
        "scenario": scenario,
        "kwargs": kwargs or {"pings": 2},
        "overrides": {"checkpoint_dir": str(checkpoint_dir), **overrides},
        "kill_after_states": kill_after_states,
    }
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (_SRC, env.get("PYTHONPATH")) if p)
    proc = subprocess.run(
        [sys.executable, str(HERE / "_crash_main.py"), json.dumps(payload)],
        env=env, start_new_session=True, capture_output=True, text=True,
        timeout=timeout)
    assert proc.returncode == -signal.SIGKILL, (
        f"expected the master to die of SIGKILL, got {proc.returncode};\n"
        f"stdout: {proc.stdout}\nstderr: {proc.stderr}")
    snapshots = sorted(checkpoint_dir.glob("ckpt-*"))
    assert snapshots, (
        f"the crashed run left no completed checkpoint in {checkpoint_dir};"
        f"\nstderr: {proc.stderr}")
    return checkpoint_dir


def corrupt_newest(checkpoint_dir, filename: str | None = None) -> pathlib.Path:
    """Truncate one file of the newest snapshot (default: its largest) to
    half its size — a torn write.  Returns the corrupted snapshot dir."""
    newest = sorted(pathlib.Path(checkpoint_dir).glob("ckpt-*"))[-1]
    if filename is None:
        target = max((p for p in newest.iterdir() if p.is_file()),
                     key=lambda p: p.stat().st_size)
    else:
        target = newest / filename
    data = target.read_bytes()
    target.write_bytes(data[:len(data) // 2])
    return newest


def interrupting_create_store(states: int, action):
    """A ``create_store`` replacement whose stores trigger ``action``
    once they hold ``states`` digests — THE interruption seam, shared by
    the in-process tests (:func:`interrupt_after`) and the subprocess
    crash harness (``_crash_main.py``), so both kill at the same point
    by construction."""
    real_create = store_mod.create_store

    def create_with_interrupt(config):
        store = real_create(config)
        real_add = store.add

        def add(digest):
            fresh = real_add(digest)
            if fresh and len(store) >= states:
                action()
            return fresh

        store.add = add
        return store

    return create_with_interrupt


def interrupt_after(monkeypatch, states: int,
                    action=None) -> None:
    """Patch the ``create_store`` seam so the running search's explored
    set triggers ``action`` (default: raise :class:`Interrupted`) once it
    holds ``states`` digests."""
    if action is None:
        def action():
            raise Interrupted(f"interrupted at {states} states")

    monkeypatch.setattr(store_mod, "create_store",
                        interrupting_create_store(states, action))
