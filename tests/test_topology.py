"""Unit tests for topologies and spanning-tree flooding."""

import pytest

from repro.errors import TopologyError
from repro.openflow.packet import MacAddress
from repro.topo.spanning_tree import spanning_tree_links, spanning_tree_ports
from repro.topo.topology import Endpoint, Topology


def line_topology():
    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_switch("s2", [1, 2])
    topo.add_link("s1", 2, "s2", 1)
    topo.add_host("A", "00:00:00:00:00:01", "10.0.0.1", "s1", 1)
    topo.add_host("B", "00:00:00:00:00:02", "10.0.0.2", "s2", 2)
    return topo


def triangle_topology():
    topo = Topology()
    for name in ("s1", "s2", "s3"):
        topo.add_switch(name, [1, 2, 3])
    topo.add_link("s1", 2, "s2", 1)
    topo.add_link("s2", 2, "s3", 1)
    topo.add_link("s3", 2, "s1", 3)
    topo.add_host("A", "00:00:00:00:00:01", "10.0.0.1", "s1", 1)
    return topo


class TestConstruction:
    def test_endpoint_queries(self):
        topo = line_topology()
        ep = topo.endpoint("s1", 2)
        assert ep.kind == Endpoint.KIND_SWITCH
        assert (ep.node, ep.port) == ("s2", 1)
        assert topo.endpoint("s2", 1) == Endpoint(Endpoint.KIND_SWITCH, "s1", 2)
        host_ep = topo.endpoint("s1", 1)
        assert host_ep.kind == Endpoint.KIND_HOST
        assert host_ep.node == "A"

    def test_host_location(self):
        topo = line_topology()
        assert topo.host_location("B") == ("s2", 2)

    def test_duplicate_switch_rejected(self):
        topo = Topology()
        topo.add_switch("s1", [1])
        with pytest.raises(TopologyError):
            topo.add_switch("s1", [1])

    def test_unknown_port_rejected(self):
        topo = Topology()
        topo.add_switch("s1", [1])
        with pytest.raises(TopologyError):
            topo.add_host("A", "00:00:00:00:00:01", "10.0.0.1", "s1", 9)

    def test_port_conflict_rejected(self):
        topo = line_topology()
        with pytest.raises(TopologyError):
            topo.add_host("C", "00:00:00:00:00:03", "10.0.0.3", "s1", 2)

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_switch("s1", [1, 2])
        with pytest.raises(TopologyError):
            topo.add_link("s1", 1, "s1", 2)

    def test_duplicate_mac_detected_by_validate(self):
        topo = Topology()
        topo.add_switch("s1", [1, 2])
        topo.add_host("A", "00:00:00:00:00:01", "10.0.0.1", "s1", 1)
        topo.add_host("B", "00:00:00:00:00:01", "10.0.0.2", "s1", 2)
        with pytest.raises(TopologyError):
            topo.validate()

    def test_string_addresses_are_parsed(self):
        topo = line_topology()
        assert topo.hosts["A"].mac == MacAddress.from_string("00:00:00:00:00:01")
        assert topo.hosts["A"].ip == 0x0A000001


class TestQueries:
    def test_switch_links_deduplicated(self):
        topo = triangle_topology()
        links = topo.switch_links()
        assert len(links) == 3

    def test_switch_graph(self):
        graph = triangle_topology().switch_graph()
        assert graph["s1"] == {"s2", "s3"}

    def test_domain_knowledge_sets(self):
        topo = line_topology()
        assert len(topo.mac_addresses()) == 2
        assert len(topo.ip_addresses()) == 2

    def test_host_by_mac(self):
        topo = line_topology()
        found = topo.host_by_mac(MacAddress.from_string("00:00:00:00:00:02"))
        assert found.name == "B"
        assert topo.host_by_mac(MacAddress.broadcast()) is None


class TestSpanningTree:
    def test_triangle_drops_one_link(self):
        topo = triangle_topology()
        kept = spanning_tree_links(topo)
        assert len(kept) == 2  # 3 switches, tree has 2 edges

    def test_flood_ports_exclude_cut_link(self):
        topo = triangle_topology()
        ports = spanning_tree_ports(topo)
        total_link_ports = sum(
            1 for sw in ports
            for p in ports[sw]
            if topo.endpoint(sw, p) is not None
            and topo.endpoint(sw, p).kind == Endpoint.KIND_SWITCH
        )
        assert total_link_ports == 4  # 2 tree edges x 2 ends

    def test_host_and_loose_ports_always_floodable(self):
        topo = triangle_topology()
        ports = spanning_tree_ports(topo)
        assert 1 in ports["s1"]   # host port
        assert 3 in ports["s2"]   # loose port

    def test_line_topology_keeps_all(self):
        topo = line_topology()
        ports = spanning_tree_ports(topo)
        assert ports["s1"] == {1, 2}
        assert ports["s2"] == {1, 2}

    def test_deterministic(self):
        assert (spanning_tree_ports(triangle_topology())
                == spanning_tree_ports(triangle_topology()))
