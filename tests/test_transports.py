"""The transport-agnostic scheduler: spawn workers, socket workers,
affinity routing, replay-cache instrumentation, and honest fallbacks.

Acceptance contract (ISSUE 2): an exhaustive search through the *socket*
transport on localhost (2+ workers) and through the *spawn* local
transport reports ``unique_states``, ``transitions_executed`` and violated
properties identical to the serial engine.  The scheduler and worker
runtime are shared by every transport, so these tests close the loop the
fork-only suite (``tests/test_parallel_search.py``) opened.
"""

from __future__ import annotations

import socket as socket_mod

import pytest

from contract import counters, exhaustive, requires_fork, violated_properties
from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc import wire
from repro.mc.scheduler import ParallelSearcher
from repro.mc.transport.socket import parse_address
from repro.nice import Scenario
from repro.scenarios import with_config


@pytest.fixture(scope="module")
def serial_direct_path():
    return exhaustive(scenarios.pyswitch_direct_path())


def hand_built_scenario() -> Scenario:
    """A Scenario assembled without the registry: no portable spec, so
    only fork workers (closure inheritance) can serve it."""
    template = scenarios.pyswitch_direct_path()
    return Scenario(template.topo, template.app_factory,
                    template.hosts_factory, template.properties,
                    template.config, name="hand-built")


# ----------------------------------------------------------------------
# Acceptance: spawn and socket explore the identical state space
# ----------------------------------------------------------------------

class TestSpawnTransport:
    def test_exhaustive_search_matches_serial(self, serial_direct_path):
        parallel = exhaustive(scenarios.pyswitch_direct_path(),
                              workers=2, start_method="spawn")
        assert parallel.engine == "local-spawn"
        assert parallel.workers == 2
        assert counters(parallel) == counters(serial_direct_path)
        assert violated_properties(parallel) == \
            violated_properties(serial_direct_path)


class TestSocketTransport:
    def test_exhaustive_search_matches_serial(self, serial_direct_path):
        parallel = exhaustive(scenarios.pyswitch_direct_path(),
                              workers=2, transport="socket")
        assert parallel.engine == "socket"
        assert parallel.workers == 2
        assert counters(parallel) == counters(serial_direct_path)
        assert violated_properties(parallel) == \
            violated_properties(serial_direct_path)

    @pytest.mark.slow
    def test_first_violation_mode(self):
        result = nice.run(with_config(scenarios.pyswitch_direct_path(),
                                      workers=2, transport="socket"))
        assert result.found_violation
        assert result.terminated == "first_violation"
        assert violated_properties(result) == ["StrictDirectPaths"]

    def test_parse_address(self):
        assert parse_address("127.0.0.1:7000") == ("127.0.0.1", 7000)
        assert parse_address("7000") == ("127.0.0.1", 7000)
        assert parse_address(":7000") == ("127.0.0.1", 7000)
        with pytest.raises(ValueError):
            parse_address("nope")


# ----------------------------------------------------------------------
# Honest fallbacks: a workers>0 request that cannot be honored warns
# ----------------------------------------------------------------------

class TestFallbackWarnings:
    @requires_fork
    def test_spawn_without_spec_falls_back_to_fork_with_warning(self):
        scenario = hand_built_scenario()
        with pytest.warns(RuntimeWarning, match="no portable spec"):
            result = exhaustive(scenario, workers=2, start_method="spawn")
        assert result.engine == "local-fork"

    def test_no_fork_no_spec_runs_serial_with_warning(self, monkeypatch):
        monkeypatch.setattr(
            "repro.mc.transport.multiprocessing.get_all_start_methods",
            lambda: ["spawn"])
        scenario = hand_built_scenario()
        with pytest.warns(RuntimeWarning, match="cannot be honored"):
            result = exhaustive(scenario, workers=2)
        assert result.engine == "serial"
        assert result.workers == 0

    @requires_fork
    def test_socket_without_spec_falls_back_to_local(self):
        scenario = hand_built_scenario()
        with pytest.warns(RuntimeWarning, match="socket"):
            result = exhaustive(scenario, workers=2, transport="socket")
        assert result.engine == "local-fork"

    @requires_fork
    def test_registry_scenarios_honor_workers_without_warning(
            self, recwarn, serial_direct_path):
        result = exhaustive(scenarios.pyswitch_direct_path(), workers=2)
        assert result.engine == "local-fork"
        assert counters(result) == counters(serial_direct_path)
        assert not [w for w in recwarn if issubclass(w.category,
                                                     RuntimeWarning)]


# ----------------------------------------------------------------------
# Replay LRU cache: counters, eviction correctness, affinity payoff
# ----------------------------------------------------------------------

class TestReplayCache:
    """Restoration-work measurements pin ``adaptive_batching=False``:
    they characterize the *static* batch-size baseline (adaptive batching
    grows batches until replay all but disappears, which is the point of
    adaptive batching but not of these tests)."""

    def test_cache_counters_exposed_in_stats(self, serial_direct_path):
        result = exhaustive(scenarios.pyswitch_direct_path(), workers=2,
                            adaptive_batching=False)
        # Deep scenario: most restorations must hit a cached ancestor.
        assert result.cache_hits > result.cache_misses
        assert result.replayed_transitions > 0
        assert "cache" in result.summary()

    def test_correct_after_heavy_eviction(self, serial_direct_path):
        """worker_cache_size=1 forces near-constant eviction; the search
        must still be exact, just slower (more full replays)."""
        result = exhaustive(scenarios.pyswitch_direct_path(), workers=2,
                            worker_cache_size=1, adaptive_batching=False)
        assert counters(result) == counters(serial_direct_path)
        assert violated_properties(result) == \
            violated_properties(serial_direct_path)
        assert result.cache_misses > result.cache_hits

    @pytest.mark.parametrize("order", ["bfs", "random"])
    def test_non_dfs_orders_still_exact(self, order):
        """bfs/random frontiers pop globally (no affinity) but must keep
        the exact-equality contract."""
        serial = exhaustive(scenarios.pyswitch_direct_path(),
                            search_order=order)
        parallel = exhaustive(scenarios.pyswitch_direct_path(),
                              search_order=order, workers=2)
        assert counters(parallel) == counters(serial)
        assert parallel.affinity_hits == 0

    def test_affinity_reduces_replay_vs_round_robin(self, serial_direct_path):
        """Routing child groups to the worker whose LRU holds the parent
        trace must measurably cut restoration replay on a deep scenario."""
        affine = exhaustive(scenarios.pyswitch_direct_path(), workers=2,
                            adaptive_batching=False)
        round_robin = exhaustive(scenarios.pyswitch_direct_path(), workers=2,
                                 affinity=False, adaptive_batching=False)
        assert counters(affine) == counters(round_robin)
        assert affine.affinity_hits > affine.affinity_misses
        assert round_robin.affinity_hits == 0
        # Empirically ~4-5x fewer; assert 2x so ordinary scheduler timing
        # jitter cannot flake the test.
        assert affine.replayed_transitions * 2 \
            < round_robin.replayed_transitions

    def test_adaptive_batching_matches_static_results(
            self, serial_direct_path):
        """Adaptive batch sizing repacks tasks, never changes what is
        explored: results equal the static baseline (and serial)."""
        adaptive = exhaustive(scenarios.pyswitch_direct_path(), workers=2)
        assert counters(adaptive) == counters(serial_direct_path)
        assert violated_properties(adaptive) == \
            violated_properties(serial_direct_path)


# ----------------------------------------------------------------------
# Churn stats: fault-tolerance counters sum correctly across workers
# ----------------------------------------------------------------------

class TestChurnStats:
    """The retry/reassignment/elastic-join counters of ISSUE 4.  The
    chaos suite (tests/test_fault_tolerance.py) drives them to nonzero
    values; here the plumbing contract is pinned for ordinary runs:
    zeros, a complete per-worker task ledger, and a summary line."""

    @pytest.fixture(scope="class")
    def parallel_run(self):
        return exhaustive(scenarios.pyswitch_direct_path(), workers=2)

    def test_no_churn_counts_zero(self, parallel_run):
        assert parallel_run.worker_failures == 0
        assert parallel_run.tasks_retried == 0
        assert parallel_run.groups_reassigned == 0
        assert parallel_run.elastic_joins == 0

    def test_worker_tasks_ledger_is_complete(self, parallel_run):
        """Every configured worker has a ledger entry and every merged
        task is attributed to exactly one worker, so the per-worker
        shares sum to the whole run."""
        assert set(parallel_run.worker_tasks) == {0, 1}
        total = sum(parallel_run.worker_tasks.values())
        assert total > 0
        # Two workers on a nontrivial scenario: both must have worked.
        assert all(n > 0 for n in parallel_run.worker_tasks.values())

    def test_summary_renders_fault_tolerance_line(self, parallel_run):
        summary = parallel_run.summary()
        assert "fault tolerance" in summary
        assert "0 worker failure(s)" in summary
        assert "0 elastic join(s)" in summary

    def test_serial_runs_have_no_churn_stats(self, serial_direct_path):
        assert serial_direct_path.worker_tasks == {}
        assert "fault tolerance" not in serial_direct_path.summary()


# ----------------------------------------------------------------------
# Scenario registry and specs
# ----------------------------------------------------------------------

class TestScenarioRegistry:
    def test_builders_are_registered(self):
        assert {"ping", "pyswitch-mobile", "pyswitch-direct-path",
                "pyswitch-loop", "loadbalancer",
                "energy-te"} <= set(scenarios.REGISTRY)

    def test_builders_stamp_a_portable_spec(self):
        scenario = scenarios.ping_experiment(pings=3)
        assert scenario.spec is not None
        assert scenario.spec.name == "ping"
        assert scenario.spec.kwargs == {"pings": 3}
        assert wire.spec_is_portable(scenario.spec)

    def test_with_config_carries_the_spec_forward(self):
        scenario = with_config(scenarios.pyswitch_direct_path(), workers=2)
        assert scenario.spec is not None
        assert scenario.spec.config.workers == 2
        assert scenario.spec.config is scenario.config

    def test_spec_rebuilds_an_identical_initial_state(self):
        scenario = scenarios.pyswitch_direct_path()
        rebuilt = scenario.spec.build()
        assert rebuilt.config == scenario.config
        assert rebuilt.system_factory().state_hash() == \
            scenario.system_factory().state_hash()

    def test_hand_built_scenario_has_no_spec(self):
        scenario = hand_built_scenario()
        assert scenario.spec is None
        assert not wire.spec_is_portable(scenario.spec)

    def test_searcher_from_spec_is_serial(self):
        searcher = wire.searcher_from_spec(
            with_config(scenarios.pyswitch_direct_path(), workers=4).spec)
        assert type(searcher).__name__ == "Searcher"
        assert not isinstance(searcher, ParallelSearcher)


# ----------------------------------------------------------------------
# Wire framing
# ----------------------------------------------------------------------

class TestWireFraming:
    def test_roundtrip_over_a_socketpair(self):
        left, right = socket_mod.socketpair()
        with left, right:
            task = wire.ExpandTask(7, [((), None)])
            wire.send_msg(left, task)
            wire.send_msg(left, wire.Shutdown())
            received = wire.recv_msg(right)
            assert isinstance(received, wire.ExpandTask)
            assert received.task_id == 7
            assert received.groups == [((), None)]
            assert isinstance(wire.recv_msg(right), wire.Shutdown)

    def test_eof_at_frame_boundary_is_none(self):
        left, right = socket_mod.socketpair()
        with right:
            left.close()
            assert wire.recv_msg(right) is None

    def test_config_knob_validation(self):
        with pytest.raises(ValueError):
            NiceConfig(transport="carrier-pigeon")
        with pytest.raises(ValueError):
            NiceConfig(start_method="forkserver")
        with pytest.raises(ValueError):
            NiceConfig(worker_cache_size=0)
