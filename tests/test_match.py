"""Unit tests for match patterns, including wildcard and prefix semantics."""

import pytest

from repro.openflow.match import (
    DL_DST,
    DL_SRC,
    DL_TYPE,
    IN_PORT,
    Match,
)
from repro.openflow.packet import (
    ETH_TYPE_IP,
    IPPROTO_TCP,
    MacAddress,
    Packet,
    ip_from_string,
    tcp_packet,
)

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def make_packet(**kwargs):
    defaults = dict(eth_src=MAC_A, eth_dst=MAC_B, eth_type=ETH_TYPE_IP)
    defaults.update(kwargs)
    return Packet(**defaults)


class TestExactMatch:
    def test_wildcard_matches_everything(self):
        assert Match().matches(make_packet(), in_port=1)

    def test_exact_from_packet_matches_self(self):
        pkt = tcp_packet(MAC_A, MAC_B, 10, 20, 1000, 80)
        match = Match.exact_from_packet(pkt, in_port=3)
        assert match.matches(pkt, 3)
        assert not match.matches(pkt, 4)
        assert match.is_exact()

    def test_field_mismatch(self):
        match = Match(dl_src=MAC_A)
        assert match.matches(make_packet(), 1)
        assert not match.matches(make_packet(eth_src=MAC_B), 1)

    def test_from_dict_figure3_style(self):
        # Figure 3 line 11 constructs the match as a field dict.
        match = Match.from_dict({
            DL_SRC: MAC_A, DL_DST: MAC_B, DL_TYPE: ETH_TYPE_IP, IN_PORT: 1,
        })
        assert match.matches(make_packet(), 1)
        assert not match.matches(make_packet(), 2)

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ValueError):
            Match.from_dict({"bogus": 1})

    def test_transport_port_match(self):
        match = Match(nw_proto=IPPROTO_TCP, tp_dst=80)
        web = tcp_packet(MAC_A, MAC_B, 1, 2, 5555, 80)
        other = tcp_packet(MAC_A, MAC_B, 1, 2, 5555, 443)
        assert match.matches(web, 1)
        assert not match.matches(other, 1)


class TestPrefixMatch:
    def test_prefix_wildcards_like_loadbalancer(self):
        # The Section 8.2 load balancer splits client IP space with
        # wildcard rules such as 64.0.0.0/2.
        base = ip_from_string("64.0.0.0")
        match = Match(nw_src=(base, 2))
        inside = make_packet(ip_src=ip_from_string("100.1.2.3"))
        outside = make_packet(ip_src=ip_from_string("192.0.0.1"))
        assert match.matches(inside, 1)
        assert not match.matches(outside, 1)

    def test_zero_prefix_is_wildcard(self):
        match = Match(nw_src=(0, 0))
        assert match.matches(make_packet(ip_src=0xFFFFFFFF), 1)

    def test_prefix_out_of_range(self):
        with pytest.raises(ValueError):
            Match(nw_src=(0, 33))

    def test_host_prefix_equals_exact(self):
        addr = ip_from_string("10.0.0.1")
        assert Match(nw_src=(addr, 32)).canonical() == Match(nw_src=addr).canonical()


class TestOverlap:
    def test_disjoint_exact_rules_do_not_overlap(self):
        m1 = Match(dl_src=MAC_A)
        m2 = Match(dl_src=MAC_B)
        assert not m1.overlaps(m2)

    def test_wildcard_overlaps_everything(self):
        assert Match().overlaps(Match(dl_src=MAC_A))

    def test_prefix_overlap(self):
        a = Match(nw_src=(ip_from_string("10.0.0.0"), 8))
        b = Match(nw_src=(ip_from_string("10.1.0.0"), 16))
        c = Match(nw_src=(ip_from_string("11.0.0.0"), 8))
        assert a.overlaps(b)
        assert b.overlaps(a)
        assert not a.overlaps(c)

    def test_overlap_is_symmetric(self):
        a = Match(dl_src=MAC_A, nw_proto=IPPROTO_TCP)
        b = Match(tp_dst=80)
        assert a.overlaps(b) == b.overlaps(a)


class TestCanonical:
    def test_equal_patterns_equal_canonical(self):
        a = Match(dl_src=MAC_A, tp_dst=80)
        b = Match(tp_dst=80, dl_src=MacAddress.from_string("00:00:00:00:00:01"))
        assert a == b
        assert hash(a) == hash(b)

    def test_specificity_orders_wildcards_last(self):
        exact = Match.exact_from_packet(make_packet(), 1)
        assert exact.specificity() > Match(dl_src=MAC_A).specificity()
        assert Match().specificity() == 0

    def test_repr_mentions_fields(self):
        text = repr(Match(tp_dst=80))
        assert "tp_dst=80" in text
        assert repr(Match()) == "Match(*)"
