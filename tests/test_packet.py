"""Unit tests for packets and address types."""

import pytest

from repro.openflow.packet import (
    ARP_REPLY,
    ARP_REQUEST,
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    MacAddress,
    Packet,
    arp_reply,
    arp_request,
    ip_from_string,
    ip_to_string,
    l2_ping,
    l2_pong,
    tcp_packet,
    TCP_SYN,
)

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


class TestMacAddress:
    def test_from_string_roundtrip(self):
        assert repr(MAC_A) == "00:00:00:00:00:01"

    def test_from_int_roundtrip(self):
        mac = MacAddress.from_int(0x0000DEADBEEF)
        assert mac.to_int() == 0x0000DEADBEEF
        assert MacAddress.from_int(mac.to_int()) == mac

    def test_byte_indexing_matches_figure3_idiom(self):
        # Figure 3 line 4: is_bcast_src = pkt.src[0] & 1
        assert MAC_A[0] & 1 == 0
        assert MacAddress.broadcast()[0] & 1 == 1

    def test_is_broadcast(self):
        assert MacAddress.broadcast().is_broadcast
        assert not MAC_A.is_broadcast
        multicast = MacAddress((0x01, 0, 0, 0, 0, 5))
        assert multicast.is_broadcast

    def test_equality_with_tuple(self):
        assert MAC_A == (0, 0, 0, 0, 0, 1)
        assert MAC_A != MAC_B

    def test_hashable(self):
        table = {MAC_A: 1}
        assert table[MacAddress.from_string("00:00:00:00:00:01")] == 1

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            MacAddress((1, 2, 3))
        with pytest.raises(ValueError):
            MacAddress.from_string("00:00:00:00:00")

    def test_rejects_out_of_range_bytes(self):
        with pytest.raises(ValueError):
            MacAddress((0, 0, 0, 0, 0, 256))
        with pytest.raises(ValueError):
            MacAddress.from_int(1 << 48)

    def test_len_and_iter(self):
        assert len(MAC_A) == 6
        assert list(MAC_A) == [0, 0, 0, 0, 0, 1]


class TestIpHelpers:
    def test_roundtrip(self):
        value = ip_from_string("10.0.0.1")
        assert value == 0x0A000001
        assert ip_to_string(value) == "10.0.0.1"

    def test_rejects_malformed(self):
        with pytest.raises(ValueError):
            ip_from_string("10.0.0")
        with pytest.raises(ValueError):
            ip_from_string("10.0.0.256")


class TestPacket:
    def test_aliases_match_paper_names(self):
        pkt = l2_ping(MAC_A, MAC_B)
        assert pkt.src == MAC_A
        assert pkt.dst == MAC_B
        assert pkt.type == ETH_TYPE_IP

    def test_ping_pong_swaps_addresses(self):
        ping = l2_ping(MAC_A, MAC_B)
        pong = l2_pong(ping)
        assert pong.eth_src == MAC_B
        assert pong.eth_dst == MAC_A

    def test_copy_preserves_uid_and_hops(self):
        pkt = l2_ping(MAC_A, MAC_B)
        pkt.uid = 7
        pkt.hops.append(("s1", 1))
        dup = pkt.copy()
        assert dup.uid == 7
        assert dup.hops == [("s1", 1)]
        dup.hops.append(("s2", 2))
        assert pkt.hops == [("s1", 1)]  # copies do not share hop lists

    def test_copy_with_new_copy_id(self):
        pkt = l2_ping(MAC_A, MAC_B)
        dup = pkt.copy(new_copy_id=(("s1", 2),))
        assert dup.copy_id == (("s1", 2),)
        assert dup.uid == pkt.uid
        assert dup.same_headers(pkt)

    def test_flow_key_ignores_flags(self):
        syn = tcp_packet(MAC_A, MAC_B, 1, 2, 1000, 80, flags=TCP_SYN)
        data = tcp_packet(MAC_A, MAC_B, 1, 2, 1000, 80, flags=0)
        assert syn.flow_key() == data.flow_key()

    def test_header_equality_vs_identity(self):
        a = l2_ping(MAC_A, MAC_B)
        b = l2_ping(MAC_A, MAC_B)
        a.uid, b.uid = 1, 2
        assert a.same_headers(b)
        assert a != b  # canonical() includes identity

    def test_arp_builders(self):
        req = arp_request(MAC_A, 1, 2)
        assert req.eth_type == ETH_TYPE_ARP
        assert req.arp_op == ARP_REQUEST
        assert req.eth_dst.is_broadcast
        rep = arp_reply(MAC_B, MAC_A, 2, 1)
        assert rep.arp_op == ARP_REPLY
        assert rep.eth_dst == MAC_A

    def test_repr_contains_uid(self):
        pkt = l2_ping(MAC_A, MAC_B)
        pkt.uid = 42
        assert "#42" in repr(pkt)

    def test_canonical_is_hashable(self):
        pkt = l2_ping(MAC_A, MAC_B)
        assert hash(pkt) == hash(pkt.copy())
