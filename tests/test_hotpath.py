"""The per-state hot path: copy-on-write cloning and digest hashing.

Contracts under test (DESIGN.md, "Per-state hot path"):

* a copy-on-write clone is bit-identical to a deepcopy clone — same state
  hash before and after executing any enabled transition — on **every**
  registered scenario, and mutations are isolated in both directions
  (child-to-parent and parent-to-child);
* the explored state space is unchanged by ``cow_clone`` + digest hashing:
  serial counters and violations equal the deepcopy/md5-baseline run, and
  a 2-worker parallel run equals serial, all under the new defaults;
* after a transition that touches a single component, ``state_hash()``
  recomputes exactly one component digest (counter-asserted);
* the all-string-key fast path of ``canonicalize`` orders identically to
  the repr-keyed slow path (hash-pinned), and unsafe keys fall back;
* ``hash_mode="full"`` reproduces the legacy md5-over-repr hash exactly.
"""

from __future__ import annotations

import hashlib

import pytest

from contract import counters, exhaustive, requires_fork
from repro import scenarios
from repro.config import NiceConfig
from repro.mc import transitions as tk
from repro.mc.canonical import _safe_string_key, canonicalize, state_string
from repro.scenarios import REGISTRY, with_config

#: Baseline knobs: the engine exactly as it ran before this change —
#: eager component clones, full md5-over-repr hashing.
PRE_COW = dict(cow_clone=False, hash_mode="full")
#: The seed-equivalent engine (deepcopy checkpointing, no memoization).
DEEPCOPY = dict(cow_clone=False, fast_clone=False)


def all_scenarios():
    return [pytest.param(builder, id=name)
            for name, builder in sorted(REGISTRY.items())]


class TestCowCloneBitIdentity:
    """CoW clones == deepcopy clones, on every registered scenario."""

    @pytest.mark.parametrize("builder", all_scenarios())
    def test_clone_and_children_hash_identically(self, builder):
        scenario = builder()
        cow = with_config(scenario).system_factory()
        ref = with_config(scenario, **DEEPCOPY).system_factory()
        assert cow.state_hash() == ref.state_hash()
        assert cow.clone().state_hash() == ref.clone().state_hash()
        for transition in cow.enabled_transitions():
            cow_child = cow.clone()
            cow_child.execute(transition)
            ref_child = ref.clone()
            ref_child.execute(transition)
            assert cow_child.state_hash() == ref_child.state_hash(), (
                f"{scenario.name}: CoW and deepcopy children diverge"
                f" after {transition!r}")

    @pytest.mark.parametrize("builder", all_scenarios())
    def test_mutation_isolated_in_both_directions(self, builder):
        scenario = builder()
        parent = with_config(scenario).system_factory()
        enabled = parent.enabled_transitions()
        if not enabled:
            pytest.skip("scenario boots quiescent")
        transition = enabled[0]

        # Child mutation must not leak into the parent...
        before = parent.state_hash()
        child = parent.clone()
        child.execute(transition)
        assert parent.state_hash() == before
        assert child.state_hash() != before

        # ...and parent mutation must not leak into the child.
        parent2 = with_config(scenario).system_factory()
        child2 = parent2.clone()
        child_before = child2.state_hash()
        parent2.execute(transition)
        assert child2.state_hash() == child_before
        assert parent2.state_hash() != child_before

    def test_second_generation_sharing(self):
        """Grandchildren share through a materialized middle generation."""
        # pyswitch-loop boots with a scripted send enabled (direct-path's
        # sends only appear through symbolic discovery).
        scenario = scenarios.pyswitch_loop()
        root = with_config(scenario).system_factory()
        transition = root.enabled_transitions()[0]
        child = root.clone()
        child.execute(transition)
        frozen = child.state_hash()
        for grand_t in child.enabled_transitions():
            grandchild = child.clone()
            grandchild.execute(grand_t)
        assert child.state_hash() == frozen
        assert root.state_hash() != frozen


class TestExploredSpaceUnchanged:
    """cow_clone + digest hashing explore exactly the baseline space."""

    #: pyswitch-mobile and -loop have state spaces far too large to
    #: exhaust in a unit test; a transition cap keeps the comparison exact
    #: (both engines expand the identical DFS prefix), direct-path runs to
    #: exhaustion.
    @pytest.mark.parametrize("builder,cap", [
        (scenarios.pyswitch_direct_path, None),
        (scenarios.pyswitch_mobile, 3000),
        # Looping flood copies make every pyswitch-loop state enormous;
        # the deepcopy/full-rehash baseline needs ~18ms per transition
        # there, so the cap stays small.
        (scenarios.pyswitch_loop, 600),
    ])
    def test_serial_equals_md5_deepcopy_baseline(self, builder, cap):
        scenario = builder()
        new = exhaustive(scenario, max_transitions=cap)
        baseline = exhaustive(scenario, max_transitions=cap,
                              hash_mode="full", cow_clone=False,
                              fast_clone=False, hash_memoization=False)
        assert counters(new) == counters(baseline)
        assert (sorted((v.property_name, v.message) for v in new.violations)
                == sorted((v.property_name, v.message)
                          for v in baseline.violations))

    @requires_fork
    def test_parallel_two_workers_equals_serial(self):
        scenario = scenarios.pyswitch_direct_path()
        serial = exhaustive(scenario)
        parallel = exhaustive(scenario, workers=2)
        assert counters(serial) == counters(parallel)
        assert (sorted({v.property_name for v in serial.violations})
                == sorted({v.property_name for v in parallel.violations}))
        # The workers' hot-path counters ride back to the master.
        assert parallel.hash_misses > 0
        assert parallel.cow_copied > 0

    @requires_fork
    def test_batch_knobs_do_not_change_the_space(self):
        scenario = scenarios.pyswitch_direct_path()
        default = exhaustive(scenario, workers=2)
        tiny_batches = exhaustive(scenario, workers=2, batch_groups=1,
                                  batch_nodes=1)
        assert counters(default) == counters(tiny_batches)


class TestDigestRecomputation:
    """One-component transitions re-hash one component."""

    def test_host_move_recomputes_exactly_one_digest(self):
        scenario = scenarios.pyswitch_mobile()
        system = with_config(scenario).system_factory()
        system.state_hash()  # warm every component digest
        child = system.clone()
        moves = [t for t in child.enabled_transitions()
                 if t.kind == tk.HOST_MOVE]
        assert moves, "pyswitch-mobile must offer a host_move transition"
        child.execute(moves[0])
        stats = child._hash_stats
        hits, misses = stats.hits, stats.misses
        child.state_hash()
        # host_move touches one host (plus the unmemoized attachment tail):
        # exactly one component digest recomputed, all others cache hits.
        assert stats.misses - misses == 1
        components = len(child.switches) + len(child.hosts) + 2  # app+ledger
        assert stats.hits - hits == components - 1

    def test_unchanged_state_rehash_is_all_hits(self):
        system = with_config(scenarios.pyswitch_direct_path()).system_factory()
        first = system.state_hash()
        stats = system._hash_stats
        misses = stats.misses
        assert system.state_hash() == first
        assert stats.misses == misses

    def test_full_mode_reproduces_legacy_md5(self):
        scenario = scenarios.pyswitch_direct_path()
        system = with_config(scenario, hash_mode="full").system_factory()
        expected = hashlib.md5(
            repr(system.canonical_state()).encode()).hexdigest()
        assert system.state_hash() == expected

    def test_hash_modes_induce_the_same_partition(self):
        scenario = scenarios.pyswitch_loop()
        digest_sys = with_config(scenario).system_factory()
        full_sys = with_config(scenario, hash_mode="full").system_factory()
        transition = digest_sys.enabled_transitions()[0]
        a, b = digest_sys.clone(), digest_sys.clone()
        a.execute(transition)
        b.execute(transition)
        assert a.state_hash() == b.state_hash()
        full_child = full_sys.clone()
        full_child.execute(transition)
        assert full_child.state_hash() != full_sys.state_hash()
        assert a.state_hash() != digest_sys.state_hash()


class TestCanonicalizeFastPath:
    """Plain sort on string keys must equal the repr-keyed slow path."""

    @staticmethod
    def slow_canonicalize_dict(d):
        items = [(canonicalize(k), canonicalize(v)) for k, v in d.items()]
        items.sort(key=lambda kv: repr(kv[0]))
        return ("dict",) + tuple(items)

    @pytest.mark.parametrize("data", [
        {"rx_packets": 1, "tx_packets": 2, "rx_bytes": 3, "tx_bytes": 4},
        {"s1": {"00:01": 1}, "s2": {}, "s10": {"00:02": 2}},
        {"a": 1, "ab": 2, "a(": 3, "a~": 4, "A": 5, "z": 6, "_": 7},
        {"": 0, "x": 1},
    ])
    def test_string_key_dicts_pin_against_slow_path(self, data):
        assert canonicalize(data) == self.slow_canonicalize_dict(data)
        assert (state_string(data)
                == repr(self.slow_canonicalize_dict(data)))

    def test_unsafe_keys_take_the_slow_path_and_still_pin(self):
        # '!' and ' ' sort below repr's closing quote; quotes and escapes
        # render escaped — all must reproduce the repr-keyed order.
        data = {"a": 1, "a!": 2, "a b": 3, "a'": 4, 'a"': 5, "a\\": 6}
        assert any(not _safe_string_key(k) for k in data)
        assert canonicalize(data) == self.slow_canonicalize_dict(data)

    def test_non_string_keys_unchanged(self):
        data = {(0, 1): "x", (0, 0, 2): "y", 3: "z"}
        assert canonicalize(data) == self.slow_canonicalize_dict(data)

    def test_safe_key_predicate(self):
        assert _safe_string_key("rx_packets")
        assert _safe_string_key("00:00:00:00:00:01")
        assert not _safe_string_key("a b")      # space < "'"
        assert not _safe_string_key("a!")       # '!' < "'"
        assert not _safe_string_key("don't")    # quote renders escaped
        assert not _safe_string_key("a\\b")     # backslash escapes
        assert not _safe_string_key(b"bytes")   # not a str


class TestSearchOrderFrontiers:
    """The deque frontier preserves exploration semantics."""

    def test_bfs_explores_the_same_space_as_dfs(self):
        scenario = scenarios.pyswitch_direct_path()
        dfs = exhaustive(scenario)
        bfs = exhaustive(scenario, search_order="bfs")
        # Exhaustive searches visit the same states whatever the order.
        assert bfs.unique_states == dfs.unique_states
        assert bfs.transitions_executed == dfs.transitions_executed
        assert bfs.quiescent_states == dfs.quiescent_states

    def test_random_order_still_works(self):
        scenario = scenarios.pyswitch_direct_path()
        random_run = exhaustive(scenario, search_order="random", seed=3)
        dfs = exhaustive(scenario)
        assert random_run.unique_states == dfs.unique_states


class TestConfigKnobs:
    def test_new_fields_validate(self):
        with pytest.raises(ValueError):
            NiceConfig(hash_mode="middle-out")
        with pytest.raises(ValueError):
            NiceConfig(batch_groups=0)
        with pytest.raises(ValueError):
            NiceConfig(batch_nodes=0)
        config = NiceConfig()
        assert config.cow_clone and config.hash_mode == "digest"
        assert config.batch_groups == 8 and config.batch_nodes == 16

    def test_cli_plumbs_the_new_flags(self):
        from repro.cli import build_parser, make_config

        args = build_parser().parse_args(
            ["run", "ping", "--hash-mode", "full", "--no-cow-clone",
             "--batch-groups", "4", "--batch-nodes", "32"])
        config = make_config(args)
        assert config.hash_mode == "full"
        assert not config.cow_clone
        assert config.batch_groups == 4
        assert config.batch_nodes == 32

    def test_stats_surface_hot_path_counters(self):
        result = exhaustive(scenarios.pyswitch_direct_path())
        assert result.hash_misses > 0
        assert result.hash_hits > result.hash_misses
        assert result.bytes_hashed > 0
        assert result.cow_copied > 0
        assert "hot path" in result.summary()


class TestComponentCloneContracts:
    """The pieces the CoW discipline leans on."""

    def test_arp_client_clone_does_not_share_script(self):
        from repro.hosts.arp import ArpClient
        from repro.openflow.packet import MacAddress, arp_reply, l2_ping

        mac = MacAddress.from_string("00:00:00:00:00:01")
        peer = MacAddress.from_string("00:00:00:00:00:02")
        client = ArpClient("A", mac, 1, target_ip=2,
                           script=[l2_ping(mac, peer)])
        clone = client.clone({})
        clone.deliver(arp_reply(peer, mac, 2, 1))
        clone.receive()
        assert len(clone.script) == 2      # data packet released
        assert len(client.script) == 1     # original untouched

    def test_message_canonical_is_cached_and_seq_free(self):
        from repro.openflow.messages import BarrierRequest

        message = BarrierRequest(xid=7)
        first = message.canonical()
        assert message.canonical() is first
        message.seq = 99
        assert message.canonical() is first

    def test_packet_header_cache_survives_identity_mutation(self):
        from repro.openflow.packet import MacAddress, l2_ping

        packet = l2_ping(MacAddress.from_string("00:00:00:00:00:01"),
                         MacAddress.from_string("00:00:00:00:00:02"))
        header = packet.header_tuple()
        packet.hops.append(("s1", 1))
        packet.uid = ("A", "sig", 0)
        assert packet.header_tuple() is header
        assert packet.canonical()[-1] == (("s1", 1),)
        copy = packet.copy()
        assert copy.header_tuple() == header
