"""Unit tests for the simplified switch model."""

import pytest

from repro.errors import SwitchError
from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    ActionSetDlDst,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    OFPFC_ADD,
    OFPFC_DELETE,
    OFPR_ACTION,
    OFPR_NO_MATCH,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.openflow.packet import MacAddress, Packet
from repro.openflow.switch import SwitchModel


def mac(n):
    return MacAddress.from_int(n)


def pkt(src=1, dst=2, uid=0):
    p = Packet(eth_src=mac(src), eth_dst=mac(dst), uid=uid)
    return p


def make_switch(ports=(1, 2, 3)):
    return SwitchModel("s1", list(ports))


class TestTableMiss:
    def test_miss_buffers_and_sends_packet_in(self):
        sw = make_switch()
        sw.port_in[1].enqueue(pkt())
        emissions = sw.process_pkt()
        assert emissions == []
        assert len(sw.buffers) == 1
        assert len(sw.ofp_out) == 1
        msg = sw.ofp_out.peek()
        assert isinstance(msg, PacketIn)
        assert msg.reason == OFPR_NO_MATCH
        assert msg.in_port == 1
        assert msg.buffer_id in sw.buffers

    def test_buffer_ids_are_sequential(self):
        sw = make_switch()
        sw.port_in[1].enqueue(pkt(uid=1))
        sw.process_pkt()
        sw.port_in[2].enqueue(pkt(uid=2))
        sw.process_pkt()
        assert sorted(sw.buffers) == [1, 2]


class TestRuleProcessing:
    def test_output_action_emits(self):
        sw = make_switch()
        sw.table.install(
            __import__("repro.openflow.rules", fromlist=["Rule"]).Rule(
                Match(dl_src=mac(1)), [ActionOutput(3)])
        )
        sw.port_in[1].enqueue(pkt())
        emissions = sw.process_pkt()
        assert len(emissions) == 1
        port, out = emissions[0]
        assert port == 3
        assert out.eth_src == mac(1)

    def test_rule_counters_update(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        rule = Rule(Match(), [ActionOutput(2)])
        sw.table.install(rule)
        sw.port_in[1].enqueue(pkt())
        sw.process_pkt()
        assert rule.packet_count == 1
        assert rule.byte_count == 64

    def test_flood_copies_to_all_other_ports(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionFlood()]))
        sw.port_in[1].enqueue(pkt(uid=9))
        emissions = sw.process_pkt()
        assert sorted(port for port, _ in emissions) == [2, 3]
        copy_ids = {p.copy_id for _, p in emissions}
        assert len(copy_ids) == 2  # each flood copy distinct
        assert all(p.uid == 9 for _, p in emissions)

    def test_flood_skips_down_ports(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionFlood()]))
        sw.port_up[3] = False
        sw.port_in[1].enqueue(pkt())
        emissions = sw.process_pkt()
        assert [port for port, _ in emissions] == [2]

    def test_drop_action_records(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionDrop()]))
        sw.port_in[1].enqueue(pkt(uid=4))
        assert sw.process_pkt() == []
        assert sw.dropped == [("rule_drop", 4, ())]

    def test_controller_action_buffers_with_action_reason(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionController()]))
        sw.port_in[1].enqueue(pkt())
        sw.process_pkt()
        assert sw.ofp_out.peek().reason == OFPR_ACTION

    def test_set_dl_dst_rewrites_header(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionSetDlDst(mac(9)), ActionOutput(2)]))
        sw.port_in[1].enqueue(pkt())
        emissions = sw.process_pkt()
        assert emissions[0][1].eth_dst == mac(9)

    def test_hops_recorded(self):
        sw = make_switch()
        p = pkt()
        sw.port_in[1].enqueue(p)
        sw.process_pkt()
        assert p.hops == [("s1", 1)]

    def test_process_pkt_handles_all_channels_in_one_transition(self):
        # Section 2.2.2: the head of *each* channel is processed as a single
        # transition.
        sw = make_switch()
        sw.port_in[1].enqueue(pkt(uid=1))
        sw.port_in[2].enqueue(pkt(uid=2))
        sw.port_in[2].enqueue(pkt(uid=3))
        sw.process_pkt()
        assert len(sw.buffers) == 2          # uid=1 and uid=2 processed
        assert len(sw.port_in[2]) == 1       # uid=3 still queued

    def test_process_pkt_on_empty_raises(self):
        with pytest.raises(SwitchError):
            make_switch().process_pkt()


class TestOpenFlowMessages:
    def test_flow_mod_add_and_delete(self):
        sw = make_switch()
        sw.ofp_in.enqueue(FlowMod(OFPFC_ADD, Match(dl_src=mac(1)),
                                  [ActionOutput(2)]))
        sw.process_of()
        assert len(sw.table) == 1
        sw.ofp_in.enqueue(FlowMod(OFPFC_DELETE, Match()))
        sw.process_of()
        assert len(sw.table) == 0

    def test_packet_out_releases_buffer(self):
        sw = make_switch()
        sw.port_in[1].enqueue(pkt())
        sw.process_pkt()
        buffer_id = sw.ofp_out.dequeue().buffer_id
        sw.ofp_in.enqueue(PacketOut(buffer_id, None, [ActionOutput(2)]))
        emissions = sw.process_of()
        assert [port for port, _ in emissions] == [2]
        assert sw.buffers == {}

    def test_packet_out_empty_actions_discards(self):
        sw = make_switch()
        sw.port_in[1].enqueue(pkt(uid=5))
        sw.process_pkt()
        buffer_id = sw.ofp_out.dequeue().buffer_id
        sw.ofp_in.enqueue(PacketOut(buffer_id, None, []))
        assert sw.process_of() == []
        assert sw.buffers == {}
        assert ("ctrl_discard", 5, ()) in sw.dropped

    def test_packet_out_unknown_buffer_recorded(self):
        sw = make_switch()
        sw.ofp_in.enqueue(PacketOut(99, None, [ActionOutput(1)]))
        assert sw.process_of() == []
        assert ("bad_buffer", 99, None) in sw.dropped

    def test_packet_out_raw_packet(self):
        sw = make_switch()
        sw.ofp_in.enqueue(PacketOut(None, pkt(), [ActionOutput(1)]))
        emissions = sw.process_of()
        assert [port for port, _ in emissions] == [1]

    def test_stats_request_reply(self):
        sw = make_switch()
        sw.port_in[1].enqueue(pkt())
        sw.process_pkt()
        sw.ofp_in.enqueue(StatsRequest(xid=7))
        sw.process_of()
        # skip the PacketIn, find the stats reply
        messages = sw.ofp_out.items()
        reply = next(m for m in messages if isinstance(m, StatsReply))
        assert reply.xid == 7
        assert reply.stats[1]["rx_packets"] == 1

    def test_barrier(self):
        sw = make_switch()
        sw.ofp_in.enqueue(BarrierRequest(xid=3))
        sw.process_of()
        reply = sw.ofp_out.dequeue()
        assert isinstance(reply, BarrierReply)
        assert reply.xid == 3

    def test_process_of_on_empty_raises(self):
        with pytest.raises(SwitchError):
            make_switch().process_of()


class TestExpiryAndPorts:
    def test_expire_rule_sends_flow_removed(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionOutput(1)], hard_timeout=5))
        sw.expire_rule(0)
        assert len(sw.table) == 0
        assert isinstance(sw.ofp_out.dequeue(), FlowRemoved)

    def test_expire_bad_index(self):
        with pytest.raises(SwitchError):
            make_switch().expire_rule(0)

    def test_port_status_message(self):
        sw = make_switch()
        sw.set_port_state(2, False)
        msg = sw.ofp_out.dequeue()
        assert msg.canonical() == ("port_status", "s1", 2, False)
        sw.set_port_state(2, False)  # no duplicate event
        assert len(sw.ofp_out) == 0


class TestCanonicalState:
    def test_same_history_same_canonical(self):
        a, b = make_switch(), make_switch()
        for sw in (a, b):
            sw.port_in[1].enqueue(pkt())
            sw.process_pkt()
        assert a.canonical() == b.canonical()

    def test_different_buffer_contents_differ(self):
        a, b = make_switch(), make_switch()
        a.port_in[1].enqueue(pkt(uid=1))
        a.process_pkt()
        assert a.canonical() != b.canonical()

    def test_tx_stats_update_on_emission(self):
        from repro.openflow.rules import Rule

        sw = make_switch()
        sw.table.install(Rule(Match(), [ActionOutput(2)]))
        sw.port_in[1].enqueue(pkt())
        sw.process_pkt()
        assert sw.port_stats[2]["tx_packets"] == 1
        assert sw.port_stats[2]["tx_bytes"] == 64
