"""The parallel search engine and the checkpointing modes.

Exactness contracts under test (see ``repro/mc/parallel.py`` and DESIGN.md):

* serial search is bit-identical across checkpoint modes (``deepcopy`` vs
  ``trace``) and clone implementations (``fast_clone`` on/off) — same
  counters, same violations, same messages;
* the parallel engine (``workers=4``) explores exactly the serial state
  space: equal ``unique_states`` / ``transitions_executed`` /
  ``quiescent_states`` / ``revisited_states`` and the same set of violated
  properties on every scenario; for quiescent-state properties the full
  ``(property, state hash)`` violation set matches too.  Violation
  *records* of history-reading properties may differ in message text, the
  same way serial DFS and BFS differ;
* trace-replay checkpoint restoration is deterministic: replaying a
  violation trace reproduces the recorded state hash.
"""

from __future__ import annotations

import multiprocessing

import pytest

from contract import (
    counters,
    exhaustive,
    violated_properties,
    violation_messages,
    violation_states,
)
from repro import nice, scenarios
from repro.mc.parallel import ParallelSearcher
from repro.mc.search import Searcher
from repro.scenarios import with_config

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="parallel engine requires the fork start method",
)


class TestSerialCheckpointModes:
    """`trace` restoration and fast clones must not change serial results."""

    @pytest.mark.parametrize("scenario_builder", [
        scenarios.pyswitch_direct_path,
        pytest.param(scenarios.loadbalancer_scenario,
                     marks=pytest.mark.slow),
    ])
    def test_trace_checkpoints_bit_identical(self, scenario_builder):
        scenario = scenario_builder()
        deepcopy_run = exhaustive(scenario)
        trace_run = exhaustive(scenario, checkpoint_mode="trace")
        assert counters(deepcopy_run) == counters(trace_run)
        assert violation_messages(deepcopy_run) == violation_messages(trace_run)

    def test_fast_clone_bit_identical_to_seed_clone(self):
        scenario = scenarios.pyswitch_direct_path()
        fast = exhaustive(scenario)
        seed = exhaustive(scenario, fast_clone=False, hash_memoization=False)
        assert counters(fast) == counters(seed)
        assert violation_messages(fast) == violation_messages(seed)


class TestParallelMatchesSerial:
    """workers=4 explores the identical state space on two scenarios."""

    @pytest.mark.parametrize("scenario_builder", [
        scenarios.pyswitch_direct_path,
        pytest.param(scenarios.loadbalancer_scenario,
                     marks=pytest.mark.slow),
    ])
    def test_same_states_and_violated_properties(self, scenario_builder):
        scenario = scenario_builder()
        serial = exhaustive(scenario)
        parallel = exhaustive(scenario, workers=4)
        assert counters(serial) == counters(parallel)
        assert violated_properties(serial) == violated_properties(parallel)

    @pytest.mark.slow
    def test_quiescent_violation_set_identical(self):
        # The load balancer's violations fire at quiescent states, whose
        # (property, state hash) set is search-order independent.
        scenario = scenarios.loadbalancer_scenario()
        serial = exhaustive(scenario)
        parallel = exhaustive(scenario, workers=4)
        assert violation_states(serial) == violation_states(parallel)
        assert len(serial.violations) == len(parallel.violations)

    def test_first_violation_mode_finds_a_bug(self):
        scenario = with_config(scenarios.pyswitch_direct_path(), workers=4)
        result = nice.run(scenario)
        assert result.found_violation
        assert result.terminated == "first_violation"
        assert violated_properties(result) == ["StrictDirectPaths"]

    def test_workers_one_uses_serial_engine(self):
        searcher = with_config(scenarios.pyswitch_direct_path(),
                               workers=1).make_searcher()
        # workers <= 1 falls back to the serial loop inside Searcher.run.
        assert type(searcher) is Searcher

    def test_workers_config_selects_parallel_engine(self):
        searcher = with_config(scenarios.pyswitch_direct_path(),
                               workers=4).make_searcher()
        assert isinstance(searcher, ParallelSearcher)


class TestTraceReplayDeterminism:
    """Restoring a checkpoint is a pure function of the transition path."""

    def test_violation_trace_replays_to_recorded_hash(self):
        scenario = scenarios.pyswitch_direct_path()
        result = nice.run(with_config(scenario, checkpoint_mode="trace"))
        assert result.found_violation
        violation = result.violations[0]
        replayed = nice.replay(scenario, violation.trace,
                               expected_hash=violation.state_hash)
        assert replayed.state_hash() == violation.state_hash

    @pytest.mark.slow
    def test_parallel_violation_traces_replay(self):
        scenario = scenarios.loadbalancer_scenario()
        result = exhaustive(scenario, workers=4)
        assert result.found_violation
        for violation in result.violations[:3]:
            replayed = nice.replay(scenario, violation.trace,
                                   expected_hash=violation.state_hash)
            assert replayed.state_hash() == violation.state_hash

    def test_repeated_trace_runs_identical(self):
        scenario = scenarios.pyswitch_direct_path()
        first = exhaustive(scenario, checkpoint_mode="trace")
        second = exhaustive(scenario, checkpoint_mode="trace")
        assert counters(first) == counters(second)
        assert violation_messages(first) == violation_messages(second)
