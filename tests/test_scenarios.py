"""Tests for the predefined scenario builders."""

import pytest

from repro import scenarios
from repro.config import NiceConfig


class TestPingExperiment:
    def test_symbolic_execution_forced_off(self):
        scenario = scenarios.ping_experiment(
            pings=2, config=NiceConfig(use_symbolic_execution=True))
        assert not scenario.config.use_symbolic_execution

    def test_bounds_sized_to_workload(self):
        scenario = scenarios.ping_experiment(pings=3)
        assert scenario.config.max_pkt_sequence >= 6
        assert scenario.config.max_outstanding >= 3

    def test_explicit_bounds_respected(self):
        scenario = scenarios.ping_experiment(pings=3, max_outstanding=1,
                                             max_pkt_sequence=4)
        assert scenario.config.max_outstanding == 1
        assert scenario.config.max_pkt_sequence == 4

    def test_concurrent_unordered_script(self):
        hosts = scenarios.ping_experiment(pings=3).hosts_factory()
        client = hosts[0]
        assert not client.ordered_script
        assert len(client.script) == 3

    def test_payload_tags_by_default(self):
        hosts = scenarios.ping_experiment(pings=2).hosts_factory()
        payloads = {p.payload for p in hosts[0].script}
        assert payloads == {"ping0", "ping1"}

    def test_identical_pings_mode(self):
        hosts = scenarios.ping_experiment(
            pings=2, identical_pings=True).hosts_factory()
        payloads = {p.payload for p in hosts[0].script}
        assert payloads == {"ping"}

    def test_distinct_flows_use_distinct_macs(self):
        hosts = scenarios.ping_experiment(
            pings=2, distinct_flows=True).hosts_factory()
        sources = {p.eth_src.canonical() for p in hosts[0].script}
        assert len(sources) == 2

    def test_flow_ir_gets_ping_grouping(self):
        scenario = scenarios.ping_experiment(
            pings=2, config=NiceConfig(strategy="FLOW-IR"))
        assert "is_same_flow" in scenario.config.extra

    def test_ping_grouping_tags(self):
        from repro.scenarios import _ping_is_same_flow
        from repro.openflow.packet import l2_ping, l2_pong
        from repro.scenarios import MAC_A, MAC_B

        ping0 = l2_ping(MAC_A, MAC_B, payload="ping0")
        ping1 = l2_ping(MAC_A, MAC_B, payload="ping1")
        pong0 = l2_pong(ping0)
        assert _ping_is_same_flow(ping0, pong0)
        assert not _ping_is_same_flow(ping0, ping1)


class TestBugScenarios:
    def test_mobile_scenario_has_move(self):
        hosts = scenarios.pyswitch_mobile().hosts_factory()
        mobile = [h for h in hosts if h.move_targets()]
        assert len(mobile) == 1
        assert mobile[0].move_targets() == [("s1", 3)]

    def test_loop_scenario_topology_is_cyclic(self):
        scenario = scenarios.pyswitch_loop()
        graph = scenario.topo.switch_graph()
        assert all(len(neighbors) == 2 for neighbors in graph.values())

    def test_lb_scenario_counters_stay_unhashed(self):
        assert not scenarios.loadbalancer_scenario().config.hash_counters

    def test_te_scenario_hashes_counters(self):
        # The stats handler branches on counters: merging across their
        # values would be unsound (see NiceConfig.hash_counters).
        assert scenarios.energy_te_scenario().config.hash_counters

    def test_te_paths_share_egress(self):
        from repro.scenarios import _te_tables

        always_on, on_demand = _te_tables()
        for ip in always_on:
            assert always_on[ip][0][0] == "s1"
            assert on_demand[ip][0][0] == "s1"
            assert always_on[ip][-1][0] == on_demand[ip][-1][0] == "s2"
            assert any(sw == "s3" for sw, _ in on_demand[ip])

    def test_lb_concrete_mode_scripts_handshake(self):
        scenario = scenarios.loadbalancer_scenario(symbolic=False)
        client = scenario.hosts_factory()[0]
        assert len(client.script) == 2
        assert not client.symbolic_client

    def test_arp_script_option(self):
        scenario = scenarios.loadbalancer_scenario(use_arp_script=True)
        hosts = scenario.hosts_factory()
        r1 = [h for h in hosts if h.name == "R1"][0]
        assert len(r1.script) == 1
        assert r1.script[0].arp_op == 1
