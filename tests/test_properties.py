"""Unit tests for the correctness-property library."""

import pytest

from repro import scenarios
from repro.errors import PropertyViolation
from repro.mc import transitions as tk
from repro.mc.transitions import Transition
from repro.openflow.packet import MacAddress, l2_ping
from repro.properties import (
    DirectPaths,
    NoBlackHoles,
    NoForgottenPackets,
    NoForwardingLoops,
    StrictDirectPaths,
    make_properties,
    PROPERTY_LIBRARY,
)

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def ping_system():
    return scenarios.ping_experiment(pings=1).system_factory()


def run_to_quiescence(system, limit=200):
    for _ in range(limit):
        enabled = system.enabled_transitions()
        if not enabled:
            return system
        system.execute(enabled[0])
    raise AssertionError("system did not quiesce")


class TestLibraryRegistry:
    def test_make_properties_by_name(self):
        properties = make_properties(["NoBlackHoles", "DirectPaths"])
        assert [type(p).__name__ for p in properties] == [
            "NoBlackHoles", "DirectPaths"]

    def test_make_properties_passthrough_instances(self):
        instance = NoForgottenPackets()
        assert make_properties([instance]) == [instance]

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            make_properties(["NoSuchProperty"])

    def test_library_covers_section_52(self):
        assert set(PROPERTY_LIBRARY) == {
            "NoForwardingLoops", "NoBlackHoles", "DirectPaths",
            "StrictDirectPaths", "NoForgottenPackets"}


class TestNoForwardingLoops:
    def test_clean_system_passes(self):
        system = run_to_quiescence(ping_system())
        NoForwardingLoops().check(system, None)  # no exception

    def test_repeated_hop_flagged(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("t", 1)
        packet.hops = [("s1", 1), ("s2", 1), ("s1", 1)]
        system.switches["s1"].port_in[1].enqueue(packet)
        with pytest.raises(PropertyViolation):
            NoForwardingLoops().check(system, None)


class TestNoBlackHoles:
    def test_delivered_traffic_passes(self):
        system = run_to_quiescence(ping_system())
        NoBlackHoles().check_quiescent(system)

    def test_lost_packet_flagged(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.ledger.record_injected(packet, "A")
        system.ledger.record_lost(packet, "s1", 9)
        with pytest.raises(PropertyViolation):
            NoBlackHoles().check_quiescent(system)

    def test_controller_consumed_is_not_a_black_hole(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.ledger.record_injected(packet, "A")
        system.switches["s1"].dropped.append(("ctrl_discard", packet.uid, ()))
        NoBlackHoles().check_quiescent(system)

    def test_rule_drop_policy(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.ledger.record_injected(packet, "A")
        system.switches["s1"].dropped.append(("rule_drop", packet.uid, ()))
        with pytest.raises(PropertyViolation):
            NoBlackHoles().check_quiescent(system)
        NoBlackHoles(allow_rule_drops=True).check_quiescent(system)

    def test_buffered_is_deferred_to_no_forgotten(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.ledger.record_injected(packet, "A")
        system.switches["s1"].buffers[1] = (packet, 1)
        NoBlackHoles().check_quiescent(system)   # NoForgottenPackets' job


class TestNoForgottenPackets:
    def test_empty_buffers_pass(self):
        system = run_to_quiescence(ping_system())
        NoForgottenPackets().check_quiescent(system)

    def test_buffered_packet_flagged(self):
        system = ping_system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.switches["s2"].buffers[4] = (packet, 1)
        with pytest.raises(PropertyViolation) as exc:
            NoForgottenPackets().check_quiescent(system)
        assert "s2" in str(exc.value)


class TestDirectPathsFamily:
    def _inject_and_deliver(self, system, packet, host):
        system.ledger.record_injected(packet, packet.uid[0])
        system.hosts[host].received.append(packet)
        system.ledger.record_delivered(packet, host)

    def test_direct_paths_flags_post_delivery_packet_in(self):
        system = ping_system()
        first = l2_ping(MAC_A, MAC_B)
        first.uid = ("A", "s0", 0)
        self._inject_and_deliver(system, first, "B")
        second = l2_ping(MAC_A, MAC_B)
        second.uid = ("A", "s0", 1)
        system.ledger.record_injected(second, "A")
        system.switches["s1"].packet_in_log.append((second, "no_match"))
        with pytest.raises(PropertyViolation):
            DirectPaths().check(system, None)

    def test_direct_paths_tolerates_in_flight_packet(self):
        # The packet was injected *before* the first delivery: natural
        # delay, not a violation (Section 5.2's "safe time").
        system = ping_system()
        second = l2_ping(MAC_A, MAC_B)
        second.uid = ("A", "s0", 1)
        system.ledger.record_injected(second, "A")
        first = l2_ping(MAC_A, MAC_B)
        first.uid = ("A", "s0", 0)
        self._inject_and_deliver(system, first, "B")
        system.switches["s1"].packet_in_log.append((second, "no_match"))
        DirectPaths().check(system, None)

    def test_strict_requires_both_directions(self):
        system = ping_system()
        forward = l2_ping(MAC_A, MAC_B)
        forward.uid = ("A", "s0", 0)
        self._inject_and_deliver(system, forward, "B")
        third = l2_ping(MAC_A, MAC_B)
        third.uid = ("A", "s0", 1)
        system.ledger.record_injected(third, "A")
        system.switches["s1"].packet_in_log.append((third, "no_match"))
        # Only one direction delivered: StrictDirectPaths does NOT fire.
        StrictDirectPaths().check(system, None)
        # Complete the reverse direction, then a later packet violates.
        reverse = l2_ping(MAC_B, MAC_A)
        reverse.uid = ("B", "s0", 0)
        self._inject_and_deliver(system, reverse, "A")
        fourth = l2_ping(MAC_A, MAC_B)
        fourth.uid = ("A", "s0", 2)
        system.ledger.record_injected(fourth, "A")
        system.switches["s1"].packet_in_log.append((fourth, "no_match"))
        with pytest.raises(PropertyViolation):
            StrictDirectPaths().check(system, None)

    def test_broadcast_packets_exempt(self):
        system = ping_system()
        bcast = l2_ping(MAC_A, MacAddress.broadcast())
        bcast.uid = ("A", "s0", 0)
        system.switches["s1"].packet_in_log.append((bcast, "no_match"))
        DirectPaths().check(system, None)
        StrictDirectPaths().check(system, None)


class TestPropertyProtocol:
    def test_violation_helper_raises_with_name(self):
        from repro.properties.base import Property

        class Custom(Property):
            name = "MyInvariant"

        with pytest.raises(PropertyViolation) as exc:
            Custom().violation("boom")
        assert exc.value.property_name == "MyInvariant"
        assert "boom" in str(exc.value)

    def test_custom_property_over_global_state(self):
        # Section 5.1: properties are Python snippets over global state.
        from repro.properties.base import Property

        class NoRulesAnywhere(Property):
            name = "NoRulesAnywhere"

            def check(self, system, transition):
                for switch in system.switches.values():
                    if len(switch.table):
                        self.violation(f"{switch.switch_id} has rules")

        system = run_to_quiescence(ping_system())
        with pytest.raises(PropertyViolation):
            NoRulesAnywhere().check(system, None)
