"""Unit tests for the search strategies (Section 4)."""

from repro import scenarios
from repro.config import NiceConfig
from repro.mc import transitions as tk
from repro.mc.strategies import (
    FlowIRStrategy,
    NoDelayStrategy,
    Strategy,
    UnusualStrategy,
    default_is_same_flow,
    make_strategy,
)
from repro.mc.transitions import Transition
from repro.openflow.packet import MacAddress, l2_ping

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def ping_system(pings=1):
    return scenarios.ping_experiment(pings=pings).system_factory()


class TestFactory:
    def test_make_strategy_by_name(self):
        assert isinstance(make_strategy(NiceConfig()), Strategy)
        assert isinstance(make_strategy(NiceConfig(strategy="NO-DELAY")),
                          NoDelayStrategy)
        assert isinstance(make_strategy(NiceConfig(strategy="UNUSUAL")),
                          UnusualStrategy)
        assert isinstance(make_strategy(NiceConfig(strategy="FLOW-IR")),
                          FlowIRStrategy)

    def test_flow_ir_picks_app_hook(self):
        class AppWithHook:
            @staticmethod
            def is_same_flow(a, b):
                return True

        strategy = make_strategy(NiceConfig(strategy="FLOW-IR"),
                                 AppWithHook())
        assert strategy.is_same_flow is AppWithHook.is_same_flow

    def test_flow_ir_falls_back_to_default(self):
        strategy = make_strategy(NiceConfig(strategy="FLOW-IR"))
        assert strategy.is_same_flow is default_is_same_flow


class TestDefaultGrouping:
    def test_microflow_identity(self):
        a = l2_ping(MAC_A, MAC_B)
        b = l2_ping(MAC_A, MAC_B, payload="other")
        c = l2_ping(MAC_B, MAC_A)
        assert default_is_same_flow(a, b)       # payload not in flow key
        assert not default_is_same_flow(a, c)


class TestNoDelay:
    def test_filter_removes_controller_transitions(self):
        system = ping_system()
        strategy = NoDelayStrategy()
        enabled = [
            Transition(tk.HOST_SEND, "A", ("script", 0)),
            Transition(tk.CTRL_HANDLE, "s1"),
            Transition(tk.CTRL_STATS, "s1", ("stats", 0)),
        ]
        kept = strategy.filter(system, enabled)
        assert [t.kind for t in kept] == [tk.HOST_SEND]

    def test_packet_in_handled_within_generating_transition(self):
        system = ping_system()
        strategy = NoDelayStrategy()
        send = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        system.execute(send)
        strategy.post_execute(system, send)
        pkt_transition = Transition(tk.PROCESS_PKT, "s1")
        system.execute(pkt_transition)
        strategy.post_execute(system, pkt_transition)
        # The packet_in was handled immediately: the controller learned A
        # and issued the flood without a separate ctrl_handle transition.
        assert len(system.switches["s1"].ofp_out) == 0
        assert MAC_A in system.app.ctrl_state["s1"]

    def test_process_of_drains_whole_channel(self):
        system = ping_system()
        strategy = NoDelayStrategy()
        api = system.api()
        api.install_rule("s1", {"in_port": 1}, ["flood"])
        api.install_rule("s1", {"in_port": 2}, ["flood"])
        transition = Transition(tk.PROCESS_OF, "s1")
        system.execute(transition)          # applies one message...
        strategy.post_execute(system, transition)  # ...then the rest
        assert len(system.switches["s1"].ofp_in) == 0
        assert len(system.switches["s1"].table) == 2


class TestUnusual:
    def test_keeps_extreme_orders_only(self):
        system = ping_system()
        api = system.api()
        # Stamp three switch channels in issue order s1, s2, then s1 again.
        api.install_rule("s1", {"in_port": 1}, ["flood"])
        api.install_rule("s2", {"in_port": 1}, ["flood"])
        strategy = UnusualStrategy()
        enabled = [
            Transition(tk.PROCESS_OF, "s1"),
            Transition(tk.PROCESS_OF, "s2"),
            Transition(tk.HOST_SEND, "A", ("script", 0)),
        ]
        kept = strategy.filter(system, enabled)
        process_of = [t for t in kept if t.kind == tk.PROCESS_OF]
        # Two channels -> both extremes survive (natural + reversed).
        assert len(process_of) == 2

    def test_data_plane_ordered_last_for_dfs(self):
        system = ping_system()
        strategy = UnusualStrategy()
        enabled = [
            Transition(tk.PROCESS_OF, "s1"),
            Transition(tk.HOST_SEND, "A", ("script", 0)),
        ]
        system.api().install_rule("s1", {"in_port": 1}, ["flood"])
        kept = strategy.filter(system, enabled)
        # DFS pops from the tail: data transitions must come last.
        assert kept[-1].kind == tk.HOST_SEND


class TestFlowIR:
    def test_send_serialization_blocks_new_flows_in_busy_fabric(self):
        system = ping_system(pings=2)
        strategy = FlowIRStrategy(
            is_same_flow=lambda a, b: a.payload == b.payload)
        sends = [t for t in system.enabled_transitions()
                 if t.kind == tk.HOST_SEND]
        assert len(sends) == 2
        # Nothing injected yet: both pings may start.
        assert len(strategy.filter(system, sends)) == 2
        system.execute(sends[0])
        # ping0 is now in the fabric: ping1 (a different group) must wait.
        remaining = [t for t in system.enabled_transitions()
                     if t.kind == tk.HOST_SEND]
        kept = strategy.filter(system, remaining)
        assert [t for t in kept if t.kind == tk.HOST_SEND] == []

    def test_processing_reduction_keeps_minimal_group(self):
        system = ping_system(pings=2)
        strategy = FlowIRStrategy(
            is_same_flow=lambda a, b: a.payload == b.payload)
        # Inject both pings into different port channels by hand so two
        # groups are processable at once.
        p0 = system.hosts["A"].script[0].copy()
        p0.uid = ("A", "x", 0)
        p1 = system.hosts["A"].script[1].copy()
        p1.uid = ("A", "y", 0)
        system.switches["s1"].port_in[1].enqueue(p0)
        system.switches["s2"].port_in[1].enqueue(p1)
        enabled = [Transition(tk.PROCESS_PKT, "s1"),
                   Transition(tk.PROCESS_PKT, "s2")]
        kept = strategy.filter(system, enabled)
        assert len(kept) == 1

    def test_ungrouped_transitions_always_kept(self):
        system = scenarios.loadbalancer_scenario().system_factory()
        strategy = FlowIRStrategy()
        event = [t for t in system.enabled_transitions()
                 if t.kind == tk.CTRL_EVENT]
        assert event
        kept = strategy.filter(system, event)
        assert kept == event
