"""Shared helpers pinning the search exactness contract (one definition
for every suite).

``counters`` is *the* equality tuple of the parallel/baseline contracts
(DESIGN.md): exhaustive runs must match the serial engine on it exactly,
on every transport, under every checkpoint/hash/clone knob, and — since
PR 4 — under any worker failure or elastic-join schedule.  Changing this
tuple changes what every differential suite in the repo asserts, which
is exactly why it lives in one place.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro import nice
from repro.scenarios import with_config

requires_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="requires the fork start method")


def exhaustive(scenario, **overrides):
    return nice.run(with_config(scenario, stop_at_first_violation=False,
                                **overrides))


def counters(result):
    return (result.unique_states, result.transitions_executed,
            result.quiescent_states, result.revisited_states,
            result.terminated)


def violated_properties(result):
    return sorted({v.property_name for v in result.violations})


def violation_messages(result):
    return sorted((v.property_name, v.message) for v in result.violations)


def violation_states(result):
    return sorted({(v.property_name, v.state_hash)
                   for v in result.violations})
