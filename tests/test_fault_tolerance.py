"""Fault tolerance and elasticity of the parallel search (ISSUE 4).

Acceptance contract: killing any single worker mid-search — on the fork,
spawn, and socket transports — yields a bit-identical explored state
space and identical property verdicts vs. the serial engine; two-death
schedules and elastic mid-search joins preserve the same equality; and
the ``min_workers`` / ``max_worker_failures`` policy turns unsurvivable
churn into a clean :class:`~repro.mc.transport.TransportError` instead of
a hang or a half-merged result.

Deaths are injected through :class:`fault_helpers.ChaosTransport`
(SIGKILL / connection teardown via the transport's own ``kill_worker``
hook), so every test drives the production detection path: pipe EOF or
socket reset -> ``WorkerGone`` -> scheduler requeue.  The fast tier uses
the small ``ping`` scenario; the registry-wide chaos matrix is ``slow``
(nightly).
"""

from __future__ import annotations

import pytest

from contract import counters, requires_fork, violated_properties
from fault_helpers import (ChaosTransport, ElasticJoiner, StallTransport,
                           install)
from repro import nice, scenarios
from repro.mc.transport import TransportError
from repro.scenarios import with_config

#: Small static tasks (one node each, no adaptive growth) so a chaos
#: schedule keyed on submission counts has many deterministic kill points
#: and a death always strands requeueable work.
CHAOS_KNOBS = dict(stop_at_first_violation=False, batch_groups=1,
                   batch_nodes=1, adaptive_batching=False)

ENGINES = [
    pytest.param(dict(start_method="fork"), "local-fork",
                 marks=requires_fork, id="fork"),
    pytest.param(dict(start_method="spawn"), "local-spawn", id="spawn"),
    pytest.param(dict(transport="socket"), "socket", id="socket"),
]


def exhaustive_ping(**overrides):
    return with_config(scenarios.ping_experiment(pings=2),
                       **{**CHAOS_KNOBS, **overrides})


def run_with_chaos(monkeypatch, scenario, schedule):
    """Run ``scenario`` with a kill schedule; returns (stats, chaos)."""
    wrappers = []

    def wrap(transport):
        chaos = ChaosTransport(transport, schedule)
        wrappers.append(chaos)
        return chaos

    install(monkeypatch, wrap)
    stats = nice.run(scenario)
    assert wrappers, "parallel transport was never created"
    return stats, wrappers[0]


@pytest.fixture(scope="module")
def serial_ping():
    return nice.run(exhaustive_ping())


# ----------------------------------------------------------------------
# Acceptance: worker death never changes the explored state space
# ----------------------------------------------------------------------

class TestSingleDeath:
    @pytest.mark.parametrize("overrides,engine", ENGINES)
    def test_bit_identical_state_space(self, overrides, engine,
                                       serial_ping, monkeypatch):
        stats, chaos = run_with_chaos(
            monkeypatch, exhaustive_ping(workers=2, **overrides), {5: 0})
        assert chaos.killed == [0]
        assert stats.engine == engine
        assert counters(stats) == counters(serial_ping)
        assert violated_properties(stats) == violated_properties(serial_ping)
        assert stats.worker_failures == 1
        assert stats.tasks_retried >= 1
        assert stats.groups_reassigned >= stats.tasks_retried
        # The dead worker merged nothing after the kill; the survivor
        # carried the rest of the run.
        assert stats.worker_tasks[1] > stats.worker_tasks[0]


class TestTwoDeaths:
    @pytest.mark.parametrize("overrides,engine", ENGINES)
    def test_bit_identical_state_space(self, overrides, engine,
                                       serial_ping, monkeypatch):
        stats, chaos = run_with_chaos(
            monkeypatch, exhaustive_ping(workers=3, **overrides),
            {5: 0, 11: 1})
        assert chaos.killed == [0, 1]
        assert stats.engine == engine
        assert counters(stats) == counters(serial_ping)
        assert violated_properties(stats) == violated_properties(serial_ping)
        assert stats.worker_failures == 2
        assert stats.worker_tasks[2] > 0


def run_with_stall(monkeypatch, scenario, schedule):
    """Run ``scenario`` with a SIGSTOP schedule; returns (stats, stall)."""
    wrappers = []

    def wrap(transport):
        stall = StallTransport(transport, schedule)
        wrappers.append(stall)
        return stall

    install(monkeypatch, wrap)
    stats = nice.run(scenario)
    assert wrappers, "parallel transport was never created"
    return stats, wrappers[0]


#: Containment knobs for the hang legs: tight deadline, fast beats, and
#: the autoscaler keeping the pool at strength after the kill.
HANG_KNOBS = dict(respawn_workers=True, task_deadline=2.0,
                  heartbeat_interval=0.2)


# ----------------------------------------------------------------------
# Hang detection: a wedged worker is deadline-killed, results exact
# ----------------------------------------------------------------------

class TestHungWorker:
    @pytest.mark.parametrize("overrides,engine", ENGINES)
    def test_stalled_worker_is_deadline_killed(self, overrides, engine,
                                               serial_ping, monkeypatch):
        """SIGSTOP — not SIGKILL — a worker mid-search: its pipes stay
        open, so only the task-deadline machinery can notice.  The master
        must declare it hung, kill it, requeue its work, and finish
        bit-identical to serial."""
        stats, stall = run_with_stall(
            monkeypatch,
            exhaustive_ping(workers=2, **HANG_KNOBS, **overrides), {5: 0})
        assert stall.stalled == [0]
        assert stats.engine == engine
        assert counters(stats) == counters(serial_ping)
        assert violated_properties(stats) == violated_properties(serial_ping)
        assert stats.workers_hung == 1
        assert stats.deadline_kills == 1
        assert stats.worker_failures == 1
        assert stats.tasks_retried >= 1


# ----------------------------------------------------------------------
# Elastic pools: socket workers joining a live search
# ----------------------------------------------------------------------

class TestElasticJoin:
    def test_mid_search_joiner_receives_tasks_and_preserves_results(
            self, serial_ping, monkeypatch):
        wrappers = []

        def wrap(transport):
            joiner = ElasticJoiner(transport, after=3)
            wrappers.append(joiner)
            return joiner

        install(monkeypatch, wrap)
        stats = nice.run(exhaustive_ping(workers=2, transport="socket"))
        assert counters(stats) == counters(serial_ping)
        assert violated_properties(stats) == violated_properties(serial_ping)
        assert stats.elastic_joins == 1
        assert stats.workers == 3
        joined = set(stats.worker_tasks) - wrappers[0].initial_workers
        assert len(joined) == 1
        # The acceptance bar: the joiner measurably received work.
        assert all(stats.worker_tasks[w] > 0 for w in joined)

    def test_join_then_death_still_exact(self, serial_ping, monkeypatch):
        """A joiner replacing a killed worker: churn in both directions."""
        wrappers = []

        def wrap(transport):
            # Join after the 3rd submission, kill initial worker 0 after
            # the 20th (by then the joiner is live and can absorb it).
            joiner = ElasticJoiner(transport, after=3)
            chaos = ChaosTransport(joiner, {20: 0})
            wrappers.append((joiner, chaos))
            return chaos

        install(monkeypatch, wrap)
        stats = nice.run(exhaustive_ping(workers=2, transport="socket"))
        assert counters(stats) == counters(serial_ping)
        assert stats.elastic_joins == 1
        assert stats.worker_failures == 1


# ----------------------------------------------------------------------
# Autoscaler: a dead worker is replaced (``respawn_workers``)
# ----------------------------------------------------------------------

class TestWorkerRespawn:
    @pytest.mark.parametrize("overrides,engine", ENGINES)
    def test_kill_then_respawn_preserves_results(self, overrides, engine,
                                                 serial_ping, monkeypatch):
        """Kill a worker mid-search with respawn on: the pool recovers,
        the replacement measurably works, and the explored state space
        stays bit-identical to serial."""
        stats, chaos = run_with_chaos(
            monkeypatch,
            exhaustive_ping(workers=2, respawn_workers=True, **overrides),
            {5: 0})
        assert chaos.killed == [0]
        assert counters(stats) == counters(serial_ping)
        assert violated_properties(stats) == violated_properties(serial_ping)
        assert stats.worker_failures == 1
        assert stats.workers_respawned == 1
        # Local pools enroll the replacement synchronously under a fresh
        # id; socket replacements join through the elastic accept path.
        if engine.startswith("local"):
            assert stats.worker_tasks.get(2, 0) > 0
        else:
            assert stats.elastic_joins >= 1

    @requires_fork
    def test_respawn_satisfies_min_workers_floor(self, serial_ping,
                                                 monkeypatch):
        """With respawn on, a death no longer violates min_workers=2 —
        the same schedule that cleanly aborts without respawn (see
        TestFailurePolicy) now completes exactly."""
        stats, _ = run_with_chaos(
            monkeypatch,
            exhaustive_ping(workers=2, min_workers=2, respawn_workers=True),
            {5: 0})
        assert counters(stats) == counters(serial_ping)
        assert stats.workers_respawned == 1


# ----------------------------------------------------------------------
# Policy: when churn is unsurvivable, fail clean
# ----------------------------------------------------------------------

class TestFailurePolicy:
    @requires_fork
    def test_all_workers_dead_raises_cleanly(self, monkeypatch):
        with pytest.raises(TransportError, match="below min_workers"):
            run_with_chaos(monkeypatch, exhaustive_ping(workers=2),
                           {5: 0, 8: 1})

    @requires_fork
    def test_max_worker_failures_zero_aborts_on_first_death(
            self, monkeypatch):
        with pytest.raises(TransportError, match="max_worker_failures"):
            run_with_chaos(
                monkeypatch,
                exhaustive_ping(workers=2, max_worker_failures=0), {5: 0})

    @requires_fork
    def test_min_workers_floor_is_enforced(self, monkeypatch):
        with pytest.raises(TransportError, match="below min_workers=2"):
            run_with_chaos(
                monkeypatch,
                exhaustive_ping(workers=2, min_workers=2), {5: 0})

    @requires_fork
    def test_min_workers_above_pool_rejected_up_front(self):
        """A floor the pool can never satisfy fails at start, not only
        when a worker happens to die."""
        with pytest.raises(TransportError, match="exceeds the configured"):
            nice.run(exhaustive_ping(workers=2, min_workers=3))

    @requires_fork
    def test_survivable_death_does_not_raise(self, serial_ping,
                                             monkeypatch):
        """max_worker_failures=1 tolerates exactly one death."""
        stats, _ = run_with_chaos(
            monkeypatch,
            exhaustive_ping(workers=2, max_worker_failures=1), {5: 0})
        assert counters(stats) == counters(serial_ping)


# ----------------------------------------------------------------------
# Registry-wide chaos matrix (nightly): every scenario, 1 and 2 deaths
# ----------------------------------------------------------------------

#: Tight PKT-SEQ bounds keep every registered scenario's exhaustive space
#: small enough for a chaos matrix.  pyswitch-loop is excluded: its
#: forwarding loop makes the exhaustive space unbounded (that is BUG-III),
#: so it gets a first-violation chaos test instead.
BOUNDED_SCENARIOS = sorted(set(scenarios.REGISTRY) - {"pyswitch-loop"})

SCHEDULES = [pytest.param(2, {4: 0}, id="1-death"),
             pytest.param(3, {4: 0, 8: 1}, id="2-deaths")]


@pytest.mark.slow
@requires_fork
class TestRegisteredScenarioChaosMatrix:
    @pytest.mark.parametrize("name", BOUNDED_SCENARIOS)
    @pytest.mark.parametrize("workers,schedule", SCHEDULES)
    def test_bit_identical_under_deaths(self, name, workers, schedule,
                                        monkeypatch):
        tight = dict(CHAOS_KNOBS, max_pkt_sequence=1, max_outstanding=1)
        serial = nice.run(with_config(scenarios.REGISTRY[name](), **tight))
        chaotic, _ = run_with_chaos(
            monkeypatch,
            with_config(scenarios.REGISTRY[name](), workers=workers,
                        **tight),
            schedule)
        assert counters(chaotic) == counters(serial), \
            f"scenario {name} diverged from serial under {schedule}"
        assert violated_properties(chaotic) == violated_properties(serial)

    @pytest.mark.parametrize("name", BOUNDED_SCENARIOS)
    def test_bit_identical_under_a_hang(self, name, monkeypatch):
        """The hang-schedule leg: wedge (SIGSTOP) a worker instead of
        killing it.  Scenarios too small to reach the stall point simply
        run unwedged — the equality assertion is the contract either way."""
        tight = dict(CHAOS_KNOBS, max_pkt_sequence=1, max_outstanding=1)
        serial = nice.run(with_config(scenarios.REGISTRY[name](), **tight))
        hung, stall = run_with_stall(
            monkeypatch,
            with_config(scenarios.REGISTRY[name](), workers=2,
                        **HANG_KNOBS, **tight),
            {4: 0})
        assert counters(hung) == counters(serial), \
            f"scenario {name} diverged from serial under a hang"
        assert violated_properties(hung) == violated_properties(serial)
        # A victim wedged while idle may never receive another task on a
        # tiny space; when it did hold work, the deadline must have fired.
        assert hung.workers_hung <= len(stall.stalled)
        assert hung.deadline_kills == hung.workers_hung

    def test_pyswitch_loop_first_violation_survives_a_death(
            self, monkeypatch):
        """The unbounded scenario: early-stop runs are approximate in
        their counters (documented), but the verdict must survive a
        worker death."""
        stats, _ = run_with_chaos(
            monkeypatch,
            with_config(scenarios.pyswitch_loop(), workers=2,
                        batch_groups=1, batch_nodes=1,
                        adaptive_batching=False),
            {3: 0})
        assert stats.found_violation
        assert violated_properties(stats) == ["NoForwardingLoops"]
