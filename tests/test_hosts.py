"""Unit tests for the end-host models and PKT-SEQ bookkeeping."""

import pytest

from repro.hosts.base import Host
from repro.hosts.client import Client
from repro.hosts.mobile import MobileHost
from repro.hosts.ping import PingResponder
from repro.hosts.server import EchoServer, Server
from repro.openflow.packet import (
    IPPROTO_TCP,
    MacAddress,
    TCP_ACK,
    TCP_SYN,
    l2_ping,
    tcp_packet,
)

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def make_client(npackets=2, ordered=True):
    script = [l2_ping(MAC_A, MAC_B, payload=f"p{i}") for i in range(npackets)]
    client = Client("A", MAC_A, 1, script=script, symbolic_client=False)
    client.ordered_script = ordered
    client.counter_c = 5
    return client


class TestSendBookkeeping:
    def test_ordered_script_sends_in_order(self):
        client = make_client()
        assert client.send_candidates(10) == [("script", 0)]
        pkt = client.take_send(("script", 0))
        assert pkt.payload == "p0"
        assert client.send_candidates(10) == [("script", 1)]

    def test_unordered_script_enables_all(self):
        client = make_client(3, ordered=False)
        assert client.send_candidates(10) == [
            ("script", 0), ("script", 1), ("script", 2)]
        client.take_send(("script", 1))
        assert client.send_candidates(10) == [("script", 0), ("script", 2)]

    def test_double_send_rejected(self):
        client = make_client(2, ordered=False)
        client.take_send(("script", 0))
        with pytest.raises(ValueError):
            client.take_send(("script", 0))

    def test_pkt_seq_sequence_bound(self):
        client = make_client(3)
        client.take_send(("script", 0))
        assert client.send_candidates(1) == []  # bound hit
        assert client.send_candidates(2) == [("script", 1)]

    def test_burst_counter_blocks_sends(self):
        client = make_client(2)
        client.counter_c = 1
        client.take_send(("script", 0))
        assert client.counter_c == 0
        assert client.send_candidates(10) == []

    def test_receive_replenishes_counter(self):
        # Section 4, PKT-SEQ: "increase c by one unit for every received
        # packet".
        client = make_client(2)
        client.counter_c = 0
        client.deliver(l2_ping(MAC_B, MAC_A))
        client.receive()
        assert client.counter_c == 1
        assert client.send_candidates(10) == [("script", 0)]

    def test_sym_send_counts(self):
        client = make_client(0)
        pkt = l2_ping(MAC_A, MAC_B)
        sent = client.take_send_sym(pkt)
        assert sent is not pkt          # template copied
        assert client.sym_sent == 1
        assert client.sent_count == 1

    def test_unknown_descriptor(self):
        with pytest.raises(ValueError):
            make_client().take_send(("bogus", 0))


class TestReactiveHosts:
    def test_ping_responder_queues_pong(self):
        responder = PingResponder("B", MAC_B, 2)
        responder.deliver(l2_ping(MAC_A, MAC_B, payload="ping3"))
        responder.receive()
        assert len(responder.pending) == 1
        pong = responder.pending[0]
        assert pong.eth_src == MAC_B and pong.eth_dst == MAC_A
        assert pong.payload == "pong3"

    def test_ping_responder_ignores_pongs(self):
        responder = PingResponder("B", MAC_B, 2)
        pong = l2_ping(MAC_A, MAC_B, payload="pong1")
        responder.deliver(pong)
        responder.receive()
        assert responder.pending == []

    def test_reply_send_consumes_pending(self):
        responder = PingResponder("B", MAC_B, 2)
        responder.counter_c = 2
        responder.deliver(l2_ping(MAC_A, MAC_B, payload="ping0"))
        responder.receive()
        assert responder.send_candidates(10) == [("pending", 0)]
        responder.take_send(("pending", 0))
        assert responder.pending == []
        assert responder.reply_sent == 1

    def test_server_completes_handshake(self):
        server = Server("S", MAC_B, 42)
        syn = tcp_packet(MAC_A, MAC_B, 1, 42, 1000, 80, flags=TCP_SYN)
        server.deliver(syn)
        server.receive()
        reply = server.pending[0]
        assert reply.tcp_flags == TCP_SYN | TCP_ACK
        assert reply.tp_src == 80 and reply.tp_dst == 1000

    def test_server_ignores_foreign_ip(self):
        server = Server("S", MAC_B, 42)
        server.deliver(tcp_packet(MAC_A, MAC_B, 1, 99, 1000, 80, flags=TCP_SYN))
        server.receive()
        assert server.pending == []

    def test_echo_server_swaps_everything(self):
        echo = EchoServer("E", MAC_B, 7)
        pkt = tcp_packet(MAC_A, MAC_B, 1, 7, 1000, 80)
        echo.deliver(pkt)
        echo.receive()
        reply = echo.pending[0]
        assert reply.eth_dst == MAC_A
        assert reply.ip_src == 7 and reply.ip_dst == 1


class TestMobileHost:
    def test_move_sequence(self):
        host = MobileHost("B", MAC_B, 2, moves=[("s1", 3), ("s2", 1)])
        assert host.move_targets() == [("s1", 3)]
        assert host.take_move() == ("s1", 3)
        assert host.move_targets() == [("s2", 1)]
        host.take_move()
        assert host.move_targets() == []

    def test_base_host_cannot_move(self):
        host = Host("A", MAC_A, 1)
        assert host.move_targets() == []
        with pytest.raises(NotImplementedError):
            host.take_move()

    def test_canonical_includes_move_state(self):
        a = MobileHost("B", MAC_B, 2, moves=[("s1", 3)])
        b = MobileHost("B", MAC_B, 2, moves=[("s1", 3)])
        assert a.canonical() == b.canonical()
        a.take_move()
        assert a.canonical() != b.canonical()


class TestCanonical:
    def test_received_order_does_not_matter(self):
        a, b = make_client(0), make_client(0)
        p1 = l2_ping(MAC_B, MAC_A, payload="x")
        p2 = l2_ping(MAC_B, MAC_A, payload="y")
        a.deliver(p1.copy()); a.deliver(p2.copy())
        a.receive(); a.receive()
        b.deliver(p2.copy()); b.deliver(p1.copy())
        b.receive(); b.receive()
        assert a.canonical() == b.canonical()

    def test_inbox_order_does_matter(self):
        a, b = make_client(0), make_client(0)
        p1 = l2_ping(MAC_B, MAC_A, payload="x")
        p2 = l2_ping(MAC_B, MAC_A, payload="y")
        a.deliver(p1.copy()); a.deliver(p2.copy())
        b.deliver(p2.copy()); b.deliver(p1.copy())
        assert a.canonical() != b.canonical()
