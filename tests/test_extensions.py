"""Tests for the extension features: transient-safe NoBlackHoles, the
TCP-like client, the topology spec builder, rule-expiry transitions, and
the channel fault model end to end."""

import dataclasses

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig
from repro.errors import PropertyViolation, TopologyError
from repro.hosts.tcp import TcpLikeClient
from repro.mc import transitions as tk
from repro.openflow.packet import MacAddress, l2_ping
from repro.properties.transient import TransientSafeNoBlackHoles
from repro.topo.builder import topology_from_spec, topology_to_spec

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


class TestTransientSafeNoBlackHoles:
    def _system(self):
        return scenarios.ping_experiment(pings=1).system_factory()

    def _flow(self, packet):
        return packet.flow_key()

    def test_clean_execution_passes(self):
        system = self._system()
        for _ in range(100):
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system.execute(enabled[0])
        TransientSafeNoBlackHoles().check_quiescent(system)

    def test_single_loss_tolerated(self):
        system = self._system()
        packet = l2_ping(MAC_A, MAC_B)
        packet.uid = ("A", "x", 0)
        system.ledger.record_injected(packet, "A")
        system.ledger.record_lost(packet, "s1", 9)
        TransientSafeNoBlackHoles(tolerance=1).check_quiescent(system)

    def test_persistent_loss_flagged(self):
        system = self._system()
        for i in range(3):
            packet = l2_ping(MAC_A, MAC_B)
            packet.uid = ("A", "x", i)
            system.ledger.record_injected(packet, "A")
            system.ledger.record_lost(packet, "s1", 9)
        with pytest.raises(PropertyViolation):
            TransientSafeNoBlackHoles(tolerance=1).check_quiescent(system)

    def test_recovered_flow_forgiven(self):
        # Losses followed by a successful delivery = the network healed.
        system = self._system()
        for i in range(3):
            packet = l2_ping(MAC_A, MAC_B)
            packet.uid = ("A", "x", i)
            system.ledger.record_injected(packet, "A")
        final = l2_ping(MAC_A, MAC_B)
        final.uid = ("A", "x", 9)
        system.ledger.record_injected(final, "A")
        system.ledger.record_delivered(final, "B")
        TransientSafeNoBlackHoles(tolerance=1).check_quiescent(system)

    def test_bug_i_is_persistent_loss(self):
        # The unfixed pyswitch black-holes the whole stream: even the
        # transient-tolerant property flags it.
        scenario = scenarios.pyswitch_mobile()
        scenario = nice.Scenario(
            scenario.topo, scenario.app_factory, scenario.hosts_factory,
            [TransientSafeNoBlackHoles(tolerance=1)], scenario.config,
            name="mobile-transient")
        result = nice.run(scenario)
        assert result.found_violation


class TestTcpLikeClient:
    def make(self, **kwargs):
        script = [l2_ping(MAC_A, MAC_B, payload=f"p{i}") for i in range(10)]
        return TcpLikeClient("A", MAC_A, 1, script=script, **kwargs)

    def test_initial_window_bounds_burst(self):
        client = self.make(initial_window=1)
        assert client.counter_c == 1
        client.take_send(("script", 0))
        assert client.send_candidates(10) == []

    def test_ack_grows_window_additively(self):
        client = self.make(initial_window=1, max_window=4)
        client.take_send(("script", 0))
        for i in range(3):
            client.deliver(l2_ping(MAC_B, MAC_A, payload=f"a{i}"))
            client.receive()
        assert client.window == 4

    def test_window_capped(self):
        client = self.make(initial_window=1, max_window=2)
        for i in range(5):
            client.deliver(l2_ping(MAC_B, MAC_A, payload=f"a{i}"))
            client.receive()
        assert client.window == 2
        assert client.counter_c <= 2

    def test_loss_halves_window(self):
        client = self.make(initial_window=8, max_window=8)
        client.on_loss()
        assert client.window == 4
        client.on_loss()
        client.on_loss()
        assert client.window == 1    # floor at 1
        assert client.counter_c <= client.window

    def test_canonical_includes_window(self):
        a = self.make(initial_window=4)
        b = self.make(initial_window=4)
        assert a.canonical() == b.canonical()
        a.on_loss()
        assert a.canonical() != b.canonical()


class TestTopologySpecBuilder:
    SPEC = {
        "switches": {"s1": [1, 2], "s2": [1, 2]},
        "links": [["s1", 2, "s2", 1]],
        "hosts": {
            "A": {"mac": "00:00:00:00:00:01", "ip": "10.0.0.1",
                  "switch": "s1", "port": 1},
            "B": {"mac": "00:00:00:00:00:02", "ip": "10.0.0.2",
                  "switch": "s2", "port": 2},
        },
    }

    def test_build_and_validate(self):
        topo = topology_from_spec(self.SPEC)
        assert topo.host_location("B") == ("s2", 2)
        assert topo.endpoint("s1", 2).node == "s2"

    def test_round_trip(self):
        topo = topology_from_spec(self.SPEC)
        spec = topology_to_spec(topo)
        again = topology_from_spec(spec)
        assert topology_to_spec(again) == spec

    def test_missing_sections_rejected(self):
        with pytest.raises(TopologyError):
            topology_from_spec({})
        with pytest.raises(TopologyError):
            topology_from_spec("not a dict")

    def test_malformed_link(self):
        spec = dict(self.SPEC, links=[["s1", 2, "s2"]])
        with pytest.raises(TopologyError):
            topology_from_spec(spec)

    def test_incomplete_host(self):
        spec = dict(self.SPEC)
        spec = {**spec, "hosts": {"A": {"mac": "00:00:00:00:00:01"}}}
        with pytest.raises(TopologyError):
            topology_from_spec(spec)

    def test_spec_driven_scenario_runs(self):
        from repro.hosts import Client
        from repro.hosts.ping import PingResponder
        from repro.apps.pyswitch import PySwitch

        topo = topology_from_spec(self.SPEC)
        scenario = nice.Scenario(
            topo, PySwitch,
            lambda: [
                Client("A", MAC_A, topo.hosts["A"].ip,
                       script=[l2_ping(MAC_A, MAC_B)],
                       symbolic_client=False),
                PingResponder("B", MAC_B, topo.hosts["B"].ip),
            ],
            [], NiceConfig(use_symbolic_execution=False,
                           stop_at_first_violation=False),
            name="from-spec")
        result = nice.run(scenario)
        assert result.terminated == "exhausted"
        assert result.unique_states > 0


class TestRuleExpiry:
    def test_expiry_transitions_enabled_by_config(self):
        config = NiceConfig(enable_rule_timeouts=True)
        scenario = scenarios.ping_experiment(pings=1, config=config)
        system = scenario.system_factory()
        # drive until a rule with a timeout exists
        for _ in range(60):
            expirable = [
                t for t in system.enabled_transitions()
                if t.kind == tk.EXPIRE_RULE
            ]
            if expirable:
                before = sum(len(sw.table) for sw in system.switches.values())
                system.execute(expirable[0])
                after = sum(len(sw.table) for sw in system.switches.values())
                assert after == before - 1
                return
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system.execute(enabled[0])
        pytest.skip("no rule with a timeout was installed in this run")

    def test_expiry_disabled_by_default(self):
        scenario = scenarios.ping_experiment(pings=1)
        system = scenario.system_factory()
        for _ in range(60):
            enabled = system.enabled_transitions()
            assert not any(t.kind == tk.EXPIRE_RULE for t in enabled)
            if not enabled:
                break
            system.execute(enabled[0])


class TestChannelFaults:
    def fault_config(self):
        return NiceConfig(channel_faults=True, max_transitions=5000,
                          stop_at_first_violation=True)

    def test_fault_transitions_enumerated(self):
        scenario = scenarios.ping_experiment(pings=1,
                                             config=self.fault_config())
        system = scenario.system_factory()
        send = [t for t in system.enabled_transitions()
                if t.kind == tk.HOST_SEND][0]
        system.execute(send)
        faults = [t for t in system.enabled_transitions()
                  if t.kind == tk.CHANNEL_FAULT]
        kinds = {tuple(t.arg[1])[0] for t in faults}
        assert {"drop", "duplicate", "fail"} <= kinds

    def test_drop_fault_black_holes_packet(self):
        from repro.properties import NoBlackHoles

        base = scenarios.ping_experiment(pings=1, config=self.fault_config())
        # The fault model makes the tree infinite (duplication grows
        # channels without bound), so breadth-first order with an explicit
        # stop-at-first-violation finds the shallow drop-the-only-packet
        # interleaving; the builder's exhaustive-search defaults would not.
        config = dataclasses.replace(base.config, search_order="bfs",
                                     stop_at_first_violation=True)
        scenario = nice.Scenario(base.topo, base.app_factory,
                                 base.hosts_factory, [NoBlackHoles()],
                                 config, name="faulty-ping")
        result = nice.run(scenario)
        assert result.found_violation
        assert result.violations[0].property_name == "NoBlackHoles"
