"""Tests for concolic proxies, the dict stub, and the solver."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SolverError
from repro.openflow.packet import MacAddress
from repro.sym.concolic import PathRecorder, SymBool, SymBytes, SymInt
from repro.sym.expr import (
    Cmp,
    Const,
    InSet,
    Var,
    eval_bool,
)
from repro.sym.solver import Domain, Solver, stats_candidates
from repro.sym.symdict import SymDict

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


class TestBranchRecording:
    def test_symbool_records_on_truth_test(self):
        recorder = PathRecorder()
        flag = SymBool(True, Cmp("eq", Var("x"), Const(1)), recorder)
        assert bool(flag)
        assert len(recorder) == 1
        expr, taken = recorder.branches[0]
        assert taken is True

    def test_symint_truthiness_records_nonzero(self):
        recorder = PathRecorder()
        value = SymInt(0, Var("x"), recorder)
        assert not value
        expr, taken = recorder.branches[0]
        assert taken is False
        assert eval_bool(expr, {"x": 5})      # x != 0
        assert not eval_bool(expr, {"x": 0})

    def test_figure3_broadcast_idiom(self):
        # is_bcast_src = pkt.src[0] & 1; if not is_bcast_src:
        recorder = PathRecorder()
        src = SymBytes(MAC_A, Var("eth_src", 48), recorder)
        is_bcast = src[0] & 1
        assert isinstance(is_bcast, SymInt)
        taken = bool(is_bcast)
        assert not taken               # unicast MAC
        assert len(recorder) == 1
        expr, outcome = recorder.branches[0]
        broadcast = MacAddress.broadcast().to_int()
        assert eval_bool(expr, {"eth_src": broadcast})
        assert not eval_bool(expr, {"eth_src": MAC_A.to_int()})

    def test_short_circuit_records_each_operand(self):
        # `a and b` must record a, and record b only when a held — the
        # paper's composite-predicate splitting, for free via __bool__.
        recorder = PathRecorder()
        a = SymBool(True, Cmp("eq", Var("x"), Const(1)), recorder)
        b = SymBool(False, Cmp("eq", Var("y"), Const(2)), recorder)
        if a and b:   # the `if` truth-tests a, then (a held) tests b
            pass
        assert len(recorder.branches) == 2
        recorder2 = PathRecorder()
        a_false = SymBool(False, Cmp("eq", Var("x"), Const(1)), recorder2)
        b2 = SymBool(True, Cmp("eq", Var("y"), Const(2)), recorder2)
        if a_false and b2:
            pass
        assert len(recorder2.branches) == 1   # b never evaluated

    def test_comparisons_do_not_record_until_bool(self):
        recorder = PathRecorder()
        value = SymInt(5, Var("x"), recorder)
        _comparison = value == 5    # building the SymBool records nothing
        assert len(recorder) == 0

    def test_symbytes_equality(self):
        recorder = PathRecorder()
        dst = SymBytes(MAC_B, Var("eth_dst", 48), recorder)
        assert bool(dst == MAC_B)
        assert not bool(dst == MAC_A)
        assert bool(dst != MAC_A)
        assert len(recorder.branches) == 3

    def test_symbytes_is_broadcast(self):
        recorder = PathRecorder()
        bcast = SymBytes(MacAddress.broadcast(), Var("d", 48), recorder)
        assert bool(bcast.is_broadcast)
        unicast = SymBytes(MAC_A, Var("d", 48), recorder)
        assert not bool(unicast.is_broadcast)

    def test_symint_hash_is_concrete(self):
        recorder = PathRecorder()
        value = SymInt(42, Var("x"), recorder)
        assert hash(value) == hash(42)
        assert int(value) == 42


class TestSymDict:
    def make(self, data):
        recorder = PathRecorder()
        return SymDict(dict(data), recorder), recorder

    def test_contains_with_symbolic_key_records_inset(self):
        table, recorder = self.make({MAC_A: 1})
        key = SymBytes(MAC_A, Var("dst", 48), recorder)
        assert key in table
        expr, _ = recorder.branches[0]
        assert eval_bool(expr, {"dst": MAC_A.to_int()})
        assert not eval_bool(expr, {"dst": MAC_B.to_int()})

    def test_absent_symbolic_key_records_negated_inset(self):
        table, recorder = self.make({MAC_A: 1})
        key = SymBytes(MAC_B, Var("dst", 48), recorder)
        assert key not in table
        expr, _ = recorder.branches[0]
        assert eval_bool(expr, {"dst": MAC_B.to_int()})       # negated InSet
        assert not eval_bool(expr, {"dst": MAC_A.to_int()})

    def test_has_key_alias(self):
        table, recorder = self.make({MAC_A: 1})
        key = SymBytes(MAC_A, Var("dst", 48), recorder)
        assert table.has_key(key)

    def test_getitem_records_matched_key(self):
        table, recorder = self.make({MAC_A: 7, MAC_B: 9})
        key = SymBytes(MAC_B, Var("dst", 48), recorder)
        assert table[key] == 9
        expr, _ = recorder.branches[-1]
        assert eval_bool(expr, {"dst": MAC_B.to_int()})
        assert not eval_bool(expr, {"dst": MAC_A.to_int()})

    def test_getitem_missing_raises_keyerror(self):
        table, recorder = self.make({MAC_A: 7})
        key = SymBytes(MAC_B, Var("dst", 48), recorder)
        with pytest.raises(KeyError):
            table[key]
        assert len(recorder.branches) == 1

    def test_setitem_concretizes_key(self):
        table, recorder = self.make({})
        key = SymBytes(MAC_A, Var("src", 48), recorder)
        table[key] = 3
        assert table._data == {MAC_A: 3}

    def test_nested_dicts_wrapped_lazily(self):
        table, recorder = self.make({"s1": {MAC_A: 1}})
        inner = table["s1"]
        assert isinstance(inner, SymDict)
        key = SymBytes(MAC_A, Var("dst", 48), recorder)
        assert key in inner
        assert recorder.branches

    def test_get_with_default(self):
        table, recorder = self.make({MAC_A: 1})
        key = SymBytes(MAC_B, Var("dst", 48), recorder)
        assert table.get(key, "fallback") == "fallback"
        assert table.get(MAC_A) == 1

    def test_plain_key_operations_record_nothing(self):
        table, recorder = self.make({"a": 1})
        assert "a" in table
        assert table["a"] == 1
        assert len(recorder.branches) == 0

    def test_len_iter_items(self):
        table, _ = self.make({"a": 1, "b": 2})
        assert len(table) == 2
        assert sorted(table) == ["a", "b"]
        assert dict(table.items())["b"] == 2


class TestSolver:
    def test_simple_equality(self):
        solver = Solver({"x": Domain("x", [1, 2, 3])})
        solution = solver.solve([Cmp("eq", Var("x"), Const(2))])
        assert solution == {"x": 2}

    def test_unsat_returns_none(self):
        solver = Solver({"x": Domain("x", [1, 2, 3])})
        assert solver.solve([Cmp("eq", Var("x"), Const(9))]) is None

    def test_multi_variable_joint_constraints(self):
        solver = Solver({"x": Domain("x", [1, 2]), "y": Domain("y", [1, 2])})
        solution = solver.solve([
            Cmp("ne", Var("x"), Var("y")),
            Cmp("lt", Var("x"), Var("y")),
        ])
        assert solution == {"x": 1, "y": 2}

    def test_defaults_fill_unconstrained(self):
        solver = Solver({"x": Domain("x", [1]), "y": Domain("y", [5, 6])})
        solution = solver.solve([Cmp("eq", Var("y"), Const(6))],
                                defaults={"x": 1, "z": 9})
        assert solution["y"] == 6
        assert solution["x"] == 1
        assert solution["z"] == 9

    def test_missing_domain_raises(self):
        solver = Solver({})
        with pytest.raises(SolverError):
            solver.solve([Cmp("eq", Var("ghost"), Const(1))])

    def test_budget_exceeded(self):
        domains = {f"v{i}": Domain(f"v{i}", list(range(10)))
                   for i in range(8)}
        solver = Solver(domains, max_checks=10)
        constraints = [Cmp("eq", Var(f"v{i}"), Const(9)) for i in range(8)]
        with pytest.raises(SolverError):
            solver.solve(constraints)

    def test_is_satisfiable(self):
        solver = Solver({"x": Domain("x", [0, 1])})
        assert solver.is_satisfiable([InSet(Var("x"), [1])])
        assert not solver.is_satisfiable([InSet(Var("x"), [5])])

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=6, unique=True),
           st.integers(0, 20))
    def test_solutions_always_satisfy(self, candidates, target):
        solver = Solver({"x": Domain("x", candidates)})
        constraint = Cmp("ge", Var("x"), Const(target))
        solution = solver.solve([constraint])
        if solution is None:
            assert all(c < target for c in candidates)
        else:
            assert eval_bool(constraint, solution)

    def test_stats_candidates_cover_thresholds(self):
        # util = x * 100 // 10000 > 70 must be satisfiable from derived
        # candidates alone.
        from repro.sym.expr import BinOp

        constraint = Cmp(
            "gt",
            BinOp("floordiv", BinOp("mul", Var("x"), Const(100)),
                  Const(10000)),
            Const(70),
        )
        candidates = stats_candidates([constraint])
        solver = Solver({"x": Domain("x", candidates)})
        solution = solver.solve([constraint])
        assert solution is not None
        assert solution["x"] * 100 // 10000 > 70

    def test_domain_rejects_empty(self):
        with pytest.raises(SolverError):
            Domain("x", [])

    def test_domain_deduplicates_preserving_order(self):
        domain = Domain("x", [3, 1, 3, 2, 1])
        assert domain.candidates == [3, 1, 2]
