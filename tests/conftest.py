"""Shared test configuration: a deterministic hypothesis profile.

Model-checking steps inside property-based tests have variable latency
(cloning and hashing whole systems), so per-example deadlines are disabled;
derandomization keeps CI runs reproducible.
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "nice",
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("nice")
