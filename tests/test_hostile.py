"""Hostile-model hardening acceptance tests (ISSUE 8).

The model under test is an *adversary* here (:mod:`repro.apps.hostile`):
its ``packet_in`` raises, hangs forever, SIGKILLs its own worker, or
allocates until the memory watchdog trips — per mode, gated by an
arm-count file so the induced damage is bounded.  The acceptance bar for
every containment path is the project's usual one: once the failures are
absorbed, the explored state space must be bit-identical to a benign
serial baseline.
"""

from __future__ import annotations

import json

import pytest

from contract import counters, requires_fork, violated_properties
from repro import cli, nice, scenarios
from repro.config import NiceConfig
from repro.mc.transport import TransportError
from repro.scenarios import with_config

#: One node per task, no adaptive growth: every sibling group travels
#: alone, so death attribution and quarantine act on exactly the poisoned
#: group and bit-identity comparisons stay meaningful.
KNOBS = dict(stop_at_first_violation=False, batch_groups=1, batch_nodes=1,
             adaptive_batching=False)

ENGINES = [
    pytest.param(dict(start_method="fork"), marks=requires_fork, id="fork"),
    pytest.param(dict(start_method="spawn"), id="spawn"),
    pytest.param(dict(transport="socket"), id="socket"),
]

#: Containment knobs sized for the test suite: beats every 0.2s, hung
#: tasks declared dead after 2s, fleet kept at strength by the autoscaler.
CONTAIN = dict(workers=2, respawn_workers=True, task_deadline=2.0,
               heartbeat_interval=0.2)


def build(mode="benign", arm_file=None, pings=0, spare_quarantine=True,
          ballast_mb=96, **overrides):
    scenario = scenarios.REGISTRY["hostile"](
        mode=mode, arm_file=arm_file, pings=pings,
        spare_quarantine=spare_quarantine, ballast_mb=ballast_mb)
    return with_config(scenario, **{**KNOBS, **overrides})


def arm(tmp_path, count):
    path = tmp_path / "arm"
    path.write_text(str(count))
    return str(path)


@pytest.fixture(scope="module")
def benign_serial():
    """The baseline every contained run must reproduce bit-for-bit."""
    return nice.run(build())


# ----------------------------------------------------------------------
# Model exceptions become replayable counterexamples
# ----------------------------------------------------------------------

class TestModelErrorContainment:
    def test_serial_records_replayable_model_error(self):
        scenario = build(mode="raise")
        stats = nice.run(scenario)
        assert stats.terminated == "exhausted"
        assert stats.model_errors >= 1
        assert "ModelError" in violated_properties(stats)
        error = next(v for v in stats.violations
                     if v.property_name == "ModelError")
        assert "RuntimeError" in error.message
        assert "Traceback" in error.details
        # The counterexample replays: re-executing the trace reproduces
        # the model bug deterministically (surfaced as a ReplayError
        # wrapping the handler's own exception, with step context).
        from repro.errors import ReplayError

        with pytest.raises(ReplayError, match="hostile handler refused"):
            nice.replay(scenario, error.trace)

    @pytest.mark.parametrize("overrides", ENGINES)
    def test_parallel_matches_serial(self, overrides, benign_serial):
        serial = nice.run(build(mode="raise"))
        parallel = nice.run(build(mode="raise", **CONTAIN, **overrides))
        assert counters(parallel) == counters(serial)
        assert parallel.model_errors == serial.model_errors
        assert violated_properties(parallel) == violated_properties(serial)
        # No process damage: containment happened in the handlers, not
        # through worker churn.
        assert parallel.worker_failures == 0

    def test_fail_fast_restores_the_old_serial_behavior(self):
        with pytest.raises(RuntimeError, match="poison"):
            nice.run(build(mode="raise", fail_fast=True))

    @requires_fork
    def test_fail_fast_aborts_the_parallel_search(self):
        with pytest.raises(TransportError, match="RuntimeError"):
            nice.run(build(mode="raise", fail_fast=True, workers=2,
                           start_method="fork"))


# ----------------------------------------------------------------------
# Hang detection: heartbeats prove liveness, deadlines prove progress
# ----------------------------------------------------------------------

class TestHangDetection:
    @pytest.mark.parametrize("overrides", ENGINES)
    def test_forever_looping_handler_is_killed_and_absorbed(
            self, overrides, benign_serial, tmp_path):
        """The tentpole scenario: a handler loops forever exactly once;
        the worker keeps heartbeating (pure-Python loop, the GIL preempts)
        but its task misses the deadline, so the master kills it, the
        autoscaler replaces it, and the retried task completes — with
        bit-identity to the benign serial baseline."""
        stats = nice.run(build(mode="hang", arm_file=arm(tmp_path, 1),
                               **CONTAIN, **overrides))
        assert counters(stats) == counters(benign_serial)
        assert violated_properties(stats) == violated_properties(benign_serial)
        assert stats.terminated == "exhausted"
        assert stats.workers_hung >= 1
        assert stats.deadline_kills >= 1
        assert stats.worker_failures >= 1
        assert stats.tasks_quarantined == 0

    def test_task_deadline_zero_disables_hang_detection(self, tmp_path):
        """Opt-out: with deadlines off, nothing hunts hung workers — the
        knob exists for models with legitimately unbounded handlers.
        (Not run to completion: a disabled detector would hang the test.)
        Validated at the config layer plus the scheduler's accessor."""
        config = NiceConfig(task_deadline=0.0, workers=2)
        assert config.task_deadline == 0.0


# ----------------------------------------------------------------------
# Poison-task quarantine
# ----------------------------------------------------------------------

class TestQuarantine:
    @pytest.mark.parametrize("overrides", ENGINES)
    def test_poison_group_is_quarantined_with_bit_identity(
            self, overrides, benign_serial, tmp_path):
        """A crash-on-sight model kills every fleet worker that touches a
        poison group; after max_task_retries deaths the group runs in the
        sandbox (where this model behaves — a fleet-poisonous but
        salvageable task) and the search finishes bit-identical."""
        stats = nice.run(build(mode="crash", arm_file=arm(tmp_path, -1),
                               max_task_retries=2, **CONTAIN, **overrides))
        assert counters(stats) == counters(benign_serial)
        assert violated_properties(stats) == violated_properties(benign_serial)
        assert stats.terminated == "exhausted"
        assert stats.tasks_quarantined >= 1
        assert stats.worker_failures >= 3
        assert stats.quarantined_tasks == []

    @requires_fork
    def test_unsalvageable_task_degrades_to_a_diagnostic(
            self, benign_serial, tmp_path):
        """SIGKILL-everything, sandbox included: the group dies in
        quarantine too, and the search records a structured diagnostic
        and finishes instead of aborting."""
        stats = nice.run(build(mode="crash", arm_file=arm(tmp_path, -1),
                               spare_quarantine=False, max_task_retries=2,
                               start_method="fork", **CONTAIN))
        assert stats.terminated == "exhausted"
        assert stats.tasks_quarantined >= 1
        assert stats.quarantined_tasks
        diagnostic = stats.quarantined_tasks[0]
        assert diagnostic.attempts == 3
        assert "SIGKILL" in diagnostic.reason
        # Graceful degradation is lossy by design: the poisoned subtree
        # was skipped, never explored twice.
        assert stats.unique_states <= benign_serial.unique_states
        assert "quarantined" in stats.summary()

    @requires_fork
    def test_quarantine_disabled_records_diagnostic_immediately(
            self, tmp_path):
        stats = nice.run(build(mode="crash", arm_file=arm(tmp_path, -1),
                               quarantine=False, max_task_retries=1,
                               start_method="fork", **CONTAIN))
        assert stats.terminated == "exhausted"
        assert stats.tasks_quarantined == 0
        assert stats.quarantined_tasks
        assert "disabled" in stats.quarantined_tasks[0].reason


# ----------------------------------------------------------------------
# Worker memory watchdog
# ----------------------------------------------------------------------

@requires_fork
class TestMemoryWatchdog:
    def test_bloated_worker_sheds_cache_and_recycles(self, benign_serial,
                                                     tmp_path):
        """Two poisoned executions balloon worker rss past the limit; the
        watchdog sheds the replay cache, finds the ballast still resident,
        and recycles the process — after finishing its task, so the search
        both progresses and stays exact."""
        stats = nice.run(build(mode="oom", arm_file=arm(tmp_path, 2),
                               ballast_mb=96,
                               worker_memory_limit=128 * 1024 * 1024,
                               **CONTAIN, start_method="fork"))
        assert counters(stats) == counters(benign_serial)
        assert stats.terminated == "exhausted"
        assert stats.worker_failures >= 1
        assert stats.tasks_quarantined == 0


# ----------------------------------------------------------------------
# Config validation and CLI wiring
# ----------------------------------------------------------------------

class TestConfigValidation:
    @pytest.mark.parametrize("field,value", [
        ("heartbeat_interval", -0.1),
        ("task_deadline", -1.0),
        ("max_task_retries", -1),
        ("worker_memory_limit", 0),
    ])
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ValueError, match=field):
            NiceConfig(**{field: value})

    def test_cli_flags_reach_the_config(self):
        args = cli.build_parser().parse_args(
            ["run", "hostile", "--workers", "2",
             "--heartbeat-interval", "0.25", "--task-deadline", "3",
             "--max-task-retries", "5", "--no-quarantine",
             "--worker-memory-limit", "1000000", "--fail-fast"])
        config = cli.make_config(args)
        assert config.heartbeat_interval == 0.25
        assert config.task_deadline == 3.0
        assert config.max_task_retries == 5
        assert config.quarantine is False
        assert config.worker_memory_limit == 1000000
        assert config.fail_fast is True

    def test_worker_retry_flags_parse(self):
        args = cli.build_parser().parse_args(
            ["worker", "--connect", "127.0.0.1:1", "--retry", "2",
             "--retry-max-wait", "0.05"])
        assert args.retry == 2
        assert args.retry_max_wait == 0.05


class TestWorkerRetryBackoff:
    def test_exhausted_retries_fail_with_attempt_count(self, capsys):
        from repro.mc.transport.socket import run_worker

        # Nobody listens on port 1; two fast jittered attempts, then a
        # clean non-zero exit instead of a one-shot crash.
        assert run_worker("127.0.0.1:1", retries=2,
                          retry_max_wait=0.05) == 1
        out = capsys.readouterr()
        assert "2 attempt(s)" in out.err
        assert "retrying" in out.err


class TestJsonStats:
    def test_containment_counters_in_json_payload(self, capsys):
        exit_code = cli.main(["run", "hostile", "--json", "--all-violations"])
        assert exit_code == 0  # the benign mode violates nothing
        payload = json.loads(capsys.readouterr().out)
        for key in ("workers_hung", "deadline_kills", "tasks_quarantined",
                    "model_errors", "quarantined_tasks"):
            assert key in payload
        assert payload["model_errors"] == 0


# ----------------------------------------------------------------------
# `nice checkpoints` inspector
# ----------------------------------------------------------------------

class TestCheckpointInspector:
    @pytest.fixture()
    def checkpoint_dir(self, tmp_path):
        directory = tmp_path / "ckpt"
        nice.run(with_config(scenarios.ping_experiment(pings=2),
                             stop_at_first_violation=False,
                             checkpoint_dir=str(directory),
                             checkpoint_interval=50))
        return directory

    def test_lists_and_validates_snapshots(self, checkpoint_dir, capsys):
        assert cli.main(["checkpoints", str(checkpoint_dir)]) == 0
        out = capsys.readouterr().out
        assert "resume would load: ckpt-" in out
        assert ": ok " in out and "scenario=ping" in out

    def test_torn_snapshot_is_flagged(self, checkpoint_dir, capsys):
        from repro.mc.store import list_checkpoints

        newest = list_checkpoints(checkpoint_dir)[-1]
        victim = next(p for p in newest.iterdir()
                      if p.name != "MANIFEST.json")
        victim.write_bytes(b"torn")
        exit_code = cli.main(["checkpoints", "--json", str(checkpoint_dir)])
        payload = json.loads(capsys.readouterr().out)
        entries = {e["name"]: e for e in payload["checkpoints"]}
        assert entries[newest.name]["valid"] is False
        # An older intact snapshot is still loadable -> exit 0; resume
        # would fall back to it, exactly what the inspector reports.
        if payload["resume_would_load"]:
            assert exit_code == 0
            assert payload["resume_would_load"] != newest.name

    def test_empty_directory_exits_nonzero(self, tmp_path, capsys):
        assert cli.main(["checkpoints", str(tmp_path)]) == 2
        assert "no checkpoints" in capsys.readouterr().out
