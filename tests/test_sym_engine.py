"""Tests for the concolic engine's discovery entry points."""

from repro.apps.pyswitch import PySwitch
from repro.openflow.packet import MacAddress
from repro.sym.engine import ConcolicEngine
from repro.topo.topology import Topology

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")


def make_topo():
    topo = Topology()
    topo.add_switch("s1", [1, 2])
    topo.add_host("A", MAC_A, "10.0.0.1", "s1", 1)
    topo.add_host("B", MAC_B, "10.0.0.2", "s1", 2)
    return topo


def make_host(topo):
    from repro.hosts.client import Client

    return Client("A", MAC_A, topo.hosts["A"].ip)


def booted_pyswitch():
    app = PySwitch()
    app.switch_join(None, "s1", {})
    return app


class TestDiscoverPackets:
    def test_empty_mactable_two_classes(self):
        # From an empty MAC table only two handler paths are reachable for
        # a fixed (unicast) source: broadcast destination -> flood, and
        # unknown unicast destination -> flood.  (The install path needs a
        # learned destination.)
        topo = make_topo()
        app = booted_pyswitch()
        engine = ConcolicEngine()
        packets = engine.discover_packets(app, "s1", 1, topo, make_host(topo))
        destinations = {pkt.eth_dst.canonical() for pkt in packets}
        assert len(packets) == 2
        assert "ff:ff:ff:ff:ff:ff" in destinations

    def test_learned_destination_enables_install_path(self):
        # Figure 4's point: with B learned, a third class appears — the
        # packet that triggers the rule-install path.
        topo = make_topo()
        app = booted_pyswitch()
        app.ctrl_state["s1"][MAC_B] = 2
        engine = ConcolicEngine()
        packets = engine.discover_packets(app, "s1", 1, topo, make_host(topo))
        destinations = [pkt.eth_dst.canonical() for pkt in packets]
        assert len(packets) == 3
        assert MAC_B.canonical() in destinations

    def test_discovery_does_not_mutate_app(self):
        topo = make_topo()
        app = booted_pyswitch()
        before = dict(app.ctrl_state["s1"])
        ConcolicEngine().discover_packets(app, "s1", 1, topo, make_host(topo))
        assert app.ctrl_state["s1"] == before

    def test_deterministic(self):
        topo = make_topo()
        app = booted_pyswitch()
        host = make_host(topo)
        first = ConcolicEngine().discover_packets(app, "s1", 1, topo, host)
        second = ConcolicEngine().discover_packets(app, "s1", 1, topo, host)
        assert [p.header_tuple() for p in first] == \
            [p.header_tuple() for p in second]

    def test_source_pinned_to_host(self):
        topo = make_topo()
        app = booted_pyswitch()
        packets = ConcolicEngine().discover_packets(
            app, "s1", 1, topo, make_host(topo))
        assert all(p.eth_src == MAC_A for p in packets)

    def test_max_paths_bounds_runs(self):
        topo = make_topo()
        app = booted_pyswitch()
        app.ctrl_state["s1"][MAC_B] = 2
        engine = ConcolicEngine(max_paths=1)
        packets = engine.discover_packets(app, "s1", 1, topo, make_host(topo))
        assert len(packets) == 1
        assert engine.handler_runs == 1

    def test_crashing_handler_still_yields_paths(self):
        class CrashyApp(PySwitch):
            def packet_in(self, api, sw_id, inport, pkt, bufid, reason):
                if pkt.dst[0] & 1:
                    raise RuntimeError("boom on broadcast")
                super().packet_in(api, sw_id, inport, pkt, bufid, reason)

        topo = make_topo()
        app = CrashyApp()
        app.switch_join(None, "s1", {})
        packets = ConcolicEngine().discover_packets(
            app, "s1", 1, topo, make_topo() and make_host(topo))
        assert len(packets) >= 2  # the crash path is still a path


class TestDiscoverStats:
    def test_threshold_paths_discovered(self):
        from repro.apps.energy_te import EnergyTrafficEngineering

        app = EnergyTrafficEngineering(
            ingress="s1", monitor_port=2,
            always_on={1: [("s1", 2)]}, on_demand={1: [("s1", 3)]})
        base = {2: {"rx_packets": 0, "tx_packets": 0,
                    "rx_bytes": 0, "tx_bytes": 0}}
        variants = ConcolicEngine().discover_stats(app, "s1", base)
        # One representative per handler path: below and above the
        # utilization threshold.
        states = set()
        for stats in variants:
            util = stats[2]["tx_bytes"] * 100 // 10000
            states.add(util > 70)
        assert states == {True, False}

    def test_stats_handler_without_branches_single_class(self):
        from repro.controller.app import App

        class Oblivious(App):
            def port_stats_in(self, api, sw_id, stats, xid=0):
                self.seen = True

        base = {1: {"rx_packets": 0, "tx_packets": 0,
                    "rx_bytes": 0, "tx_bytes": 0}}
        variants = ConcolicEngine().discover_stats(Oblivious(), "s1", base)
        assert len(variants) == 1
