"""Unit tests for FIFO channels and the optional fault model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ChannelError
from repro.openflow.channels import Channel


class TestFifo:
    def test_fifo_order(self):
        ch = Channel("c")
        ch.enqueue(1)
        ch.enqueue(2)
        ch.enqueue(3)
        assert ch.dequeue() == 1
        assert ch.peek() == 2
        assert ch.dequeue() == 2
        assert ch.dequeue() == 3

    def test_empty_operations_raise(self):
        ch = Channel("c")
        with pytest.raises(ChannelError):
            ch.dequeue()
        with pytest.raises(ChannelError):
            ch.peek()

    def test_truthiness_and_len(self):
        ch = Channel("c")
        assert not ch
        ch.enqueue("x")
        assert ch
        assert len(ch) == 1

    def test_extend_and_items_snapshot(self):
        ch = Channel("c")
        ch.extend([1, 2])
        snapshot = ch.items()
        snapshot.append(3)
        assert len(ch) == 2

    def test_clear_drains(self):
        ch = Channel("c")
        ch.extend([1, 2])
        assert ch.clear() == [1, 2]
        assert not ch

    @given(st.lists(st.integers(), max_size=20))
    def test_fifo_property(self, items):
        ch = Channel("c")
        ch.extend(items)
        assert [ch.dequeue() for _ in range(len(ch))] == items


class TestFaultModel:
    def test_reliable_channel_has_no_faults(self):
        ch = Channel("ofp", reliable=True)
        ch.enqueue(1)
        assert ch.fault_operations() == []
        with pytest.raises(ChannelError):
            ch.apply_fault(("drop", 0))

    def test_drop(self):
        ch = Channel("pkt", reliable=False)
        ch.extend([1, 2, 3])
        ch.apply_fault(("drop", 1))
        assert ch.items() == [1, 3]

    def test_duplicate(self):
        ch = Channel("pkt", reliable=False)
        ch.extend([1, 2])
        ch.apply_fault(("duplicate", 0))
        assert ch.items() == [1, 1, 2]

    def test_reorder_swaps_neighbors(self):
        ch = Channel("pkt", reliable=False)
        ch.extend([1, 2, 3])
        ch.apply_fault(("reorder", 0))
        assert ch.items() == [2, 1, 3]

    def test_fail_silences_channel(self):
        ch = Channel("pkt", reliable=False)
        ch.apply_fault(("fail",))
        ch.enqueue(1)
        assert len(ch) == 0
        assert ch.fault_operations() == []  # no further faults on dead link

    def test_fault_enumeration_shape(self):
        ch = Channel("pkt", reliable=False)
        ch.extend([1, 2])
        ops = ch.fault_operations()
        assert ("fail",) in ops
        assert ("drop", 0) in ops and ("drop", 1) in ops
        assert ("duplicate", 0) in ops
        assert ("reorder", 0) in ops
        assert ("reorder", 1) not in ops

    def test_bad_fault_index(self):
        ch = Channel("pkt", reliable=False)
        ch.enqueue(1)
        with pytest.raises(ChannelError):
            ch.apply_fault(("drop", 5))
        with pytest.raises(ChannelError):
            ch.apply_fault(("reorder", 0))

    def test_unknown_fault(self):
        ch = Channel("pkt", reliable=False)
        ch.enqueue(1)
        with pytest.raises(ChannelError):
            ch.apply_fault(("mangle", 0))


class TestCanonical:
    def test_canonical_includes_failure_flag(self):
        a = Channel("c", reliable=False)
        b = Channel("c", reliable=False)
        assert a.canonical() == b.canonical()
        a.apply_fault(("fail",))
        assert a.canonical() != b.canonical()

    def test_canonical_uses_item_canonical(self):
        class Item:
            def canonical(self):
                return ("item", 1)

        ch = Channel("c")
        ch.enqueue(Item())
        assert ch.canonical() == ("c", False, (("item", 1),))
