"""Property-based tests on the model checker's core invariants."""

from hypothesis import given, settings, strategies as st

from repro import scenarios
from repro.mc import transitions as tk


def drive(system, choices, limit=40):
    """Execute up to ``limit`` transitions, picking by index sequence."""
    trace = []
    for choice in choices[:limit]:
        enabled = system.enabled_transitions()
        if not enabled:
            break
        transition = enabled[choice % len(enabled)]
        system.execute(transition)
        trace.append(transition)
    return trace


class TestExecutionDeterminism:
    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=25))
    def test_same_choices_same_state(self, choices):
        """Executing the same transition sequence from equal initial states
        always reaches the same state hash — the foundation of replay-based
        checkpointing (Section 6)."""
        scenario = scenarios.ping_experiment(pings=2)
        a = scenario.system_factory()
        b = scenario.system_factory()
        trace_a = drive(a, choices)
        for transition in trace_a:
            b.execute(transition)
        assert a.state_hash() == b.state_hash()

    @settings(max_examples=20, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_clone_then_execute_equals_execute(self, choices):
        """clone() must be a faithful checkpoint: executing on the clone
        gives the same states as executing on the original."""
        scenario = scenarios.ping_experiment(pings=2)
        original = scenario.system_factory()
        drive(original, choices[: len(choices) // 2])
        checkpoint = original.clone()
        rest = choices[len(choices) // 2:]
        trace = drive(original, rest)
        for transition in trace:
            checkpoint.execute(transition)
        assert checkpoint.state_hash() == original.state_hash()

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=20))
    def test_enabled_set_is_deterministic(self, choices):
        scenario = scenarios.ping_experiment(pings=2)
        system = scenario.system_factory()
        drive(system, choices)
        first = [t.key() for t in system.enabled_transitions()]
        second = [t.key() for t in system.enabled_transitions()]
        assert first == second

    @settings(max_examples=15, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=25))
    def test_packet_conservation(self, choices):
        """Every injected packet is somewhere: in flight, buffered,
        delivered, consumed, or lost — nothing silently disappears."""
        scenario = scenarios.ping_experiment(pings=2)
        system = scenario.system_factory()
        drive(system, choices)
        injected = {entry[0] for entry in system.ledger.injected}
        accounted = set()
        for uid, _copy, _host in system.ledger.delivered:
            accounted.add(uid)
        for uid, _copy, _sw, _port in system.ledger.lost:
            accounted.add(uid)
        for switch in system.switches.values():
            for _kind, uid, _copy in switch.dropped:
                if uid is not None:
                    accounted.add(uid)
            for packet, _port in switch.buffers.values():
                accounted.add(packet.uid)
            for port in switch.ports:
                for packet in switch.port_in[port].items():
                    accounted.add(packet.uid)
        for host in system.hosts.values():
            for packet in host.inbox:
                accounted.add(packet.uid)
        assert injected <= accounted | {None}

    @settings(max_examples=10, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=5, max_size=25),
           st.lists(st.integers(0, 100), min_size=5, max_size=25))
    def test_hash_collision_implies_equal_canonical(self, one, two):
        """If two executions reach the same hash, their canonical states
        are identical (the hash is honest, not lossy in practice)."""
        scenario = scenarios.ping_experiment(pings=2)
        a = scenario.system_factory()
        b = scenario.system_factory()
        drive(a, one)
        drive(b, two)
        if a.state_hash() == b.state_hash():
            assert a.canonical_state() == b.canonical_state()


class TestHashMemoization:
    """The memoized per-component canonical forms must never go stale."""

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=25))
    def test_memoized_hash_equals_fresh_hash(self, choices):
        scenario = scenarios.ping_experiment(pings=2)
        system = scenario.system_factory()
        for choice in choices:
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system = system.clone()
            system.execute(enabled[choice % len(enabled)])
            memoized = system.state_hash()
            system._canon_cache.clear()
            assert system.state_hash() == memoized

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.integers(0, 100), min_size=1, max_size=25))
    def test_memoized_hash_equals_fresh_hash_under_faults(self, choices):
        """Regression: a ``duplicate`` channel fault used to insert the same
        Packet object twice; once one alias migrated to another component,
        in-place hop recording left the other component's cached canonical
        form stale."""
        from repro.config import NiceConfig

        scenario = scenarios.ping_experiment(
            pings=1, config=NiceConfig(channel_faults=True))
        system = scenario.system_factory()
        for choice in choices:
            enabled = system.enabled_transitions()
            if not enabled:
                break
            system = system.clone()
            system.execute(enabled[choice % len(enabled)])
            memoized = system.state_hash()
            system._canon_cache.clear()
            assert system.state_hash() == memoized
