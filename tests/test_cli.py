"""Tests for the command-line front end."""

import json

import pytest

from contract import requires_fork
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "pyswitch-loop"])
        assert args.strategy == "PKT-SEQ"
        assert not args.no_canonical

    def test_rejects_unknown_scenario(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "nonexistent"])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "pyswitch-loop", "--strategy", "MAGIC"])

    def test_transport_flags(self):
        args = build_parser().parse_args(
            ["run", "pyswitch-loop", "--workers", "2", "--transport",
             "socket", "--listen", "127.0.0.1:7001", "--no-affinity"])
        assert args.transport == "socket"
        assert args.listen == "127.0.0.1:7001"
        assert args.no_affinity

    def test_rejects_unknown_transport(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["run", "pyswitch-loop", "--transport", "smoke-signal"])

    def test_fault_tolerance_flags(self):
        args = build_parser().parse_args(
            ["run", "pyswitch-loop", "--workers", "4", "--min-workers", "2",
             "--max-worker-failures", "3", "--no-adaptive-batching"])
        assert args.min_workers == 2
        assert args.max_worker_failures == 3
        assert args.no_adaptive_batching

    def test_fault_tolerance_defaults(self):
        args = build_parser().parse_args(["run", "pyswitch-loop"])
        assert args.min_workers == 1
        assert args.max_worker_failures is None
        assert not args.no_adaptive_batching

    def test_worker_requires_connect(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["worker"])
        args = build_parser().parse_args(
            ["worker", "--connect", "10.0.0.1:7000"])
        assert args.connect == "10.0.0.1:7000"

    def test_store_and_checkpoint_flags(self):
        args = build_parser().parse_args(
            ["run", "ping", "--store", "sharded", "--store-shards", "8",
             "--store-memory-budget", "1000",
             "--checkpoint-dir", "/tmp/ck", "--checkpoint-interval", "500"])
        assert args.store == "sharded"
        assert args.store_shards == 8
        assert args.store_memory_budget == 1000
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.checkpoint_interval == 500

    def test_rejects_unknown_store(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "ping", "--store", "etcd"])

    def test_resume_requires_directory(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["resume"])
        args = build_parser().parse_args(
            ["resume", "/tmp/ck", "--workers", "4", "--transport", "socket"])
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.workers == 4
        assert args.transport == "socket"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "pyswitch-loop" in out
        assert "loadbalancer" in out

    def test_run_finds_violation_exit_code(self, capsys):
        code = main(["run", "pyswitch-loop"])
        out = capsys.readouterr().out
        assert code == 1
        assert "NoForwardingLoops" in out

    def test_run_json_output(self, capsys):
        code = main(["run", "pyswitch-loop", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["violations"][0]["property"] == "NoForwardingLoops"
        assert payload["transitions"] > 0

    def test_run_reports_serial_engine(self, capsys):
        main(["run", "pyswitch-loop"])
        out = capsys.readouterr().out
        assert "engine               : serial" in out

    @requires_fork
    def test_run_workers_reports_parallel_engine(self, capsys):
        code = main(["run", "pyswitch-loop", "--workers", "2"])
        out = capsys.readouterr().out
        assert code == 1
        assert "engine               : local-fork (2 workers)" in out
        assert "restoration" in out

    @requires_fork
    def test_run_workers_renders_fault_tolerance_counters(self, capsys):
        main(["run", "pyswitch-loop", "--workers", "2"])
        out = capsys.readouterr().out
        assert "fault tolerance      : 0 worker failure(s)" in out
        assert "0 elastic join(s)" in out

    @requires_fork
    def test_run_json_reports_engine(self, capsys):
        main(["run", "pyswitch-loop", "--workers", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["engine"] == "local-fork"
        assert payload["workers"] == 2

    @requires_fork
    def test_run_json_reports_churn_counters(self, capsys):
        main(["run", "ping", "--pings", "1", "--workers", "2", "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["worker_failures"] == 0
        assert payload["tasks_retried"] == 0
        assert payload["elastic_joins"] == 0
        assert set(payload["worker_tasks"]) == {"0", "1"}
        assert sum(payload["worker_tasks"].values()) > 0

    def test_run_with_trace(self, capsys):
        main(["run", "pyswitch-loop", "--trace"])
        out = capsys.readouterr().out
        assert "host_send" in out

    def test_run_clean_scenario_exit_zero(self, capsys):
        code = main(["run", "ping", "--pings", "1"])
        assert code == 0

    def test_run_max_transitions_bound(self, capsys):
        code = main(["run", "ping", "--pings", "2",
                     "--max-transitions", "10"])
        out = capsys.readouterr().out
        assert "max_transitions" in out
        assert code == 0

    def test_run_checkpoint_then_resume(self, capsys, tmp_path):
        """End-to-end through the CLI: checkpoint a run, resume the last
        snapshot, and the resumed leg reports its provenance."""
        ckpt = str(tmp_path / "ck")
        code = main(["run", "ping", "--pings", "2", "--all-violations",
                     "--checkpoint-dir", ckpt,
                     "--checkpoint-interval", "100"])
        out = capsys.readouterr().out
        assert code == 0
        assert "checkpoints          :" in out
        code = main(["resume", ckpt, "--json"])
        payload = json.loads(capsys.readouterr().out)
        assert code == 0
        assert payload["resumed_from"].startswith(ckpt)
        assert payload["scenario"] == "ping-2"
        # counters land where the uninterrupted run would have
        assert payload["unique_states"] > 0

    def test_resume_without_checkpoints_fails_cleanly(self, capsys,
                                                      tmp_path):
        code = main(["resume", str(tmp_path / "empty")])
        err = capsys.readouterr().err
        assert code == 2
        assert "no usable checkpoint" in err

    def test_walk(self, capsys):
        code = main(["walk", "pyswitch-loop", "--steps", "40", "--seed", "1"])
        out = capsys.readouterr().out
        assert "transitions executed" in out
        assert code in (0, 1)
