"""Differential testing over randomized scenarios (ISSUE 4).

Every engine variant of the search — serial, parallel over two fork
workers, the eager-clone baseline (``cow_clone=False``) and the
full-render hash baseline (``hash_mode="full"``) — must explore the
identical state space and reach identical property verdicts on every
scenario :mod:`scenario_gen` can generate.  A failing seed is printed in
the assertion message for replay
(``random_scenario(seed)`` rebuilds it exactly).

A small seed range runs in the fast tier; the wide sweep is ``slow`` and
rides the nightly matrix.
"""

from __future__ import annotations

import pytest

from contract import counters, requires_fork, violated_properties
from repro import nice
from repro.scenarios import with_config
from scenario_gen import random_scenario

#: Engine variants cross-checked against the serial default.
VARIANTS = {
    "parallel-2": dict(workers=2),
    "eager-clone": dict(cow_clone=False),
    "full-hash": dict(hash_mode="full"),
}

FAST_SEEDS = range(4)
SLOW_SEEDS = range(4, 20)


def check_seed(seed: int) -> None:
    scenario = random_scenario(seed)
    baseline = nice.run(scenario)
    for variant, overrides in VARIANTS.items():
        result = nice.run(with_config(scenario, **overrides))
        replay = f"replay with scenario_gen.random_scenario({seed})"
        assert counters(result) == counters(baseline), (
            f"seed {seed}: {variant} explored a different state space"
            f" ({counters(result)} != {counters(baseline)}); {replay}")
        assert violated_properties(result) == violated_properties(baseline), (
            f"seed {seed}: {variant} reached different verdicts"
            f" ({violated_properties(result)} !="
            f" {violated_properties(baseline)}); {replay}")


class TestDifferentialRandomScenarios:
    @requires_fork
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_engines_agree(self, seed):
        check_seed(seed)

    @requires_fork
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_engines_agree_wide_sweep(self, seed):
        check_seed(seed)


class TestGeneratorDeterminism:
    def test_same_seed_same_scenario(self):
        a, b = random_scenario(7), random_scenario(7)
        assert a.system_factory().state_hash() == \
            b.system_factory().state_hash()
        assert a.config == b.config

    def test_seeds_vary_the_scenario(self):
        hashes = {random_scenario(seed).system_factory().state_hash()
                  for seed in range(8)}
        assert len(hashes) > 1

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_spaces_stay_bounded(self, seed):
        """The generator's size contract: every scenario exhausts within
        a bounded transition budget (loop-free topologies, <=3 packets)."""
        result = nice.run(with_config(random_scenario(seed),
                                      max_transitions=40000))
        assert result.terminated == "exhausted"
