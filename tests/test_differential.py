"""Differential testing over randomized scenarios (ISSUE 4, extended by
ISSUE 5).

Every engine variant of the search — serial, parallel over two fork
workers, the eager-clone baseline (``cow_clone=False``), the
full-render hash baseline (``hash_mode="full"``), the sharded
explored-set store under a spill-forcing memory budget, and the
worker-side Bloom dedup pre-filter both disabled
(``store_bloom_broadcast=False``) and saturated into a
hydration storm (``store_bloom_bits=8``) — must explore
the identical state space and reach identical property verdicts on
every scenario :mod:`scenario_gen` can generate.  On top of the
variants, every seed also runs **interrupted-then-resumed**: the search
is cut at a seed-derived state count past its first checkpoint and
continued with ``nice.resume``, and the combined legs must match the
uninterrupted serial run exactly (the checkpoint/resume invariant of
DESIGN.md, "State store and restartability").  A failing seed is
printed in the assertion message for replay
(``random_scenario(seed)`` rebuilds it exactly).

A small seed range runs in the fast tier; the wide sweep is ``slow``
and rides the nightly matrix.
"""

from __future__ import annotations

import pytest

from checkpoint_helpers import Interrupted, interrupt_after
from contract import counters, requires_fork, violated_properties
from repro import nice
from repro.scenarios import with_config
from scenario_gen import random_scenario

#: Engine variants cross-checked against the serial default.
VARIANTS = {
    "parallel-2": dict(workers=2),
    "eager-clone": dict(cow_clone=False),
    "full-hash": dict(hash_mode="full"),
    # A tiny resident budget forces the disk-spill lookup path on every
    # generated scenario, not just giant ones.
    "sharded-store": dict(store="sharded", store_shards=4,
                          store_memory_budget=16),
    # The worker-side dedup pre-filter, off (parallel-2 above runs it
    # on — the default) and *saturated*: an 8-bit summary turns nearly
    # every child into a false-positive stub, so the stub verification
    # and hydration round-trips run on every task.
    "no-worker-bloom": dict(workers=2, store_bloom_broadcast=False),
    "worker-bloom-fp": dict(workers=2, store_bloom_bits=8),
}

FAST_SEEDS = range(4)
SLOW_SEEDS = range(4, 20)


def check_seed(seed: int, tmp_path, monkeypatch) -> None:
    scenario = random_scenario(seed)
    baseline = nice.run(scenario)
    replay = f"replay with scenario_gen.random_scenario({seed})"
    for variant, overrides in VARIANTS.items():
        result = nice.run(with_config(scenario, **overrides))
        assert counters(result) == counters(baseline), (
            f"seed {seed}: {variant} explored a different state space"
            f" ({counters(result)} != {counters(baseline)}); {replay}")
        assert violated_properties(result) == violated_properties(baseline), (
            f"seed {seed}: {variant} reached different verdicts"
            f" ({violated_properties(result)} !="
            f" {violated_properties(baseline)}); {replay}")
    resumed = interrupted_then_resumed(scenario, seed, baseline, tmp_path,
                                       monkeypatch)
    assert counters(resumed) == counters(baseline), (
        f"seed {seed}: interrupted-then-resumed explored a different state"
        f" space ({counters(resumed)} != {counters(baseline)}); {replay}")
    assert violated_properties(resumed) == violated_properties(baseline), (
        f"seed {seed}: interrupted-then-resumed reached different verdicts;"
        f" {replay}")


def interrupted_then_resumed(scenario, seed, baseline, tmp_path, monkeypatch):
    """Cut the search at a seed-derived point past its first checkpoint,
    then continue from the snapshot.  Generated scenarios carry no
    registry spec, so the resume rebuilds from the scenario object — the
    path `nice.resume(scenario=...)` exists for."""
    unique = baseline.unique_states
    if unique < 6:
        pytest.skip(f"seed {seed} explores only {unique} states — nothing "
                    f"meaningful to interrupt")
    interval = max(2, unique // 4)
    cut = min(unique - 1, interval + 1 + (seed % max(unique - interval - 2, 1)))
    ckpt_dir = tmp_path / f"ckpt-{seed}"
    interrupted = with_config(scenario, checkpoint_dir=str(ckpt_dir),
                              checkpoint_interval=interval)

    def cut_after_first_checkpoint():
        # Only interrupt once a completed snapshot exists to fall back
        # on — checkpoints are written between expansions, and a bushy
        # node can blow through `cut` before the first one lands.
        if any(ckpt_dir.glob("ckpt-*")):
            raise Interrupted(f"cut at >= {cut} states")

    interrupt_after(monkeypatch, cut, action=cut_after_first_checkpoint)
    try:
        with pytest.warns(RuntimeWarning, match="hand-built"):
            finished = nice.run(interrupted)
    except Interrupted:
        pass
    else:
        # The space was too shallow to cut after its first checkpoint;
        # the completed checkpointing run is still a valid variant.
        monkeypatch.undo()
        return finished
    monkeypatch.undo()
    _, stats = nice.resume(ckpt_dir, scenario=scenario, checkpoint_dir=None)
    assert stats.resumed_from is not None
    return stats


class TestDifferentialRandomScenarios:
    @requires_fork
    @pytest.mark.parametrize("seed", FAST_SEEDS)
    def test_engines_agree(self, seed, tmp_path, monkeypatch):
        check_seed(seed, tmp_path, monkeypatch)

    @requires_fork
    @pytest.mark.slow
    @pytest.mark.parametrize("seed", SLOW_SEEDS)
    def test_engines_agree_wide_sweep(self, seed, tmp_path, monkeypatch):
        check_seed(seed, tmp_path, monkeypatch)


class TestGeneratorDeterminism:
    def test_same_seed_same_scenario(self):
        a, b = random_scenario(7), random_scenario(7)
        assert a.system_factory().state_hash() == \
            b.system_factory().state_hash()
        assert a.config == b.config

    def test_seeds_vary_the_scenario(self):
        hashes = {random_scenario(seed).system_factory().state_hash()
                  for seed in range(8)}
        assert len(hashes) > 1

    @pytest.mark.parametrize("seed", range(8))
    def test_generated_spaces_stay_bounded(self, seed):
        """The generator's size contract: every scenario exhausts within
        a bounded transition budget (loop-free topologies, <=3 packets)."""
        result = nice.run(with_config(random_scenario(seed),
                                      max_transitions=40000))
        assert result.terminated == "exhausted"
