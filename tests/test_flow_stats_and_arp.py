"""Tests for flow-statistics replies and the ARP-resolving client."""

from repro.hosts.arp import ArpClient
from repro.openflow.actions import ActionOutput
from repro.openflow.match import Match
from repro.openflow.messages import OFPST_FLOW, StatsReply, StatsRequest
from repro.openflow.packet import (
    MacAddress,
    TCP_SYN,
    arp_reply,
    ip_from_string,
    tcp_packet,
)
from repro.openflow.rules import Rule
from repro.openflow.switch import SwitchModel

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
VIP_MAC = MacAddress.from_string("00:00:00:00:01:00")
IP_A = ip_from_string("10.0.0.1")
VIP = ip_from_string("10.0.0.100")


class TestFlowStats:
    def test_flow_stats_reply_carries_rule_counters(self):
        switch = SwitchModel("s1", [1, 2])
        rule = Rule(Match(tp_dst=80), [ActionOutput(2)])
        switch.table.install(rule)
        rule.record_hit(64)
        rule.record_hit(64)
        switch.ofp_in.enqueue(StatsRequest(OFPST_FLOW, xid=4))
        switch.process_of()
        reply = switch.ofp_out.dequeue()
        assert isinstance(reply, StatsReply)
        assert reply.kind == OFPST_FLOW
        assert reply.xid == 4
        entry = reply.stats[0]
        assert entry["packet_count"] == 2
        assert entry["byte_count"] == 128
        assert entry["priority"] == rule.priority

    def test_port_stats_still_default(self):
        switch = SwitchModel("s1", [1])
        switch.ofp_in.enqueue(StatsRequest())
        switch.process_of()
        reply = switch.ofp_out.dequeue()
        assert reply.kind == "port"
        assert 1 in reply.stats


class TestArpClient:
    def make(self):
        data = [tcp_packet(MAC_A, MacAddress.broadcast(), IP_A, VIP,
                           1000, 80, flags=TCP_SYN)]
        client = ArpClient("C", MAC_A, IP_A, target_ip=VIP, script=data)
        client.counter_c = 5
        return client

    def test_starts_with_arp_request_only(self):
        client = self.make()
        assert client.send_candidates(10) == [("script", 0)]
        request = client.take_send(("script", 0))
        assert request.eth_type == 0x0806
        assert request.ip_dst == VIP
        # Data held back until resolution.
        assert client.send_candidates(10) == []

    def test_reply_releases_rewritten_data(self):
        client = self.make()
        client.take_send(("script", 0))
        client.deliver(arp_reply(VIP_MAC, MAC_A, VIP, IP_A))
        client.receive()
        assert client.resolved_mac == VIP_MAC
        assert client.send_candidates(10) == [("script", 1)]
        data = client.take_send(("script", 1))
        assert data.eth_dst == VIP_MAC       # destination rewritten
        assert data.tcp_flags == TCP_SYN

    def test_duplicate_replies_do_not_duplicate_script(self):
        client = self.make()
        client.take_send(("script", 0))
        for _ in range(2):
            client.deliver(arp_reply(VIP_MAC, MAC_A, VIP, IP_A))
            client.receive()
        assert len(client.script) == 2   # arp + one data packet

    def test_foreign_arp_ignored(self):
        client = self.make()
        other = arp_reply(VIP_MAC, MAC_A, ip_from_string("9.9.9.9"), IP_A)
        client.deliver(other)
        client.receive()
        assert client.resolved_mac is None

    def test_canonical_tracks_resolution(self):
        a, b = self.make(), self.make()
        assert a.canonical() == b.canonical()
        a.deliver(arp_reply(VIP_MAC, MAC_A, VIP, IP_A))
        a.receive()
        assert a.canonical() != b.canonical()

    def test_end_to_end_with_loadbalancer(self):
        """ARP resolution against the LB's proxy ARP, through the model."""
        from repro import nice, scenarios
        from repro.config import NiceConfig
        from repro.properties import NoForgottenPackets

        base = scenarios.loadbalancer_scenario(
            bug_iv=False, bug_v=False, bug_vi=False, bug_vii=False,
            symbolic=False)

        def hosts_factory():
            hosts = base.hosts_factory()
            data = [tcp_packet(MAC_A, MacAddress.broadcast(), IP_A, VIP,
                               1000, 80, flags=TCP_SYN)]
            hosts[0] = ArpClient("C", MAC_A, IP_A, target_ip=VIP,
                                 script=data)
            return hosts

        scenario = nice.Scenario(
            base.topo, base.app_factory, hosts_factory,
            [NoForgottenPackets()], base.config, name="lb-arp")
        result = nice.run(scenario)
        assert not result.found_violation
        # At least one quiescent execution exists where the client resolved
        # the VIP and its SYN reached a replica.
        assert result.quiescent_states > 0
