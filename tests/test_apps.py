"""Unit tests for the three applications (handler-level, no model checker)."""

import pytest

from repro.apps.energy_te import (
    EnergyTrafficEngineering,
    TABLE_ALWAYS_ON,
    TABLE_ON_DEMAND,
    expected_path,
)
from repro.apps.loadbalancer import LoadBalancer, ReplicaSpec, VipServer
from repro.apps.pyswitch import PySwitch
from repro.controller.api import RecordingControllerAPI
from repro.openflow.packet import (
    MacAddress,
    TCP_SYN,
    arp_request,
    ip_from_string,
    l2_ping,
    tcp_packet,
)

MAC_A = MacAddress.from_string("00:00:00:00:00:01")
MAC_B = MacAddress.from_string("00:00:00:00:00:02")
VIP = ip_from_string("10.0.0.100")
VIP_MAC = MacAddress.from_string("00:00:00:00:01:00")
IP_A = ip_from_string("10.0.0.1")


class TestPySwitchHandlers:
    def make(self):
        app = PySwitch()
        api = RecordingControllerAPI()
        app.switch_join(api, "s1", {})
        return app, api

    def test_learning(self):
        app, api = self.make()
        app.packet_in(api, "s1", 3, l2_ping(MAC_A, MAC_B), 1, "no_match")
        assert app.ctrl_state["s1"][MAC_A] == 3
        assert api.calls[-1] == ("flood_packet", "s1")

    def test_known_destination_installs_rule(self):
        app, api = self.make()
        app.ctrl_state["s1"][MAC_B] = 2
        app.packet_in(api, "s1", 1, l2_ping(MAC_A, MAC_B), 1, "no_match")
        assert ("install_rule", "s1") in api.calls
        assert ("send_packet_out", "s1") in api.calls

    def test_broadcast_source_not_learned(self):
        app, api = self.make()
        pkt = l2_ping(MacAddress.broadcast(), MAC_B)
        app.packet_in(api, "s1", 1, pkt, 1, "no_match")
        assert MacAddress.broadcast() not in app.ctrl_state["s1"]

    def test_hairpin_floods(self):
        # Destination known on the same port: Figure 3 line 10 guards
        # outport != inport, so the packet floods instead.
        app, api = self.make()
        app.ctrl_state["s1"][MAC_B] = 1
        app.packet_in(api, "s1", 1, l2_ping(MAC_A, MAC_B), 1, "no_match")
        assert api.calls[-1] == ("flood_packet", "s1")

    def test_switch_leave_clears_table(self):
        app, api = self.make()
        app.switch_leave(api, "s1")
        assert "s1" not in app.ctrl_state


def make_lb(**flags):
    replicas = [
        ReplicaSpec("R1", MacAddress.from_int(0x11), 11, 2),
        ReplicaSpec("R2", MacAddress.from_int(0x12), 12, 3),
    ]
    return LoadBalancer(switch="s1", client_port=1, client_ip=IP_A,
                        vip=VIP, vip_mac=VIP_MAC, replicas=replicas, **flags)


class TestLoadBalancerHandlers:
    def test_boot_installs_policy_and_return_rules(self):
        app, api = make_lb(), RecordingControllerAPI()
        app.boot(api, None)
        assert api.calls.count(("install_rule", "s1")) == 2

    def test_reconfigure_buggy_order(self):
        app, api = make_lb(bug_v=True), RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        assert [c[0] for c in api.calls] == ["delete_rules", "install_rule"]
        assert app.mode == "transition"

    def test_reconfigure_fixed_order(self):
        app, api = make_lb(bug_v=False), RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        assert [c[0] for c in api.calls] == ["install_rule", "delete_rules"]

    def test_bug_iv_forgets_packet_out(self):
        app, api = make_lb(bug_iv=True), RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        api.calls.clear()
        syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80, flags=TCP_SYN)
        app.packet_in(api, "s1", 1, syn, 7, "action")
        assert ("install_rule", "s1") in api.calls
        assert ("send_packet_out", "s1") not in api.calls

    def test_fixed_iv_releases_packet(self):
        app, api = make_lb(bug_iv=False), RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        api.calls.clear()
        syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80, flags=TCP_SYN)
        app.packet_in(api, "s1", 1, syn, 7, "action")
        assert ("send_packet_out", "s1") in api.calls

    def test_bug_v_ignores_no_match_during_transition(self):
        app, api = make_lb(bug_v=True), RecordingControllerAPI()
        app.handle_event(api, "reconfigure")
        api.calls.clear()
        data = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80)
        app.packet_in(api, "s1", 1, data, 9, "no_match")
        assert api.calls == []   # the buffered packet is forgotten

    def test_bug_vi_forgets_arp_buffer(self):
        app, api = make_lb(bug_vi=True), RecordingControllerAPI()
        req = arp_request(MAC_A, IP_A, VIP)
        app.packet_in(api, "s1", 1, req, 5, "no_match")
        kinds = [c[0] for c in api.calls]
        assert "send_packet_out" in kinds      # the ARP reply
        assert "drop_buffer" not in kinds      # ...but the buffer leaks

    def test_fixed_vi_discards_buffer(self):
        app, api = make_lb(bug_vi=False), RecordingControllerAPI()
        req = arp_request(MAC_A, IP_A, VIP)
        app.packet_in(api, "s1", 1, req, 5, "no_match")
        assert ("drop_buffer", "s1") in api.calls

    def test_unclaimed_traffic_is_consumed(self):
        app, api = make_lb(), RecordingControllerAPI()
        other = tcp_packet(MAC_A, MAC_B, IP_A, 9999, 1000, 80)
        app.packet_in(api, "s1", 1, other, 2, "no_match")
        assert api.calls == [("drop_buffer", "s1")]

    def test_is_same_flow_semantics(self):
        syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80, flags=TCP_SYN)
        data = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80)
        dup = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80, flags=TCP_SYN)
        assert LoadBalancer.is_same_flow(data, syn)     # data continues
        assert not LoadBalancer.is_same_flow(dup, syn)  # SYN probe = new
        assert LoadBalancer.is_same_flow(syn, syn)      # identity

    def test_vip_server_replies_as_vip(self):
        server = VipServer("R1", MacAddress.from_int(0x11), 11, VIP, VIP_MAC)
        syn = tcp_packet(MAC_A, VIP_MAC, IP_A, VIP, 1000, 80, flags=TCP_SYN)
        server.deliver(syn)
        server.receive()
        reply = server.pending[0]
        assert reply.ip_src == VIP
        assert reply.eth_src == VIP_MAC


def make_te(**flags):
    always = {7: [("s1", 2), ("s2", 3)]}
    demand = {7: [("s1", 3), ("s3", 2), ("s2", 3)]}
    return EnergyTrafficEngineering(
        ingress="s1", monitor_port=2, always_on=always, on_demand=demand,
        **flags)


class TestEnergyTEHandlers:
    def stats(self, tx_bytes):
        return {2: {"rx_packets": 0, "tx_packets": 0, "rx_bytes": 0,
                    "tx_bytes": tx_bytes}}

    def test_state_flips_on_threshold(self):
        app, api = make_te(), RecordingControllerAPI()
        app.port_stats_in(api, "s1", self.stats(0))
        assert app.energy_state == "low"
        app.port_stats_in(api, "s1", self.stats(10000))
        assert app.energy_state == "high"

    def test_bug_x_caches_table(self):
        app, api = make_te(bug_x=True), RecordingControllerAPI()
        app.port_stats_in(api, "s1", self.stats(10000))
        assert app.active_table == TABLE_ON_DEMAND
        assert app._choose_table() == TABLE_ON_DEMAND
        assert app._choose_table() == TABLE_ON_DEMAND  # never alternates

    def test_fixed_x_alternates_under_high_load(self):
        app, api = make_te(bug_x=False), RecordingControllerAPI()
        app.port_stats_in(api, "s1", self.stats(10000))
        picks = []
        for _ in range(4):
            picks.append(app._choose_table())
            app.flows_routed += 1
        assert picks == [TABLE_ALWAYS_ON, TABLE_ON_DEMAND,
                         TABLE_ALWAYS_ON, TABLE_ON_DEMAND]

    def test_ingress_installs_whole_path(self):
        app, api = make_te(bug_viii=False), RecordingControllerAPI()
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.packet_in(api, "s1", 1, pkt, 1, "no_match")
        installs = [c for c in api.calls if c[0] == "install_rule"]
        assert [c[1] for c in installs] == ["s1", "s2"]  # always-on path
        assert ("send_packet_out", "s1") in api.calls

    def test_bug_ix_ignores_intermediate_packet_in(self):
        app, api = make_te(bug_ix=True), RecordingControllerAPI()
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.packet_in(api, "s3", 1, pkt, 1, "no_match")
        assert api.calls == []

    def test_fixed_ix_forwards_along_known_path(self):
        app, api = make_te(bug_ix=False, bug_x=False), RecordingControllerAPI()
        app.energy_state = "high"
        app.flows_routed = 1   # parity -> on-demand, whose path has s3
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.packet_in(api, "s1", 1, pkt, 1, "no_match")
        api.calls.clear()
        app.packet_in(api, "s3", 1, pkt, 2, "no_match")
        assert ("send_packet_out", "s3") in api.calls

    def test_bug_xi_drops_abandoned_path_packets(self):
        app, api = make_te(bug_ix=False, bug_x=False,
                           bug_xi=True), RecordingControllerAPI()
        app.energy_state = "low"    # load reduced; s3 not on always-on
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.packet_in(api, "s3", 1, pkt, 2, "no_match")
        assert api.calls == []

    def test_fixed_xi_falls_back_to_flow_table(self):
        app, api = make_te(bug_ix=False, bug_x=False,
                           bug_xi=False), RecordingControllerAPI()
        app.energy_state = "high"
        app.flows_routed = 1
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.packet_in(api, "s1", 1, pkt, 1, "no_match")  # routed on-demand
        app.energy_state = "low"                          # load reduces
        api.calls.clear()
        app.packet_in(api, "s3", 1, pkt, 2, "no_match")
        assert ("send_packet_out", "s3") in api.calls

    def test_expected_path_specification(self):
        app = make_te(bug_x=False)
        pkt = tcp_packet(MAC_A, MAC_B, IP_A, 7, 1000, 80)
        app.energy_state = "low"
        app.flows_routed = 1
        assert expected_path(app, pkt) == [{"s1", "s2"}]
        app.energy_state = "high"
        assert expected_path(app, pkt) == [{"s1", "s2"}]      # flow 0: even
        app.flows_routed = 2
        assert expected_path(app, pkt) == [{"s1", "s3", "s2"}]

    def test_non_ip_traffic_consumed(self):
        app, api = make_te(), RecordingControllerAPI()
        app.packet_in(api, "s1", 1, l2_ping(MAC_A, MAC_B), 1, "no_match")
        # l2_ping has eth_type IP but unknown dst -> also consumed
        assert api.calls == [("drop_buffer", "s1")]

    def test_poll_budget(self):
        app, api = make_te(polls=1), RecordingControllerAPI()
        app.handle_event(api, "poll_stats")
        assert api.calls == [("query_port_stats", "s1")]
        app.port_stats_in(api, "s1", self.stats(0))
        # polls exhausted: the handler does not re-arm the query
        assert api.calls == [("query_port_stats", "s1")]
