"""Section 7, "Comparison to other model checkers".

Paper's findings, reproduced in shape with the offline stand-ins from
:mod:`repro.baselines` (see DESIGN.md substitutions):

* SPIN explores an abstract model efficiently, but stores full states and
  runs out of memory (at 7 pings on their testbed).  Our SPIN-like checker
  stores the complete canonical state vector per state; the measured axis is
  the stored-bytes blow-up versus NICE's hashes.
* JPF models concurrency at thread/statement granularity and explores far
  more interleavings ("slower by a factor of 290 with 3 pings" as-is).  Our
  JPF-like checker makes every controller API call a scheduling point.
"""

from __future__ import annotations

import pytest

from repro import nice, scenarios
from repro.baselines import JpfLikeSearcher, JpfSystem, SpinLikeSearcher

from .conftest import print_table


def nice_mc(pings: int):
    return nice.run(scenarios.ping_experiment(pings=pings))


def spin_like(pings: int, memory_limit=None):
    scenario = scenarios.ping_experiment(pings=pings)
    return SpinLikeSearcher(scenario.system_factory, scenario.config,
                            memory_limit=memory_limit).run()


def jpf_like(pings: int):
    scenario = scenarios.ping_experiment(pings=pings)

    def factory():
        system = JpfSystem(scenario.topo, scenario.app_factory(),
                           scenario.hosts_factory(), scenario.config)
        system.boot()
        return system

    return JpfLikeSearcher(factory, scenario.config).run()


@pytest.fixture(scope="module")
def comparison(ping_sizes):
    sizes = [p for p in ping_sizes if p <= 3]
    return {
        pings: (nice_mc(pings), spin_like(pings), jpf_like(pings))
        for pings in sizes
    }


def test_comparison_report(comparison):
    rows = []
    for pings, (mc, spin, jpf) in sorted(comparison.items()):
        rows.append([
            pings,
            f"{mc.transitions_executed} tr / {mc.wall_time:.1f}s",
            (f"{spin.transitions_executed} tr / {spin.wall_time:.1f}s / "
             f"{spin.stored_bytes // 1024} KiB stored"),
            f"{jpf.transitions_executed} tr / {jpf.wall_time:.1f}s",
        ])
    print_table(
        "Section 7: NICE-MC vs SPIN-like vs JPF-like",
        ["pings", "NICE-MC", "SPIN-like (full states)",
         "JPF-like (stmt interleaving)"],
        rows,
    )


def test_spin_like_memory_blowup(comparison):
    """Full-state storage costs orders of magnitude more than hashes."""
    for pings, (_mc, spin, _jpf) in comparison.items():
        assert spin.stored_bytes > 10 * spin.hash_bytes, (
            pings, spin.stored_bytes, spin.hash_bytes)


def test_spin_like_oom_mode():
    """With a bounded state store, SPIN-like aborts out-of-memory —
    the paper's 7-ping failure mode."""
    result = spin_like(2, memory_limit=50_000)
    assert result.out_of_memory


def test_jpf_like_explores_more_interleavings(comparison):
    """Statement-granularity scheduling explodes the transition count, and
    the gap widens with problem size (the paper's 290x at 3 pings)."""
    gaps = {}
    for pings, (mc, _spin, jpf) in comparison.items():
        assert jpf.transitions_executed > mc.transitions_executed
        gaps[pings] = jpf.transitions_executed / mc.transitions_executed
    if len(gaps) >= 2:
        sizes = sorted(gaps)
        assert gaps[sizes[-1]] > gaps[sizes[0]], gaps


def test_jpf_like_is_slower(comparison):
    largest = max(comparison)
    mc, _spin, jpf = comparison[largest]
    assert jpf.wall_time > mc.wall_time


@pytest.mark.benchmark(group="other-checkers")
def test_bench_nice_two_pings(benchmark):
    result = benchmark.pedantic(lambda: nice_mc(2), rounds=1, iterations=1)
    assert result.terminated == "exhausted"


@pytest.mark.benchmark(group="other-checkers")
def test_bench_spin_like_two_pings(benchmark):
    result = benchmark.pedantic(lambda: spin_like(2), rounds=1, iterations=1)
    assert result.unique_states > 0


@pytest.mark.benchmark(group="other-checkers")
def test_bench_jpf_like_two_pings(benchmark):
    result = benchmark.pedantic(lambda: jpf_like(2), rounds=1, iterations=1)
    assert result.unique_states > 0
