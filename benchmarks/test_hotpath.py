"""The per-state hot path: copy-on-write checkpointing + digest hashing.

Measures the two per-state costs Section 6 names — state hashing and
checkpointing — across three engine configurations on the pyswitch
(MAC-learning) workloads:

* **cow+digest** — the new defaults: copy-on-write clones and per-component
  digest hashing (DESIGN.md, "Per-state hot path");
* **pre-cow** — the previous defaults (PR 2): eager component-wise clones
  and full md5-over-repr hashing (``cow_clone=False, hash_mode="full"``);
* **seed** — deepcopy checkpointing with no memoization at all.

Per engine it records end-to-end search wall time, a clone-cost
microbenchmark, bytes actually hashed, and the digest/CoW counters, and
writes everything to ``BENCH_hotpath.json`` at the repository root — the
first entry of the perf trajectory.  The headline assertion: cow+digest
beats the pre-cow baseline by >= 1.5x end-to-end on pyswitch-direct-path
(override the floor with ``NICE_HOTPATH_SPEEDUP_FLOOR``).
"""

from __future__ import annotations

import json
import os
import pathlib
import time

import pytest

from repro import nice, scenarios
from repro.scenarios import with_config

from .conftest import print_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_hotpath.json"

#: Engine configurations under measurement.
ENGINES = {
    "cow+digest": {},
    "pre-cow": dict(cow_clone=False, hash_mode="full"),
    "seed": dict(cow_clone=False, fast_clone=False, hash_memoization=False,
                 hash_mode="full"),
}

#: Workloads: the BUG-II scenario (symbolic client) and the Table 1
#: MAC-learning ping workload (scripted, symbolic execution off).
def _workloads():
    return {
        "pyswitch-direct-path": lambda: scenarios.pyswitch_direct_path(),
        "ping-2": lambda: scenarios.ping_experiment(pings=2),
    }


REPEATS = 5


def _one_run(scenario, overrides):
    return nice.run(with_config(scenario, stop_at_first_violation=False,
                                **overrides))


def _clone_cost(scenario, overrides, clones: int = 2000) -> float:
    """Seconds per checkpoint clone of the booted initial state."""
    system = with_config(scenario, **overrides).system_factory()
    start = time.perf_counter()
    for _ in range(clones):
        system.clone()
    return (time.perf_counter() - start) / clones


@pytest.fixture(scope="module")
def hotpath_results():
    results: dict[str, dict] = {}
    for workload, build in _workloads().items():
        # Interleave the engines round-robin across the repeats so ambient
        # machine load inflates every engine's samples alike and best-of-N
        # ratios stay honest on noisy (CI) runners.
        best: dict[str, tuple[float, object]] = {
            engine: (float("inf"), None) for engine in ENGINES
        }
        for _ in range(REPEATS):
            for engine, overrides in ENGINES.items():
                result = _one_run(build(), overrides)
                if result.wall_time < best[engine][0]:
                    best[engine] = (result.wall_time, result)
        per_engine = {}
        for engine, overrides in ENGINES.items():
            wall, stats = best[engine]
            per_engine[engine] = {
                "wall_time": wall,
                "clone_seconds": _clone_cost(build(), overrides),
                "transitions": stats.transitions_executed,
                "unique_states": stats.unique_states,
                "bytes_hashed": stats.bytes_hashed,
                "hash_hits": stats.hash_hits,
                "hash_misses": stats.hash_misses,
                "cow_copied": stats.cow_copied,
            }
        results[workload] = per_engine
    payload = {
        "benchmark": "hotpath",
        "repeats": REPEATS,
        "engines": {name: dict(overrides) for name, overrides in
                    ENGINES.items()},
        "workloads": results,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return results


def test_hotpath_report(hotpath_results):
    for workload, per_engine in hotpath_results.items():
        baseline = per_engine["pre-cow"]["wall_time"]
        rows = []
        for engine, r in per_engine.items():
            rows.append([
                engine,
                f"{r['transitions']} / {r['unique_states']}",
                f"{r['wall_time']:.3f}s",
                f"{baseline / r['wall_time']:.2f}x",
                f"{r['clone_seconds'] * 1e6:.0f}us",
                f"{r['bytes_hashed'] / 1e6:.2f}MB",
                f"{r['hash_hits']}/{r['hash_misses']}",
            ])
        print_table(
            f"Per-state hot path on {workload}",
            ["engine", "transitions / unique", "time", "vs pre-cow",
             "clone", "hashed", "digest hit/miss"],
            rows,
        )
    print(f"\nwrote {OUTPUT}")


def test_state_space_identical_across_engines(hotpath_results):
    for workload, per_engine in hotpath_results.items():
        reference = per_engine["seed"]
        for engine, r in per_engine.items():
            assert r["transitions"] == reference["transitions"], (
                f"{workload}: {engine} executed a different transition count")
            assert r["unique_states"] == reference["unique_states"], (
                f"{workload}: {engine} explored a different state space")


def test_cow_digest_beats_pre_cow_baseline(hotpath_results):
    """The acceptance gate: >= 1.5x end-to-end on pyswitch-direct-path."""
    floor = float(os.environ.get("NICE_HOTPATH_SPEEDUP_FLOOR", "1.5"))
    per_engine = hotpath_results["pyswitch-direct-path"]
    speedup = (per_engine["pre-cow"]["wall_time"]
               / per_engine["cow+digest"]["wall_time"])
    assert speedup >= floor, (
        f"cow+digest is only {speedup:.2f}x over the pre-CoW baseline"
        f" on pyswitch-direct-path (floor {floor:.1f}x)")


def test_digest_mode_hashes_fewer_bytes(hotpath_results):
    for workload, per_engine in hotpath_results.items():
        new = per_engine["cow+digest"]
        baseline = per_engine["pre-cow"]
        # Digest mode re-renders only dirtied components; how much that
        # saves depends on how much of the state one transition touches
        # (~1.7x on the 1-switch direct-path scenario, ~5x on ping).
        assert new["bytes_hashed"] < 0.7 * baseline["bytes_hashed"], (
            f"{workload}: digest hashing should render fewer bytes")
        assert new["hash_hits"] > new["hash_misses"], (
            f"{workload}: the digest cache should mostly hit")


def test_cow_clone_is_cheaper(hotpath_results):
    for workload, per_engine in hotpath_results.items():
        cow = per_engine["cow+digest"]["clone_seconds"]
        eager = per_engine["pre-cow"]["clone_seconds"]
        deep = per_engine["seed"]["clone_seconds"]
        assert cow < eager < deep, (
            f"{workload}: expected clone cost cow < eager < deepcopy,"
            f" got {cow:.2e} / {eager:.2e} / {deep:.2e}")


def test_bench_file_written(hotpath_results):
    data = json.loads(OUTPUT.read_text())
    assert data["benchmark"] == "hotpath"
    assert set(data["workloads"]) == set(_workloads())
