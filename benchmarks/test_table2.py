"""Table 2: transitions / time to the first violation for BUG-I..XI under
the four search strategies.

Paper's found/missed pattern (the reproduction target):

========  ===========  =========  ========  ========
bug       PKT-SEQ      NO-DELAY   FLOW-IR   UNUSUAL
========  ===========  =========  ========  ========
I..IV     found        found      found     found
V         found        MISSED     found     found
VI        found        found      found     found
VII       found        found      MISSED    found
VIII..IX  found        found      found     found
X         found        MISSED     found     found
XI        found        MISSED     found     found
========  ===========  =========  ========  ========

Absolute transition counts differ from the paper's testbed; the matrix of
found/missed cells and the relative ordering (e.g. UNUSUAL reaching BUG-VII
far sooner than the default search) are the reproduced shape.
"""

from __future__ import annotations

import pytest

from repro import nice, scenarios
from repro.apps.energy_te import expected_path
from repro.config import NiceConfig
from repro.properties import (
    FlowAffinity,
    NoForgottenPackets,
    UseCorrectRoutingTable,
)

from .conftest import print_table

STRATEGIES = ("PKT-SEQ", "NO-DELAY", "FLOW-IR", "UNUSUAL")

#: bug -> expected found (True) / missed (False) per strategy, per Table 2.
EXPECTED = {
    "I":    {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "II":   {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "III":  {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "IV":   {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "V":    {"PKT-SEQ": True, "NO-DELAY": False, "FLOW-IR": True, "UNUSUAL": True},
    "VI":   {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "VII":  {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": False, "UNUSUAL": True},
    "VIII": {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "IX":   {"PKT-SEQ": True, "NO-DELAY": True, "FLOW-IR": True, "UNUSUAL": True},
    "X":    {"PKT-SEQ": True, "NO-DELAY": False, "FLOW-IR": True, "UNUSUAL": True},
    "XI":   {"PKT-SEQ": True, "NO-DELAY": False, "FLOW-IR": True, "UNUSUAL": True},
}

PAPER_PKT_SEQ = {
    "I": "23 / 0.02s", "II": "18 / 0.01s", "III": "11 / 0.01s",
    "IV": "386 / 3.41s", "V": "22 / 0.05s", "VI": "48 / 0.05s",
    "VII": "297k / 1h", "VIII": "23 / 0.03s", "IX": "21 / 0.03s",
    "X": "2893 / 35.2s", "XI": "98 / 0.67s",
}


def bug_scenario(bug: str, strategy: str):
    config = NiceConfig(strategy=strategy)
    if bug == "I":
        return scenarios.pyswitch_mobile(config=config)
    if bug == "II":
        return scenarios.pyswitch_direct_path(config=config)
    if bug == "III":
        return scenarios.pyswitch_loop(config=config)
    if bug in ("IV", "V", "VI", "VII"):
        flags = {f"bug_{n}": False for n in ("iv", "v", "vi", "vii")}
        flags[f"bug_{bug.lower()}"] = True
        properties = ([FlowAffinity(["R1", "R2"])] if bug == "VII"
                      else [NoForgottenPackets()])
        return scenarios.loadbalancer_scenario(
            properties=properties, config=config, **flags)
    flags = {f"bug_{n}": False for n in ("viii", "ix", "x", "xi")}
    flags[f"bug_{bug.lower()}"] = True
    properties = ([UseCorrectRoutingTable(expected_path)] if bug == "X"
                  else [NoForgottenPackets()])
    polls = 2 if bug == "XI" else 1
    return scenarios.energy_te_scenario(
        properties=properties, polls=polls, config=config, **flags)


@pytest.fixture(scope="module")
def table2_results():
    results = {}
    for bug in EXPECTED:
        for strategy in STRATEGIES:
            results[(bug, strategy)] = nice.run(bug_scenario(bug, strategy))
    return results


def test_table2_report(table2_results):
    rows = []
    for bug in EXPECTED:
        cells = []
        for strategy in STRATEGIES:
            result = table2_results[(bug, strategy)]
            if result.found_violation:
                cells.append(
                    f"{result.transitions_executed} / {result.wall_time:.2f}s")
            else:
                cells.append("Missed")
        rows.append([bug] + cells + [PAPER_PKT_SEQ[bug]])
    print_table(
        "Table 2: transitions / time to first violation",
        ["bug"] + list(STRATEGIES) + ["paper (PKT-SEQ)"],
        rows,
    )


@pytest.mark.parametrize("bug", list(EXPECTED))
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_found_missed_matrix(table2_results, bug, strategy):
    result = table2_results[(bug, strategy)]
    assert result.found_violation == EXPECTED[bug][strategy], (
        f"BUG-{bug} under {strategy}: expected "
        f"{'found' if EXPECTED[bug][strategy] else 'missed'}, got "
        f"{'found' if result.found_violation else 'missed'}"
    )


def test_unusual_reaches_bug_vii_sooner(table2_results):
    # Paper: PKT-SEQ needs 297k transitions / 1 h; UNUSUAL 26.5k / 5 min.
    default = table2_results[("VII", "PKT-SEQ")]
    unusual = table2_results[("VII", "UNUSUAL")]
    assert unusual.transitions_executed <= default.transitions_executed * 2


def test_no_delay_misses_are_exhaustive_searches(table2_results):
    # A miss must come from exhausting the reduced space, not from a bound.
    for bug in ("V", "X", "XI"):
        result = table2_results[(bug, "NO-DELAY")]
        assert result.terminated == "exhausted"


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("bug", ["I", "II", "III", "IV", "VIII"])
def test_bench_time_to_violation(benchmark, bug):
    result = benchmark.pedantic(
        lambda: nice.run(bug_scenario(bug, "PKT-SEQ")),
        rounds=1, iterations=1)
    assert result.found_violation
