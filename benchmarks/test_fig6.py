"""Figure 6: relative state-space reduction of the heuristic strategies.

The paper plots, for 2-5 pings, the *relative reduction* in explored
transitions and CPU time of NO-DELAY and FLOW-IR versus the full NICE-MC
search ("about factor of four for three pings"; UNUSUAL omitted there as
similar).  Reproduction targets:

* both heuristics explore strictly fewer transitions than NICE-MC;
* the reduction is substantial (>2x) from 3 pings on;
* combined with the canonical switch model the overall reduction vs
  NO-SWITCH-REDUCTION reaches an order of magnitude ("28-fold for three
  pings" in the paper).
"""

from __future__ import annotations

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig

from .conftest import print_table

STRATEGIES = ("PKT-SEQ", "NO-DELAY", "FLOW-IR", "UNUSUAL")


def run_search(pings: int, strategy: str, canonical: bool = True):
    config = NiceConfig(strategy=strategy, canonical_flow_tables=canonical)
    scenario = scenarios.ping_experiment(pings=pings, config=config)
    return nice.run(scenario)


@pytest.fixture(scope="module")
def fig6_results(ping_sizes):
    results = {}
    for pings in ping_sizes:
        results[pings] = {
            strategy: run_search(pings, strategy) for strategy in STRATEGIES
        }
    return results


def test_fig6_report(fig6_results):
    rows = []
    for pings, by_strategy in sorted(fig6_results.items()):
        base = by_strategy["PKT-SEQ"]
        for strategy in STRATEGIES[1:]:
            result = by_strategy[strategy]
            rows.append([
                pings,
                strategy,
                result.transitions_executed,
                f"{1 - result.transitions_executed / base.transitions_executed:.2f}",
                f"{1 - result.wall_time / max(base.wall_time, 1e-9):.2f}",
            ])
        rows.append([pings, "PKT-SEQ (full)", base.transitions_executed,
                     "0.00", "0.00"])
    print_table(
        "Figure 6: relative reduction vs full NICE-MC search",
        ["pings", "strategy", "transitions", "transition reduction",
         "CPU-time reduction"],
        rows,
    )


def test_heuristics_reduce_transitions(fig6_results, ping_sizes):
    largest = max(ping_sizes)
    base = fig6_results[largest]["PKT-SEQ"].transitions_executed
    for strategy in ("NO-DELAY", "FLOW-IR"):
        reduced = fig6_results[largest][strategy].transitions_executed
        assert reduced < base, (strategy, reduced, base)


def test_reduction_is_substantial_at_three_pings(fig6_results, ping_sizes):
    if 3 not in ping_sizes:
        pytest.skip("3-ping workload disabled")
    base = fig6_results[3]["PKT-SEQ"].transitions_executed
    for strategy in ("NO-DELAY", "FLOW-IR"):
        reduced = fig6_results[3][strategy].transitions_executed
        assert base / reduced > 2, (strategy, base / reduced)


def test_combined_reduction_vs_no_switch_reduction(fig6_results, ping_sizes):
    """Switch model + heuristics: the paper's 28x combined claim (shape)."""
    largest = max(p for p in ping_sizes if p >= 3) if any(
        p >= 3 for p in ping_sizes) else max(ping_sizes)
    nosr = run_search(largest, "PKT-SEQ", canonical=False)
    best = min(
        fig6_results[largest][s].transitions_executed
        for s in ("NO-DELAY", "FLOW-IR")
    )
    combined = nosr.transitions_executed / best
    print(f"\ncombined reduction at {largest} pings: "
          f"{nosr.transitions_executed} / {best} = {combined:.1f}x")
    assert combined > 4


def test_unusual_reduces_on_multi_switch_topology():
    """UNUSUAL prunes intermediate orderings among >= 3 pending control
    channels, so its reduction shows on the three-switch TE triangle
    (Figure 1's own example needs rule installs at several switches); the
    two-switch ping workload never has enough concurrent installations.
    """
    import dataclasses

    from repro import scenarios as sc
    from repro.properties import NoForgottenPackets

    results = {}
    for strategy in ("PKT-SEQ", "UNUSUAL"):
        scenario = sc.energy_te_scenario(
            bug_viii=False, bug_ix=False, bug_x=False, bug_xi=False,
            properties=[NoForgottenPackets()], polls=1,
            config=NiceConfig(strategy=strategy))
        results[strategy] = nice.run(scenario)
    base = results["PKT-SEQ"].transitions_executed
    unusual = results["UNUSUAL"].transitions_executed
    print(f"\nUNUSUAL on TE triangle: {unusual} vs {base} transitions "
          f"({1 - unusual / base:.2f} reduction)")
    assert unusual < base


@pytest.mark.benchmark(group="fig6")
@pytest.mark.parametrize("strategy", STRATEGIES)
def test_bench_strategies_two_pings(benchmark, strategy):
    result = benchmark.pedantic(
        lambda: run_search(2, strategy), rounds=1, iterations=1)
    assert result.terminated == "exhausted"
