"""Shared benchmark configuration.

Set ``NICE_BENCH_LARGE=1`` to run the larger problem sizes (pings=4 for the
Table 1 / Figure 6 workloads).  The defaults keep the full benchmark suite
within a few minutes on a laptop while still exhibiting every trend the
paper reports.
"""

import os
import pathlib

import pytest

_BENCH_DIR = pathlib.Path(__file__).parent


def pytest_collection_modifyitems(items):
    """Every test under benchmarks/ is a measurement: tag it ``benchmark``
    (and ``slow``) so the CI fast tier can deselect the whole directory."""
    for item in items:
        try:
            in_benchmarks = item.path.is_relative_to(_BENCH_DIR)
        except AttributeError:  # items without a path
            in_benchmarks = False
        if in_benchmarks:
            item.add_marker(pytest.mark.benchmark)
            item.add_marker(pytest.mark.slow)


def large_runs_enabled() -> bool:
    return os.environ.get("NICE_BENCH_LARGE", "") == "1"


@pytest.fixture(scope="session")
def ping_sizes():
    """Ping counts for exhaustive-search benchmarks."""
    return (2, 3, 4) if large_runs_enabled() else (2, 3)


def print_table(title: str, header: list[str], rows: list[list]) -> None:
    """Render a result table to stdout (captured by pytest -s / tee)."""
    widths = [len(h) for h in header]
    text_rows = [[str(cell) for cell in row] for row in rows]
    for row in text_rows:
        widths = [max(w, len(cell)) for w, cell in zip(widths, row)]
    line = " | ".join(h.ljust(w) for h, w in zip(header, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in text_rows:
        print(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
