"""Table 1: NICE-MC vs NO-SWITCH-REDUCTION on the layer-2 ping workload.

Paper's numbers (transitions / unique states / CPU time, ρ over transitions):

=====  ==========================  ================================  =====
pings  NICE-MC                     NO-SWITCH-REDUCTION               ρ
=====  ==========================  ================================  =====
2      470 / 268 / 0.94 s          760 / 474 / 1.93 s                0.38
3      12,801 / 5,257 / 47 s       43,992 / 20,469 / 209 s           0.71
4      391,091 / 131,515 / 36 m    2,589,478 / 979,105 / 318 m       0.84
5      14,052,853 / 4.1 M / 30 h   (did not finish in four days)     —
=====  ==========================  ================================  =====

Reproduction targets (the *shape*):

* transitions and unique states grow roughly exponentially with pings;
* NICE-MC explores no more transitions/states than NO-SWITCH-REDUCTION;
* ρ > 0 and increases with the number of pings.
"""

from __future__ import annotations

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig

from .conftest import print_table

PAPER_ROWS = {
    2: (470, 268, 760, 474, 0.38),
    3: (12801, 5257, 43992, 20469, 0.71),
    4: (391091, 131515, 2589478, 979105, 0.84),
}


def run_search(pings: int, canonical: bool):
    config = NiceConfig(canonical_flow_tables=canonical)
    scenario = scenarios.ping_experiment(pings=pings, config=config)
    return nice.run(scenario)


@pytest.fixture(scope="module")
def table1_results(ping_sizes):
    results = {}
    for pings in ping_sizes:
        results[pings] = (run_search(pings, True), run_search(pings, False))
    return results


def test_table1_report(table1_results):
    rows = []
    for pings, (mc, nosr) in sorted(table1_results.items()):
        rho = ((nosr.transitions_executed - mc.transitions_executed)
               / nosr.transitions_executed)
        paper = PAPER_ROWS.get(pings)
        rows.append([
            pings,
            f"{mc.transitions_executed} / {mc.unique_states}",
            f"{mc.wall_time:.1f}s",
            f"{nosr.transitions_executed} / {nosr.unique_states}",
            f"{nosr.wall_time:.1f}s",
            f"{rho:.2f}",
            f"{paper[4]:.2f}" if paper else "-",
        ])
    print_table(
        "Table 1: NICE-MC vs NO-SWITCH-REDUCTION",
        ["pings", "NICE-MC (tr/uniq)", "time",
         "NOSR (tr/uniq)", "time", "rho", "paper rho"],
        rows,
    )


def test_growth_is_superlinear(table1_results, ping_sizes):
    if len(ping_sizes) < 2:
        pytest.skip("need at least two sizes")
    sizes = sorted(table1_results)
    ratios = []
    for small, big in zip(sizes, sizes[1:]):
        ratios.append(
            table1_results[big][0].transitions_executed
            / table1_results[small][0].transitions_executed
        )
    # The paper sees ~27x per added ping; anything clearly super-linear
    # demonstrates the explosion.
    assert all(r > 4 for r in ratios), ratios


def test_canonical_never_explores_more(table1_results):
    for mc, nosr in table1_results.values():
        assert mc.transitions_executed <= nosr.transitions_executed
        assert mc.unique_states <= nosr.unique_states


def test_rho_positive_and_growing(table1_results):
    sizes = sorted(table1_results)
    rhos = []
    for pings in sizes:
        mc, nosr = table1_results[pings]
        rhos.append((nosr.transitions_executed - mc.transitions_executed)
                    / nosr.transitions_executed)
    assert rhos[-1] > 0
    assert rhos == sorted(rhos), f"rho should grow with pings: {rhos}"


def test_no_violations_in_ping_workload(table1_results):
    # Sanity: the exhaustive searches run property-free and must terminate.
    for mc, nosr in table1_results.values():
        assert mc.terminated == "exhausted"
        assert nosr.terminated == "exhausted"


@pytest.mark.benchmark(group="table1")
def test_bench_nice_mc_two_pings(benchmark):
    result = benchmark.pedantic(
        lambda: run_search(2, True), rounds=1, iterations=1)
    assert result.transitions_executed > 0


@pytest.mark.benchmark(group="table1")
def test_bench_no_switch_reduction_two_pings(benchmark):
    result = benchmark.pedantic(
        lambda: run_search(2, False), rounds=1, iterations=1)
    assert result.transitions_executed > 0
