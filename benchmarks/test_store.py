"""Explored-set state store overhead (DESIGN.md, "State store and
restartability").

Measures what the sharded, disk-spilling store costs relative to the
in-memory baseline on the pyswitch-direct-path workload — the headline
assertion: end-to-end search wall time with ``store="sharded"`` stays
within **1.15x** of the in-memory store (override the ceiling with
``NICE_STORE_OVERHEAD_CEIL``; the record-format-v2 fast path ratcheted
this down from the original 1.3x).  A second configuration squeezes the
resident set to a tiny memory budget so the disk-spill lookup path is
actually exercised (asserted via the eviction/spill counters), and a
micro-benchmark times raw insert/lookup throughput of both stores, with
a floor on sharded insert rate (``NICE_STORE_INSERT_FLOOR``, default
1.1 M/s — 4x what the pre-v2 store managed here).  A checkpoint section
snapshots a grown store twice and asserts the second snapshot's record
bytes are O(new states), not O(all states).  A wire section runs the
revisit-heavy loadbalancer workload over two workers with the dedup
pre-filter on and off and asserts the pre-filter ships at least **2x**
fewer result-payload bytes (``NICE_WIRE_SAVINGS_FLOOR``) while
exploring the identical state space.

Everything lands in ``BENCH_store.json`` at the repository root; the
nightly ``hotpath`` CI job runs this file and uploads the artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig
from repro.mc.search import SearchStats
from repro.mc.store import (
    MemoryStore,
    ShardedStore,
    validate_checkpoint,
    write_checkpoint,
)
from repro.scenarios import with_config

from .conftest import print_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_store.json"

#: Store configurations under measurement.
CONFIGS = {
    "memory": {},
    "sharded": dict(store="sharded"),
    # A budget far below the state count forces evictions and disk
    # probes — the spill path a RAM-bound search would live in.
    "sharded-spill": dict(store="sharded", store_shards=8,
                          store_memory_budget=64),
}

REPEATS = 5
MICRO_OPS = 20_000


def _one_run(overrides):
    scenario = scenarios.pyswitch_direct_path()
    return nice.run(with_config(scenario, stop_at_first_violation=False,
                                **overrides))


def _micro(make_store, n: int) -> dict:
    """Raw insert/lookup throughput, best of REPEATS fresh stores (the
    floor assertion needs a stable number, not one noisy sample)."""
    digests = [hashlib.md5(str(i).encode()).hexdigest() for i in range(n)]
    best_insert = best_lookup = 0.0
    for _ in range(REPEATS):
        store = make_store()
        add = store.add
        start = time.perf_counter()
        for digest in digests:
            add(digest)
        best_insert = max(best_insert, n / (time.perf_counter() - start))
        start = time.perf_counter()
        for digest in digests:
            assert digest in store
        best_lookup = max(best_lookup, n / (time.perf_counter() - start))
        store.close()
    return {"inserts_per_s": best_insert, "lookups_per_s": best_lookup}


def _bloom_micro(n: int = 5_000, lookups: int = 2_000) -> dict:
    """What the per-shard Bloom bitsets buy: absent digests that share a
    48-bit index prefix with a flushed record would each cost a disk
    probe — the filter answers them from memory."""
    store = ShardedStore(shards=4)
    digests = [hashlib.md5(str(i).encode()).hexdigest() for i in range(n)]
    for digest in digests:
        store.add(digest)
    store.flush()
    start = time.perf_counter()
    for digest in digests[:lookups]:
        assert digest[:12] + "f" * 20 not in store
    elapsed = time.perf_counter() - start
    negatives = store.counters()["bloom_negatives"]
    store.close()
    return {
        "lookups": lookups,
        "bloom_hit_rate": negatives / lookups,
        "absent_lookups_per_s": lookups / elapsed,
    }


def _checkpoint_bench(base_states: int = 50_000,
                      new_states: int = 2_000) -> dict:
    """Snapshot a populated store, grow it, snapshot again with the
    first snapshot as the hard-link baseline; report both snapshots'
    written bytes.  Small Bloom bitsets keep the fixed per-changed-shard
    summary cost from drowning the record delta being measured."""
    import tempfile

    digests = [hashlib.md5(str(i).encode()).hexdigest()
               for i in range(base_states + new_states)]
    with tempfile.TemporaryDirectory(prefix="nice-bench-ckpt-") as tmp:
        root = pathlib.Path(tmp)
        store = ShardedStore(shards=8, bloom_bits=1 << 14,
                             directory=str(root / "store"))
        config = NiceConfig(checkpoint_dir=str(root / "c"))
        store.add_batch(digests[:base_states])
        first = write_checkpoint(root / "c", spec=None, config=config,
                                 stats=SearchStats(), frontier=[],
                                 rng_state=None, store=store)
        full = validate_checkpoint(first)
        store.add_batch(digests[base_states:])
        second = write_checkpoint(root / "c", spec=None, config=config,
                                  stats=SearchStats(), frontier=[],
                                  rng_state=None, store=store,
                                  previous=first)
        delta = validate_checkpoint(second)
        new_segment_bytes = sum(
            info["bytes"] for name, info in delta.file_info.items()
            if name.startswith("states-")
            and not (first / name).exists())
        store.close()
    return {
        "base_states": base_states,
        "new_states": new_states,
        "record_width": full.record_width,
        "full_bytes_written": full.bytes_written,
        "delta_bytes_written": delta.bytes_written,
        "delta_new_record_bytes": new_segment_bytes,
    }


def _wire_bench() -> dict:
    """Result-payload bytes over two fork workers on a revisit-heavy
    workload (loadbalancer at ``max_pkt_sequence=3``: about two thirds
    of all children are revisits), with the worker-side Bloom pre-filter
    on versus off.  One run per leg — the payload byte count is a
    deterministic function of what shipped, not a timing measurement,
    and the two legs must agree on the explored space exactly."""
    scenario = with_config(scenarios.loadbalancer_scenario(),
                           stop_at_first_violation=False,
                           max_pkt_sequence=3, workers=2)
    legs = {}
    for name, overrides in (("prefilter-on", {}),
                            ("prefilter-off",
                             dict(store_bloom_broadcast=False))):
        stats = nice.run(with_config(scenario, **overrides))
        legs[name] = {
            "wall_time": stats.wall_time,
            "transitions": stats.transitions_executed,
            "unique_states": stats.unique_states,
            "revisited_states": stats.revisited_states,
            "result_payload_bytes": stats.result_payload_bytes,
            "bloom_prefilter_drops": stats.bloom_prefilter_drops,
            "bloom_prefilter_fp": stats.bloom_prefilter_fp,
            "result_bytes_saved": stats.result_bytes_saved,
        }
    legs["savings_ratio"] = (
        legs["prefilter-off"]["result_payload_bytes"]
        / legs["prefilter-on"]["result_payload_bytes"])
    return legs


@pytest.fixture(scope="module")
def store_results():
    best: dict[str, tuple[float, object]] = {
        name: (float("inf"), None) for name in CONFIGS
    }
    # Interleave configurations across the repeats so ambient load hits
    # every configuration's samples alike (same policy as the hot-path
    # benchmark).
    for _ in range(REPEATS):
        for name, overrides in CONFIGS.items():
            result = _one_run(overrides)
            if result.wall_time < best[name][0]:
                best[name] = (result.wall_time, result)
    searches = {}
    for name in CONFIGS:
        wall, stats = best[name]
        searches[name] = {
            "wall_time": wall,
            "transitions": stats.transitions_executed,
            "unique_states": stats.unique_states,
            "store_hits": stats.store_hits,
            "store_spill_reads": stats.store_spill_reads,
            "store_evictions": stats.store_evictions,
            "store_bloom_negatives": stats.store_bloom_negatives,
        }
    micro = {
        "memory": _micro(MemoryStore, MICRO_OPS),
        "sharded": _micro(lambda: ShardedStore(shards=16), MICRO_OPS),
        "sharded-spill": _micro(
            lambda: ShardedStore(shards=16,
                                 memory_budget=MICRO_OPS // 100),
            MICRO_OPS),
    }
    payload = {
        "benchmark": "store",
        "repeats": REPEATS,
        "micro_ops": MICRO_OPS,
        "configs": {name: dict(overrides)
                    for name, overrides in CONFIGS.items()},
        "searches": searches,
        "micro": micro,
        "bloom": _bloom_micro(),
        "checkpoint": _checkpoint_bench(),
        "wire": _wire_bench(),
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_store_report(store_results):
    baseline = store_results["searches"]["memory"]["wall_time"]
    rows = []
    for name, r in store_results["searches"].items():
        micro = store_results["micro"][name]
        rows.append([
            name,
            f"{r['transitions']} / {r['unique_states']}",
            f"{r['wall_time']:.3f}s",
            f"{r['wall_time'] / baseline:.2f}x",
            f"{r['store_spill_reads']}/{r['store_evictions']}",
            f"{micro['inserts_per_s'] / 1e3:.0f}k/{micro['lookups_per_s'] / 1e3:.0f}k",
        ])
    print_table(
        "Explored-set store on pyswitch-direct-path",
        ["store", "transitions / unique", "time", "vs memory",
         "spill reads/evictions", "micro ins/lkp per s"],
        rows,
    )
    bloom = store_results["bloom"]
    ckpt = store_results["checkpoint"]
    print(f"\nbloom: {bloom['bloom_hit_rate']:.0%} of absent same-prefix "
          f"lookups answered without a disk probe")
    print(f"checkpoint: full snapshot {ckpt['full_bytes_written']} B, "
          f"delta snapshot {ckpt['delta_bytes_written']} B "
          f"(+{ckpt['new_states']} states)")
    wire = store_results["wire"]
    print(f"wire: pre-filter ships "
          f"{wire['prefilter-on']['result_payload_bytes']} B vs "
          f"{wire['prefilter-off']['result_payload_bytes']} B "
          f"({wire['savings_ratio']:.2f}x fewer, "
          f"{wire['prefilter-on']['bloom_prefilter_drops']} stubs, "
          f"{wire['prefilter-on']['bloom_prefilter_fp']} hydrated)")
    print(f"wrote {OUTPUT}")


def test_state_space_identical_across_stores(store_results):
    reference = store_results["searches"]["memory"]
    for name, r in store_results["searches"].items():
        assert r["transitions"] == reference["transitions"], (
            f"{name}: store changed the transition count")
        assert r["unique_states"] == reference["unique_states"], (
            f"{name}: store changed the explored state space")


def test_sharded_overhead_within_bound(store_results):
    """The acceptance gate: sharded lookup/insert overhead <= 1.15x the
    in-memory store, end-to-end on pyswitch-direct-path (ratcheted from
    1.3x by the record-format-v2 fast path)."""
    ceiling = float(os.environ.get("NICE_STORE_OVERHEAD_CEIL", "1.15"))
    searches = store_results["searches"]
    ratio = (searches["sharded"]["wall_time"]
             / searches["memory"]["wall_time"])
    assert ratio <= ceiling, (
        f"sharded store costs {ratio:.2f}x the in-memory baseline on"
        f" pyswitch-direct-path (ceiling {ceiling:.2f}x)")


def test_sharded_micro_insert_floor(store_results):
    """Raw sharded insert throughput must clear 1.1 M/s (4x what the
    pre-v2 ASCII-record store managed on this workload); override with
    ``NICE_STORE_INSERT_FLOOR`` for slower CI runners."""
    floor = float(os.environ.get("NICE_STORE_INSERT_FLOOR", "1.1e6"))
    rate = store_results["micro"]["sharded"]["inserts_per_s"]
    assert rate >= floor, (
        f"sharded micro insert rate {rate / 1e6:.2f} M/s is below the"
        f" {floor / 1e6:.2f} M/s floor")


def test_bloom_answers_absent_lookups(store_results):
    """Absent digests sharing an index prefix with flushed records are
    answered by the Bloom bitsets, not disk probes."""
    bloom = store_results["bloom"]
    assert bloom["bloom_hit_rate"] >= 0.9, (
        f"Bloom filters answered only {bloom['bloom_hit_rate']:.0%} of"
        f" absent same-prefix lookups")


def test_checkpoint_delta_is_o_new_states(store_results):
    """Snapshot cost scales with states added since the previous
    snapshot: the delta snapshot's newly written record bytes are
    exactly the new records, and its total written bytes stay well
    under a full rewrite (the remainder is hard links)."""
    ckpt = store_results["checkpoint"]
    assert ckpt["delta_new_record_bytes"] == \
        ckpt["new_states"] * ckpt["record_width"]
    assert ckpt["delta_bytes_written"] < ckpt["full_bytes_written"] / 4


def test_spill_path_exercised(store_results):
    tight = store_results["searches"]["sharded-spill"]
    assert tight["store_evictions"] > 0, \
        "the tiny memory budget should evict digests to disk"
    assert tight["store_spill_reads"] > 0, \
        "revisited states should be answered from spilled shards"
    roomy = store_results["searches"]["sharded"]
    assert roomy["store_evictions"] == 0, \
        "the default budget should keep every digest resident here"


def test_wire_prefilter_savings_floor(store_results):
    """The acceptance gate for the worker-side dedup pre-filter: at
    least 2x fewer result-payload bytes shipped on the revisit-heavy
    leg (``NICE_WIRE_SAVINGS_FLOOR``), with the explored state space
    bit-identical either way."""
    floor = float(os.environ.get("NICE_WIRE_SAVINGS_FLOOR", "2.0"))
    wire = store_results["wire"]
    on, off = wire["prefilter-on"], wire["prefilter-off"]
    for key in ("transitions", "unique_states", "revisited_states"):
        assert on[key] == off[key], (
            f"pre-filter changed the explored state space ({key}:"
            f" {on[key]} != {off[key]})")
    assert on["bloom_prefilter_drops"] > 0, \
        "the revisit-heavy leg should stub duplicate children"
    assert wire["savings_ratio"] >= floor, (
        f"pre-filter shipped only {wire['savings_ratio']:.2f}x fewer"
        f" result-payload bytes (floor {floor:.2f}x)")


def test_bench_file_written(store_results):
    data = json.loads(OUTPUT.read_text())
    assert data["benchmark"] == "store"
    assert set(data["searches"]) == set(CONFIGS)
    assert "bloom_hit_rate" in data["bloom"]
    assert "delta_bytes_written" in data["checkpoint"]
    assert data["wire"]["savings_ratio"] > 0
    for search in data["searches"].values():
        assert "store_bloom_negatives" in search
