"""Explored-set state store overhead (DESIGN.md, "State store and
restartability").

Measures what the sharded, disk-spilling store costs relative to the
in-memory baseline on the pyswitch-direct-path workload — the headline
assertion: end-to-end search wall time with ``store="sharded"`` stays
within **1.3x** of the in-memory store (override the ceiling with
``NICE_STORE_OVERHEAD_CEIL``).  A second configuration squeezes the
resident set to a tiny memory budget so the disk-spill lookup path is
actually exercised (asserted via the eviction/spill counters), and a
micro-benchmark times raw insert/lookup throughput of both stores.

Everything lands in ``BENCH_store.json`` at the repository root; the
nightly ``hotpath`` CI job runs this file and uploads the artifact.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import time

import pytest

from repro import nice, scenarios
from repro.mc.store import MemoryStore, ShardedStore
from repro.scenarios import with_config

from .conftest import print_table

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OUTPUT = REPO_ROOT / "BENCH_store.json"

#: Store configurations under measurement.
CONFIGS = {
    "memory": {},
    "sharded": dict(store="sharded"),
    # A budget far below the state count forces evictions and disk
    # probes — the spill path a RAM-bound search would live in.
    "sharded-spill": dict(store="sharded", store_shards=8,
                          store_memory_budget=64),
}

REPEATS = 5
MICRO_OPS = 20_000


def _one_run(overrides):
    scenario = scenarios.pyswitch_direct_path()
    return nice.run(with_config(scenario, stop_at_first_violation=False,
                                **overrides))


def _micro(store, n: int) -> dict:
    digests = [hashlib.md5(str(i).encode()).hexdigest() for i in range(n)]
    start = time.perf_counter()
    for digest in digests:
        store.add(digest)
    insert_s = time.perf_counter() - start
    start = time.perf_counter()
    for digest in digests:
        assert digest in store
    lookup_s = time.perf_counter() - start
    store.close()
    return {"inserts_per_s": n / insert_s, "lookups_per_s": n / lookup_s}


@pytest.fixture(scope="module")
def store_results():
    best: dict[str, tuple[float, object]] = {
        name: (float("inf"), None) for name in CONFIGS
    }
    # Interleave configurations across the repeats so ambient load hits
    # every configuration's samples alike (same policy as the hot-path
    # benchmark).
    for _ in range(REPEATS):
        for name, overrides in CONFIGS.items():
            result = _one_run(overrides)
            if result.wall_time < best[name][0]:
                best[name] = (result.wall_time, result)
    searches = {}
    for name in CONFIGS:
        wall, stats = best[name]
        searches[name] = {
            "wall_time": wall,
            "transitions": stats.transitions_executed,
            "unique_states": stats.unique_states,
            "store_hits": stats.store_hits,
            "store_spill_reads": stats.store_spill_reads,
            "store_evictions": stats.store_evictions,
        }
    micro = {
        "memory": _micro(MemoryStore(), MICRO_OPS),
        "sharded": _micro(ShardedStore(shards=16), MICRO_OPS),
        "sharded-spill": _micro(
            ShardedStore(shards=16, memory_budget=MICRO_OPS // 100),
            MICRO_OPS),
    }
    payload = {
        "benchmark": "store",
        "repeats": REPEATS,
        "micro_ops": MICRO_OPS,
        "configs": {name: dict(overrides)
                    for name, overrides in CONFIGS.items()},
        "searches": searches,
        "micro": micro,
    }
    OUTPUT.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_store_report(store_results):
    baseline = store_results["searches"]["memory"]["wall_time"]
    rows = []
    for name, r in store_results["searches"].items():
        micro = store_results["micro"][name]
        rows.append([
            name,
            f"{r['transitions']} / {r['unique_states']}",
            f"{r['wall_time']:.3f}s",
            f"{r['wall_time'] / baseline:.2f}x",
            f"{r['store_spill_reads']}/{r['store_evictions']}",
            f"{micro['inserts_per_s'] / 1e3:.0f}k/{micro['lookups_per_s'] / 1e3:.0f}k",
        ])
    print_table(
        "Explored-set store on pyswitch-direct-path",
        ["store", "transitions / unique", "time", "vs memory",
         "spill reads/evictions", "micro ins/lkp per s"],
        rows,
    )
    print(f"\nwrote {OUTPUT}")


def test_state_space_identical_across_stores(store_results):
    reference = store_results["searches"]["memory"]
    for name, r in store_results["searches"].items():
        assert r["transitions"] == reference["transitions"], (
            f"{name}: store changed the transition count")
        assert r["unique_states"] == reference["unique_states"], (
            f"{name}: store changed the explored state space")


def test_sharded_overhead_within_bound(store_results):
    """The acceptance gate: sharded lookup/insert overhead <= 1.3x the
    in-memory store, end-to-end on pyswitch-direct-path."""
    ceiling = float(os.environ.get("NICE_STORE_OVERHEAD_CEIL", "1.3"))
    searches = store_results["searches"]
    ratio = (searches["sharded"]["wall_time"]
             / searches["memory"]["wall_time"])
    assert ratio <= ceiling, (
        f"sharded store costs {ratio:.2f}x the in-memory baseline on"
        f" pyswitch-direct-path (ceiling {ceiling:.1f}x)")


def test_spill_path_exercised(store_results):
    tight = store_results["searches"]["sharded-spill"]
    assert tight["store_evictions"] > 0, \
        "the tiny memory budget should evict digests to disk"
    assert tight["store_spill_reads"] > 0, \
        "revisited states should be answered from spilled shards"
    roomy = store_results["searches"]["sharded"]
    assert roomy["store_evictions"] == 0, \
        "the default budget should keep every digest resident here"


def test_bench_file_written(store_results):
    data = json.loads(OUTPUT.read_text())
    assert data["benchmark"] == "store"
    assert set(data["searches"]) == set(CONFIGS)
