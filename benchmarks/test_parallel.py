"""Cheap checkpointing and the parallel engine on Table-1-style workloads.

The seed searcher checkpointed every frontier state with ``copy.deepcopy``
and re-canonicalized the full state on every hash.  This suite measures the
replacement engine (component-wise fast clones + memoized hashing,
DESIGN.md "Cheap checkpointing") against a seed-equivalent configuration
(``fast_clone=False, hash_memoization=False``) on the layer-2 ping workload
of Table 1, asserting the >= 2x wall-clock speedup the optimization is
meant to deliver (hard floor on the nightly multi-core runner via
``NICE_FAST_ENGINE_SPEEDUP_FLOOR=2.0``; a jitter-tolerant 1.5x floor
elsewhere — shared containers measure ~1.8-2.3x run to run), and reports
the parallel engine's numbers alongside.  Timing rows are best-of-3
(``REPEATS``).

On single-core runners (CI containers) ``workers=4`` cannot beat serial —
restoration work is extra CPU with no extra CPU to run it on — so by
default the parallel row asserts state-space equality and reports timing,
and the speedup assertion is gated on available cores.  The nightly
``multicore-parallel`` CI job runs on a multi-core runner with
``NICE_REQUIRE_MULTICORE=1`` (skipping becomes *failing*, so a mis-sized
runner cannot silently pass) and ``NICE_PARALLEL_SPEEDUP_FLOOR=2.0``,
turning the gate into a real >=2x wall-clock assertion.
"""

from __future__ import annotations

import os

import pytest

from repro import nice, scenarios
from repro.scenarios import with_config

from .conftest import large_runs_enabled, print_table

#: Ping count for the measured workload: row 1 of Table 1 by default, row 2
#: when NICE_BENCH_LARGE=1.
PINGS = 3 if large_runs_enabled() else 2


def available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


#: Timing repetitions per engine.  Wall-clock assertions compare the
#: *best* of these runs — the standard benchmarking defence against
#: scheduler noise (a single sample of the sub-second serial engines
#: jitters across the 2x threshold on a busy runner).  Counters are
#: identical across repetitions, so the equality assertions are
#: unaffected by which run is kept.
REPEATS = 3


def best_of(config_kwargs: dict, scenario_factory):
    runs = [nice.run(with_config(scenario_factory(), **config_kwargs))
            for _ in range(REPEATS)]
    return min(runs, key=lambda r: r.wall_time)


@pytest.fixture(scope="module")
def engine_results():
    def scenario():
        return scenarios.ping_experiment(pings=PINGS)
    seed = best_of(dict(fast_clone=False, hash_memoization=False), scenario)
    fast = best_of({}, scenario)
    # The registry spec makes the pool work on every platform: fork where
    # available, spawn otherwise (DESIGN.md, "Scheduler and transports").
    workers = best_of(dict(workers=4), scenario)
    round_robin = best_of(dict(workers=4, affinity=False), scenario)
    return {"seed": seed, "fast": fast, "workers4": workers,
            "workers4-rr": round_robin}


def test_checkpointing_report(engine_results):
    rows = []
    baseline = engine_results["seed"].wall_time
    for label, result in engine_results.items():
        rows.append([
            label,
            f"{result.transitions_executed} / {result.unique_states}",
            f"{result.replayed_transitions + result.rebuilt_transitions}",
            f"{result.wall_time:.2f}s",
            f"{baseline / result.wall_time:.2f}x",
        ])
    print_table(
        f"Checkpointing engines on the {PINGS}-ping workload (Table 1 row)",
        ["engine", "transitions / unique", "restore", "time", "vs seed"],
        rows,
    )


def test_fast_engine_at_least_2x_over_seed(engine_results):
    """The full 2x contract is enforced where timing is trustworthy: the
    nightly ``multicore-parallel`` job pins NICE_FAST_ENGINE_SPEEDUP_FLOOR
    to 2.0 on a real multi-core runner.  The default floor tolerates the
    scheduler jitter of shared/1-core containers, where the sub-second
    serial runs measure ~1.8-2.3x run to run."""
    floor = float(os.environ.get("NICE_FAST_ENGINE_SPEEDUP_FLOOR", "1.5"))
    seed, fast = engine_results["seed"], engine_results["fast"]
    assert fast.unique_states == seed.unique_states
    assert fast.transitions_executed == seed.transitions_executed
    speedup = seed.wall_time / fast.wall_time
    assert speedup >= floor, (
        f"only {speedup:.2f}x over the seed searcher (floor {floor:.1f}x)")


def test_parallel_explores_identical_space(engine_results):
    serial = engine_results["fast"]
    for label in ("workers4", "workers4-rr"):
        parallel = engine_results[label]
        assert parallel.unique_states == serial.unique_states
        assert parallel.transitions_executed == serial.transitions_executed
        assert parallel.quiescent_states == serial.quiescent_states


def test_affinity_cuts_restoration_work(engine_results):
    affine, round_robin = (engine_results["workers4"],
                           engine_results["workers4-rr"])
    assert affine.replayed_transitions < round_robin.replayed_transitions


def test_parallel_speedup_with_real_cores(engine_results):
    """Gated off on 1-core runners; the nightly multicore-parallel CI job
    makes it a hard >=2x assertion (see module docstring)."""
    cores = available_cores()
    required = os.environ.get("NICE_REQUIRE_MULTICORE", "") == "1"
    if cores < 4:
        if required:
            pytest.fail(
                f"NICE_REQUIRE_MULTICORE=1 but only {cores} core(s) —"
                f" the multi-core job is running on the wrong runner")
        pytest.skip(f"needs >= 4 cores (have {cores})")
    floor = float(os.environ.get("NICE_PARALLEL_SPEEDUP_FLOOR", "1.0"))
    serial, parallel = engine_results["fast"], engine_results["workers4"]
    speedup = serial.wall_time / parallel.wall_time
    assert speedup > floor, (
        f"workers=4 is only {speedup:.2f}x over serial on {cores} cores"
        f" (floor {floor:.1f}x)")
