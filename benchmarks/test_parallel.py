"""Cheap checkpointing and the parallel engine on Table-1-style workloads.

The seed searcher checkpointed every frontier state with ``copy.deepcopy``
and re-canonicalized the full state on every hash.  This suite measures the
replacement engine (component-wise fast clones + memoized hashing,
DESIGN.md "Cheap checkpointing") against a seed-equivalent configuration
(``fast_clone=False, hash_memoization=False``) on the layer-2 ping workload
of Table 1, asserting the >= 2x wall-clock speedup the optimization is
meant to deliver, and reports the parallel engine's numbers alongside.

On single-core runners (CI containers) ``workers=4`` cannot beat serial —
restoration work is extra CPU with no extra CPU to run it on — so the
parallel row asserts state-space equality and reports timing; the speedup
assertion is gated on available cores.
"""

from __future__ import annotations

import multiprocessing
import os

import pytest

from repro import nice, scenarios
from repro.scenarios import with_config

from .conftest import large_runs_enabled, print_table

#: Ping count for the measured workload: row 1 of Table 1 by default, row 2
#: when NICE_BENCH_LARGE=1.
PINGS = 3 if large_runs_enabled() else 2


@pytest.fixture(scope="module")
def engine_results():
    scenario = scenarios.ping_experiment(pings=PINGS)
    seed = nice.run(with_config(scenario, fast_clone=False,
                                hash_memoization=False))
    fast = nice.run(with_config(scenario))
    rows = {"seed": seed, "fast": fast}
    if "fork" in multiprocessing.get_all_start_methods():
        rows["workers4"] = nice.run(with_config(scenario, workers=4))
    return rows


def test_checkpointing_report(engine_results):
    rows = []
    baseline = engine_results["seed"].wall_time
    for label, result in engine_results.items():
        rows.append([
            label,
            f"{result.transitions_executed} / {result.unique_states}",
            f"{result.wall_time:.2f}s",
            f"{baseline / result.wall_time:.2f}x",
        ])
    print_table(
        f"Checkpointing engines on the {PINGS}-ping workload (Table 1 row)",
        ["engine", "transitions / unique", "time", "vs seed"],
        rows,
    )


def test_fast_engine_at_least_2x_over_seed(engine_results):
    seed, fast = engine_results["seed"], engine_results["fast"]
    assert fast.unique_states == seed.unique_states
    assert fast.transitions_executed == seed.transitions_executed
    speedup = seed.wall_time / fast.wall_time
    assert speedup >= 2.0, f"only {speedup:.2f}x over the seed searcher"


def test_parallel_explores_identical_space(engine_results):
    if "workers4" not in engine_results:
        pytest.skip("fork start method unavailable")
    serial, parallel = engine_results["fast"], engine_results["workers4"]
    assert parallel.unique_states == serial.unique_states
    assert parallel.transitions_executed == serial.transitions_executed
    assert parallel.quiescent_states == serial.quiescent_states


def test_parallel_speedup_with_real_cores(engine_results):
    cores = len(os.sched_getaffinity(0)) if hasattr(os, "sched_getaffinity") \
        else (os.cpu_count() or 1)
    if "workers4" not in engine_results or cores < 4:
        pytest.skip(f"needs >= 4 cores (have {cores})")
    serial, parallel = engine_results["fast"], engine_results["workers4"]
    assert parallel.wall_time < serial.wall_time
