"""Cheap checkpointing and the parallel engine on Table-1-style workloads.

The seed searcher checkpointed every frontier state with ``copy.deepcopy``
and re-canonicalized the full state on every hash.  This suite measures the
replacement engine (component-wise fast clones + memoized hashing,
DESIGN.md "Cheap checkpointing") against a seed-equivalent configuration
(``fast_clone=False, hash_memoization=False``) on the layer-2 ping workload
of Table 1, asserting the >= 2x wall-clock speedup the optimization is
meant to deliver, and reports the parallel engine's numbers alongside.

On single-core runners (CI containers) ``workers=4`` cannot beat serial —
restoration work is extra CPU with no extra CPU to run it on — so by
default the parallel row asserts state-space equality and reports timing,
and the speedup assertion is gated on available cores.  The nightly
``multicore-parallel`` CI job runs on a multi-core runner with
``NICE_REQUIRE_MULTICORE=1`` (skipping becomes *failing*, so a mis-sized
runner cannot silently pass) and ``NICE_PARALLEL_SPEEDUP_FLOOR=2.0``,
turning the gate into a real >=2x wall-clock assertion.
"""

from __future__ import annotations

import os

import pytest

from repro import nice, scenarios
from repro.scenarios import with_config

from .conftest import large_runs_enabled, print_table

#: Ping count for the measured workload: row 1 of Table 1 by default, row 2
#: when NICE_BENCH_LARGE=1.
PINGS = 3 if large_runs_enabled() else 2


def available_cores() -> int:
    if hasattr(os, "sched_getaffinity"):
        return len(os.sched_getaffinity(0))
    return os.cpu_count() or 1


@pytest.fixture(scope="module")
def engine_results():
    scenario = scenarios.ping_experiment(pings=PINGS)
    seed = nice.run(with_config(scenario, fast_clone=False,
                                hash_memoization=False))
    fast = nice.run(with_config(scenario))
    # The registry spec makes the pool work on every platform: fork where
    # available, spawn otherwise (DESIGN.md, "Scheduler and transports").
    workers = nice.run(with_config(scenario, workers=4))
    round_robin = nice.run(with_config(scenario, workers=4, affinity=False))
    return {"seed": seed, "fast": fast, "workers4": workers,
            "workers4-rr": round_robin}


def test_checkpointing_report(engine_results):
    rows = []
    baseline = engine_results["seed"].wall_time
    for label, result in engine_results.items():
        rows.append([
            label,
            f"{result.transitions_executed} / {result.unique_states}",
            f"{result.replayed_transitions + result.rebuilt_transitions}",
            f"{result.wall_time:.2f}s",
            f"{baseline / result.wall_time:.2f}x",
        ])
    print_table(
        f"Checkpointing engines on the {PINGS}-ping workload (Table 1 row)",
        ["engine", "transitions / unique", "restore", "time", "vs seed"],
        rows,
    )


def test_fast_engine_at_least_2x_over_seed(engine_results):
    seed, fast = engine_results["seed"], engine_results["fast"]
    assert fast.unique_states == seed.unique_states
    assert fast.transitions_executed == seed.transitions_executed
    speedup = seed.wall_time / fast.wall_time
    assert speedup >= 2.0, f"only {speedup:.2f}x over the seed searcher"


def test_parallel_explores_identical_space(engine_results):
    serial = engine_results["fast"]
    for label in ("workers4", "workers4-rr"):
        parallel = engine_results[label]
        assert parallel.unique_states == serial.unique_states
        assert parallel.transitions_executed == serial.transitions_executed
        assert parallel.quiescent_states == serial.quiescent_states


def test_affinity_cuts_restoration_work(engine_results):
    affine, round_robin = (engine_results["workers4"],
                           engine_results["workers4-rr"])
    assert affine.replayed_transitions < round_robin.replayed_transitions


def test_parallel_speedup_with_real_cores(engine_results):
    """Gated off on 1-core runners; the nightly multicore-parallel CI job
    makes it a hard >=2x assertion (see module docstring)."""
    cores = available_cores()
    required = os.environ.get("NICE_REQUIRE_MULTICORE", "") == "1"
    if cores < 4:
        if required:
            pytest.fail(
                f"NICE_REQUIRE_MULTICORE=1 but only {cores} core(s) —"
                f" the multi-core job is running on the wrong runner")
        pytest.skip(f"needs >= 4 cores (have {cores})")
    floor = float(os.environ.get("NICE_PARALLEL_SPEEDUP_FLOOR", "1.0"))
    serial, parallel = engine_results["fast"], engine_results["workers4"]
    speedup = serial.wall_time / parallel.wall_time
    assert speedup > floor, (
        f"workers=4 is only {speedup:.2f}x over serial on {cores} cores"
        f" (floor {floor:.1f}x)")
