"""Benchmark suites reproducing the paper's measurement tables.

A real package so that pytest's package-relative imports
(``from .conftest import print_table``) resolve when collecting from the
repo root.  Every test in here carries the ``benchmark`` marker (applied in
``conftest.py``); run them explicitly with ``pytest -m benchmark`` or
``pytest benchmarks``.
"""
