"""Ablations of NICE's own design choices (DESIGN.md section 5).

Not a paper table — these benches quantify the individual mechanisms the
paper claims matter:

* state matching on/off (hash-dedup vs naive re-exploration);
* the PKT-SEQ bounds (sequence length and outstanding-burst sweep);
* the symbolic-execution path budget vs discovered equivalence classes;
* concolic-engine overhead accounting (handler runs, solver calls).
"""

from __future__ import annotations

import dataclasses

import pytest

from repro import nice, scenarios
from repro.config import NiceConfig
from repro.sym.engine import ConcolicEngine

from .conftest import print_table


# ----------------------------------------------------------------------
# State matching
# ----------------------------------------------------------------------

def run_ping(pings: int, state_matching: bool, max_transitions=None):
    config = NiceConfig(state_matching=state_matching,
                        max_transitions=max_transitions)
    return nice.run(scenarios.ping_experiment(pings=pings, config=config))


def test_state_matching_prunes_revisits():
    with_matching = run_ping(2, True)
    without = run_ping(2, False, max_transitions=20000)
    print_table(
        "Ablation: state matching",
        ["mode", "transitions", "terminated"],
        [["hash dedup", with_matching.transitions_executed,
          with_matching.terminated],
         ["no dedup", without.transitions_executed, without.terminated]],
    )
    assert with_matching.terminated == "exhausted"
    # Without state matching the search re-explores joins and blows past
    # the budget that the deduplicated search finishes well within.
    assert (without.terminated == "max_transitions"
            or without.transitions_executed
            > with_matching.transitions_executed)


# ----------------------------------------------------------------------
# PKT-SEQ bounds
# ----------------------------------------------------------------------

@pytest.mark.parametrize("max_seq", [1, 2, 3])
def test_pkt_seq_sequence_bound_scales_space(max_seq):
    config = NiceConfig(max_pkt_sequence=max_seq, max_outstanding=2)
    scenario = scenarios.pyswitch_direct_path(config=config)
    result = nice.run(scenario)
    print(f"max_pkt_sequence={max_seq}: {result.transitions_executed} "
          f"transitions, violation={result.found_violation}")
    if max_seq >= 2:
        # BUG-II's exchange: A sends, B echoes, A's *second* packet goes to
        # the controller although the direct path exists.
        assert result.found_violation
    else:
        # With a single send per host the exchange cannot complete.
        assert not result.found_violation


def test_outstanding_bound_limits_concurrency():
    rows = []
    transitions = []
    for burst in (1, 2, 3):
        scenario = scenarios.ping_experiment(pings=3, max_outstanding=burst)
        result = nice.run(scenario)
        rows.append([burst, result.transitions_executed,
                     result.unique_states])
        transitions.append(result.transitions_executed)
    print_table("Ablation: PKT-SEQ outstanding-burst bound",
                ["burst", "transitions", "unique states"], rows)
    assert transitions == sorted(transitions)


# ----------------------------------------------------------------------
# Symbolic-execution budget (Section 9's coverage/overhead trade-off)
# ----------------------------------------------------------------------

@pytest.mark.parametrize("max_paths", [8, 64])
def test_symbolic_path_budget_finds_bug(max_paths):
    config = NiceConfig(max_paths=max_paths)
    scenario = scenarios.pyswitch_direct_path(config=config)
    result = nice.run(scenario)
    print(f"max_paths={max_paths}: violation={result.found_violation}, "
          f"transitions={result.transitions_executed}")
    assert result.found_violation


def test_symbolic_path_budget_controls_coverage():
    """Fewer concolic runs discover fewer equivalence classes — Section 9's
    coverage-versus-overhead dial, measured at the engine level."""
    scenario = scenarios.pyswitch_direct_path()
    system = scenario.system_factory()
    host = system.hosts["A"]
    classes = {}
    for budget in (1, 2, 8, 64):
        engine = ConcolicEngine(max_paths=budget)
        packets = engine.discover_packets(system.app, "s1", 1,
                                          system.topo, host)
        classes[budget] = len(packets)
        print(f"max_paths={budget}: {len(packets)} classes, "
              f"{engine.handler_runs} handler runs")
    budgets = sorted(classes)
    assert classes[1] == 1
    assert all(classes[a] <= classes[b]
               for a, b in zip(budgets, budgets[1:]))
    assert classes[64] > classes[1]


def test_concolic_overhead_accounting():
    engine = ConcolicEngine(max_paths=64)
    scenario = scenarios.pyswitch_direct_path()
    system = scenario.system_factory()
    host = system.hosts["A"]
    packets = engine.discover_packets(system.app, "s1", 1, system.topo, host)
    print(f"discovered {len(packets)} equivalence classes with "
          f"{engine.handler_runs} handler runs and "
          f"{engine.solver_calls} solver calls")
    assert engine.handler_runs >= len(packets)
    assert engine.solver_calls > 0


# ----------------------------------------------------------------------
# pytest-benchmark timings
# ----------------------------------------------------------------------

@pytest.mark.benchmark(group="ablations")
def test_bench_state_hashing(benchmark):
    scenario = scenarios.ping_experiment(pings=2)
    system = scenario.system_factory()
    benchmark(system.state_hash)


@pytest.mark.benchmark(group="ablations")
def test_bench_system_clone(benchmark):
    scenario = scenarios.ping_experiment(pings=2)
    system = scenario.system_factory()
    benchmark(system.clone)


@pytest.mark.benchmark(group="ablations")
def test_bench_discover_packets(benchmark):
    scenario = scenarios.pyswitch_direct_path()
    system = scenario.system_factory()
    host = system.hosts["A"]

    def discover():
        return ConcolicEngine(max_paths=64).discover_packets(
            system.app, "s1", 1, system.topo, host)

    packets = benchmark(discover)
    assert packets
