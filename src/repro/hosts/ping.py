"""The layer-2 ping responder used by the Section 7 performance experiments.

"Host A sends a 'layer-2 ping' packet to host B which replies with a packet
to A."  The responder queues one pong per received ping; each pong goes out
through a separate ``send`` transition so the model checker explores reply
orderings.
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import Packet, l2_pong


class PingResponder(Host):
    """Replies to every received ping with a layer-2 pong.

    Replies to any payload tagged ``ping*`` regardless of destination MAC, so
    the multi-flow ping workload (each concurrent ping uses its own MAC
    pair, making the exchanges independent flows) needs only one responder
    host.  Pongs are never answered, so no reply loops can form.
    """

    def on_receive(self, packet: Packet) -> list[Packet]:
        if not str(packet.payload).startswith("ping"):
            return []
        return [l2_pong(packet)]
