"""An ARP-resolving client.

Section 2.2.3: NICE's host library covers "a variety of protocols including
Ethernet, ARP, IP, and TCP".  This client models the realistic first step of
a connection: it broadcasts an ARP who-has for its target IP, waits for the
reply, and only then enables its scripted data packets — rewriting their
Ethernet destination to the resolved MAC.

Used by the load-balancer scenarios to exercise the controller's proxy-ARP
path (the BUG-VI territory) with realistic ordering instead of a scripted
ARP injected out of nowhere.
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import (
    ARP_REPLY,
    ETH_TYPE_ARP,
    MacAddress,
    Packet,
    arp_request,
)


class ArpClient(Host):
    """Resolves ``target_ip`` before releasing its scripted packets."""

    def __init__(self, name: str, mac: MacAddress, ip: int, target_ip: int,
                 script: list[Packet] | None = None):
        super().__init__(name, mac, ip)
        self.target_ip = target_ip
        self.resolved_mac: MacAddress | None = None
        #: Data packets held back until resolution completes.
        self.data_script: list[Packet] = list(script or [])
        self.script = [arp_request(mac, ip, target_ip)]

    def clone(self, packet_memo: dict) -> "ArpClient":
        """Unlike the base host, this client *appends* to ``script`` when
        resolution completes (``on_receive``), so the list cannot stay
        shared between checkpoint copies as the base clone leaves it."""
        new = super().clone(packet_memo)
        new.script = list(self.script)
        return new

    def on_receive(self, packet: Packet) -> list[Packet]:
        if (packet.eth_type == ETH_TYPE_ARP and packet.arp_op == ARP_REPLY
                and packet.ip_src == self.target_ip
                and self.resolved_mac is None):
            self.resolved_mac = packet.eth_src
            for data in self.data_script:
                ready = data.copy()
                ready.eth_dst = self.resolved_mac
                self.script.append(ready)
        return []

    def canonical(self) -> tuple:
        resolved = (self.resolved_mac.canonical()
                    if self.resolved_mac is not None else "*")
        return super().canonical() + (
            self.target_ip,
            resolved,
            tuple(p.canonical() for p in self.data_script),
        )
