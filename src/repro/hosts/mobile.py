"""The mobile host model.

Section 2.2.3: "A more realistic refinement of this model is the mobile host
that includes the ``move`` transition that moves the host to a new
<switch, port> location."  BUG-I (host unreachable after moving) needs it.
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import MacAddress, Packet


class MobileHost(Host):
    """A host with a list of locations it may move through, in order."""

    def __init__(self, name: str, mac: MacAddress, ip: int,
                 moves: list[tuple[str, int]],
                 script: list[Packet] | None = None):
        super().__init__(name, mac, ip, script=script)
        self.moves: list[tuple[str, int]] = list(moves)
        self.move_index = 0

    def move_targets(self) -> list[tuple[str, int]]:
        if self.move_index < len(self.moves):
            return [self.moves[self.move_index]]
        return []

    def take_move(self) -> tuple[str, int]:
        target = self.moves[self.move_index]
        self.move_index += 1
        return target

    def canonical(self) -> tuple:
        return super().canonical() + (self.move_index, tuple(self.moves))
