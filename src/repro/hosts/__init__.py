"""End-host models (Section 2.2.3).

NICE provides simple programs that act as clients or servers: the default
client has ``send`` (executable C times) and ``receive`` transitions; the
default server has ``receive`` and ``send_reply`` (enabled by the former);
the mobile host adds a ``move`` transition.  Users can subclass
:class:`~repro.hosts.base.Host` to customize behavior.
"""

from repro.hosts.arp import ArpClient
from repro.hosts.base import Host
from repro.hosts.client import Client
from repro.hosts.mobile import MobileHost
from repro.hosts.ping import PingResponder
from repro.hosts.server import EchoServer, Server
from repro.hosts.tcp import TcpLikeClient

__all__ = ["ArpClient", "Client", "EchoServer", "Host", "MobileHost",
           "PingResponder", "Server", "TcpLikeClient"]
