"""Base host model.

A host owns:

* an **inbox** — the FIFO channel from its switch port; the ``receive``
  transition pops one packet;
* a **script** — an ordered list of packets to send proactively (the concrete
  alternative to symbolic-execution-discovered packets);
* **pending replies** — packets queued by :meth:`on_receive`, each sent by a
  separate ``send`` transition (the paper's server model: ``send_reply`` is
  enabled by ``receive``);
* the PKT-SEQ bookkeeping: ``sent_count`` (bounded by the strategy's maximum
  sequence length) and the burst counter ``c`` (decremented per send,
  replenished by one for every received packet — Section 4, PKT-SEQ).

Subclasses override :meth:`on_receive` for reactive behavior.  All state must
stay plain-Python so the model checker can deep-copy and canonically
serialize it.
"""

from __future__ import annotations

import copy

from repro.openflow.packet import MacAddress, Packet


class Host:
    """A generic end host."""

    def __init__(self, name: str, mac: MacAddress, ip: int,
                 script: list[Packet] | None = None):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.script: list[Packet] = list(script or [])
        #: When True (default) scripted packets go out in order; when False
        #: every unsent scripted packet is a concurrently-enabled ``send``
        #: transition (the "concurrent pings" workload of Section 7).
        self.ordered_script = True
        self.inbox: list[Packet] = []
        self.received: list[Packet] = []
        self.pending: list[Packet] = []
        self.script_done: set[int] = set()
        self.reply_sent = 0
        self.sym_sent = 0
        #: Per-header-signature send counts; the system derives packet uids
        #: from these so identity is independent of global event order.
        self.send_sig_counts: dict[str, int] = {}
        #: When True and symbolic execution is enabled, the search gives this
        #: host ``discover_packets``-derived send transitions (Figure 4/5).
        self.symbolic_client = False
        #: PKT-SEQ burst counter; the system sets the initial value from
        #: ``NiceConfig.max_outstanding``.
        self.counter_c = 1

    def clone(self, packet_memo: dict) -> "Host":
        """Checkpoint copy (``System.clone``).

        Shallow-copies the instance — subclasses that only add scalar state
        (all the bundled ones) inherit this — then replaces the mutable
        containers.  ``script`` stays shared (templates are copied at send
        time; a subclass that mutates its script must copy it, see
        ``ArpClient.clone``) and so do the ``received`` packets (immutable
        history); ``inbox``/``pending`` packets are memo-copied because a
        send resets the packet's identity fields in place.

        Under copy-on-write checkpointing the whole host stays shared
        between parent and child until ``System._dirty`` materializes a
        copy for whichever side mutates first — receive/send/move must
        always go through the owning System's transitions.
        """
        new = copy.copy(self)
        new.inbox = [p.copy_memo(packet_memo) for p in self.inbox]
        new.pending = [p.copy_memo(packet_memo) for p in self.pending]
        new.received = list(self.received)
        new.script_done = set(self.script_done)
        new.send_sig_counts = dict(self.send_sig_counts)
        return new

    @property
    def script_sent(self) -> int:
        return len(self.script_done)

    @property
    def sent_count(self) -> int:
        """Total packets sent, over all three send sources."""
        return self.script_sent + self.reply_sent + self.sym_sent

    # ------------------------------------------------------------------
    # Receive
    # ------------------------------------------------------------------

    def can_receive(self) -> bool:
        return bool(self.inbox)

    def deliver(self, packet: Packet) -> None:
        """Called by the system when the switch emits toward this host."""
        self.inbox.append(packet)

    def receive(self) -> Packet:
        """Pop one packet: record it, replenish the burst counter, queue replies."""
        packet = self.inbox.pop(0)
        self.received.append(packet)
        self.counter_c += 1
        replies = self.on_receive(packet)
        if replies:
            self.pending.extend(replies)
        return packet

    def on_receive(self, packet: Packet) -> list[Packet]:
        """Hook: return reply packets to queue.  Default: none."""
        return []

    # ------------------------------------------------------------------
    # Send
    # ------------------------------------------------------------------

    def can_send_more(self, max_pkt_sequence: int) -> bool:
        """PKT-SEQ gate: burst counter available and sequence bound not hit."""
        return self.counter_c > 0 and self.sent_count < max_pkt_sequence

    def send_candidates(self, max_pkt_sequence: int) -> list[tuple[str, int]]:
        """Enumerate the concrete send transitions enabled right now.

        Returns descriptors: ``("script", index)`` for the next scripted
        packet, ``("pending", 0)`` for the head queued reply.  Scripted sends
        happen in order; replies are FIFO.  Respects the PKT-SEQ bounds.
        (Symbolically-discovered sends are enumerated by the search loop.)
        """
        if not self.can_send_more(max_pkt_sequence):
            return []
        candidates: list[tuple[str, int]] = []
        if self.ordered_script:
            if self.script_sent < len(self.script):
                candidates.append(("script", self.script_sent))
        else:
            for index in range(len(self.script)):
                if index not in self.script_done:
                    candidates.append(("script", index))
        if self.pending:
            candidates.append(("pending", 0))
        return candidates

    def take_send(self, descriptor: tuple[str, int]) -> Packet:
        """Consume a send: return the packet template and update counters."""
        kind, index = descriptor
        if kind == "script":
            if index in self.script_done:
                raise ValueError(f"script packet {index} already sent")
            packet = self.script[index].copy()
            self.script_done.add(index)
        elif kind == "pending":
            packet = self.pending.pop(index)
            self.reply_sent += 1
        else:
            raise ValueError(f"unknown send descriptor {descriptor!r}")
        self.counter_c -= 1
        return packet

    def take_send_sym(self, packet: Packet) -> Packet:
        """Consume a send of a symbolically-discovered packet."""
        self.sym_sent += 1
        self.counter_c -= 1
        return packet.copy()

    # ------------------------------------------------------------------
    # Mobility / serialization
    # ------------------------------------------------------------------

    def move_targets(self) -> list[tuple[str, int]]:
        """Locations this host may still move to (mobile hosts override)."""
        return []

    def take_move(self) -> tuple[str, int]:
        raise NotImplementedError("base hosts do not move")

    def canonical(self) -> tuple:
        return (
            self.name,
            self.mac.canonical(),
            self.ip,
            # The inbox and pending replies are FIFO queues — order is real
            # behavior.  The received record is history: which packets
            # arrived matters (properties read it), the order they arrived
            # in does not, so it is serialized as a sorted multiset to let
            # equivalent interleavings hash together.
            tuple(p.canonical() for p in self.inbox),
            tuple(sorted((p.canonical() for p in self.received), key=repr)),
            tuple(p.canonical() for p in self.pending),
            tuple(sorted(self.script_done)),
            self.reply_sent,
            self.sym_sent,
            self.counter_c,
            tuple(sorted(self.send_sig_counts.items())),
        )

    def __repr__(self):
        return (f"{type(self).__name__}({self.name}, sent={self.sent_count},"
                f" recv={len(self.received)}, c={self.counter_c})")
