"""A TCP-like windowed client.

Section 4, on PKT-SEQ's burst counter: "we adopt as default behavior to
increase c by one unit for every received packet.  However, this behavior
can be modified in more complex end host models, e.g., to mimic the TCP flow
and congestion controls."

:class:`TcpLikeClient` implements that refinement: the replenishment follows
an additive-increase window — every ``acks_per_increase`` received packets
grow the congestion window by one, and the burst counter is replenished up
to the current window rather than unboundedly.  A loss signal (the model has
no explicit loss notification, so quiescent retransmission timers are out of
scope) can be simulated by calling :meth:`on_loss`, which halves the window
(multiplicative decrease).
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import MacAddress, Packet


class TcpLikeClient(Host):
    """A client whose send budget follows AIMD-style window growth."""

    def __init__(self, name: str, mac: MacAddress, ip: int,
                 script: list[Packet] | None = None,
                 initial_window: int = 1,
                 max_window: int = 8,
                 acks_per_increase: int = 1):
        super().__init__(name, mac, ip, script=script)
        self.window = initial_window
        self.max_window = max_window
        self.acks_per_increase = max(1, acks_per_increase)
        self._acks_seen = 0
        self.counter_c = initial_window

    def receive(self) -> Packet:
        """Receive = ACK: replenish up to the window, grow additively."""
        packet = self.inbox.pop(0)
        self.received.append(packet)
        self._acks_seen += 1
        if self._acks_seen % self.acks_per_increase == 0 \
                and self.window < self.max_window:
            self.window += 1
        if self.counter_c < self.window:
            self.counter_c += 1
        replies = self.on_receive(packet)
        if replies:
            self.pending.extend(replies)
        return packet

    def on_loss(self) -> None:
        """Multiplicative decrease: halve the window (min 1)."""
        self.window = max(1, self.window // 2)
        self.counter_c = min(self.counter_c, self.window)

    def canonical(self) -> tuple:
        return super().canonical() + (self.window, self._acks_seen)
