"""Server host models.

The default server (Section 2.2.3) has ``receive`` and ``send_reply``
transitions, the latter enabled by the former.  :class:`Server` answers TCP
segments addressed to it with an ACK back to the sender (enough to complete
the handshakes the load-balancer scenarios need); :class:`EchoServer`
answers any packet by swapping addresses.
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import (
    ETH_TYPE_IP,
    IPPROTO_TCP,
    Packet,
    TCP_ACK,
    TCP_SYN,
    tcp_packet,
)


class Server(Host):
    """Replies to TCP packets for its own IP: SYN -> SYN+ACK, data -> ACK."""

    def on_receive(self, packet: Packet) -> list[Packet]:
        if packet.eth_type != ETH_TYPE_IP or packet.nw_proto != IPPROTO_TCP:
            return []
        if packet.ip_dst != self.ip:
            return []
        flags = TCP_SYN | TCP_ACK if packet.tcp_flags & TCP_SYN else TCP_ACK
        reply = tcp_packet(
            src=self.mac,
            dst=packet.eth_src,
            ip_src=self.ip,
            ip_dst=packet.ip_src,
            tp_src=packet.tp_dst,
            tp_dst=packet.tp_src,
            flags=flags,
        )
        return [reply]


class EchoServer(Host):
    """Replies to every received packet by swapping Ethernet/IP addresses."""

    def on_receive(self, packet: Packet) -> list[Packet]:
        reply = packet.copy()
        reply.hops = []
        reply.eth_src, reply.eth_dst = self.mac, packet.eth_src
        reply.ip_src, reply.ip_dst = packet.ip_dst, packet.ip_src
        reply.tp_src, reply.tp_dst = packet.tp_dst, packet.tp_src
        return [reply]
