"""The default client model.

Two basic transitions (Section 2.2.3): ``send`` — initially enabled, can
execute C times — and ``receive``, plus the counter of sent packets.  In
concrete mode the packets come from the script; in symbolic mode the search
loop feeds the client representative packets discovered by concolic
execution of the ``packet_in`` handler.
"""

from __future__ import annotations

from repro.hosts.base import Host
from repro.openflow.packet import MacAddress, Packet


class Client(Host):
    """A host that proactively sends its scripted packets and collects replies."""

    def __init__(self, name: str, mac: MacAddress, ip: int,
                 script: list[Packet] | None = None,
                 symbolic_client: bool = True):
        super().__init__(name, mac, ip, script=script)
        self.symbolic_client = symbolic_client
