"""Command-line front end.

``nice run`` executes a predefined scenario (the paper's experiments are all
available by name), prints the search statistics, and dumps the violation
traces; ``nice walk`` performs a random walk; ``nice replay`` re-executes a
previously saved trace.

``nice resume`` reconstructs a checkpointed search mid-flight and
continues it (same explored state space as an uninterrupted run).

Examples::

    nice run pyswitch-direct-path
    nice run loadbalancer --strategy NO-DELAY --max-transitions 50000
    nice run ping --pings 3 --no-canonical
    nice run ping --pings 3 --workers 4 --start-method spawn
    nice run loadbalancer --workers 2 --transport socket
    nice run ping --pings 3 --checkpoint-dir ./ckpt --store sharded
    nice resume ./ckpt --workers 4
    nice checkpoints ./ckpt
    nice worker --connect 192.0.2.10:7000 --retry 10
    nice walk energy-te --steps 500 --seed 7
    nice list
"""

from __future__ import annotations

import argparse
import json
import sys

from repro import nice, scenarios
from repro.config import (
    ALL_CHECKPOINT_MODES,
    ALL_HASH_MODES,
    ALL_START_METHODS,
    ALL_STORES,
    ALL_STRATEGIES,
    ALL_TRANSPORTS,
    HASH_DIGEST,
    STORE_MEMORY,
    NiceConfig,
)
from repro.apps.hostile import MODES as HOSTILE_MODES
from repro.mc.replay import format_trace
from repro.mc.store import CheckpointError

#: Scenario name -> builder: the registry the spawn/socket workers resolve
#: specs against (repro/scenarios.py).
SCENARIOS = scenarios.REGISTRY


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="nice",
        description="NICE: systematic testing of OpenFlow controller programs",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser("run", help="model-check a scenario")
    run_p.add_argument("scenario", choices=sorted(SCENARIOS))
    run_p.add_argument("--strategy", choices=ALL_STRATEGIES,
                       default="PKT-SEQ")
    run_p.add_argument("--pings", type=int, default=2,
                       help="ping pairs (ping scenario only)")
    run_p.add_argument("--mode", choices=HOSTILE_MODES, default="benign",
                       help="misbehavior mode (hostile scenario only)")
    run_p.add_argument("--arm-file", default=None,
                       help="hostile scenario: arm-counter file; each"
                            " misbehavior decrements it, -1 = always fire")
    run_p.add_argument("--max-transitions", type=int, default=None)
    run_p.add_argument("--max-pkt-sequence", type=int, default=2)
    run_p.add_argument("--max-outstanding", type=int, default=1)
    run_p.add_argument("--no-canonical", action="store_true",
                       help="disable the canonical switch representation "
                            "(NO-SWITCH-REDUCTION)")
    run_p.add_argument("--no-state-matching", action="store_true")
    run_p.add_argument("--workers", type=int, default=0,
                       help="search worker processes (0/1 = serial)")
    run_p.add_argument("--transport", choices=ALL_TRANSPORTS,
                       default="local",
                       help="how workers are reached: in-process pool or "
                            "TCP workers (see `nice worker`)")
    run_p.add_argument("--start-method", choices=ALL_START_METHODS,
                       default=None,
                       help="local-transport start method (default: fork "
                            "where available, else spawn)")
    run_p.add_argument("--listen", default="127.0.0.1:0", metavar="HOST:PORT",
                       help="socket transport listen address "
                            "(port 0 = pick a free port)")
    run_p.add_argument("--external-workers", action="store_true",
                       help="socket transport: wait for externally started "
                            "`nice worker`s instead of spawning local ones")
    run_p.add_argument("--no-affinity", action="store_true",
                       help="route sibling groups round-robin instead of to "
                            "the worker whose replay cache holds the parent")
    run_p.add_argument("--min-workers", type=int,
                       default=NiceConfig.min_workers, metavar="N",
                       help="abort (cleanly) if worker deaths shrink the "
                            "live pool below N workers (default 1: keep "
                            "searching on the last survivor)")
    run_p.add_argument("--max-worker-failures", type=int,
                       default=NiceConfig.max_worker_failures,
                       metavar="N",
                       help="tolerate at most N worker deaths before giving "
                            "up (default: unlimited while min-workers "
                            "survive; 0 = abort on the first death)")
    run_p.add_argument("--respawn-workers", action="store_true",
                       help="replace each dead worker with a fresh process "
                            "(the autoscaler hook; keeps the pool at size "
                            "through crash storms)")
    run_p.add_argument("--heartbeat-interval", type=float,
                       default=NiceConfig.heartbeat_interval, metavar="SEC",
                       help="worker liveness beat period (0 disables "
                            "heartbeats and hang detection)")
    run_p.add_argument("--task-deadline", type=float, default=None,
                       metavar="SEC",
                       help="hard per-task deadline after which a silent "
                            "worker is declared hung and killed (default: "
                            "derived from observed task round-trip times; "
                            "0 disables deadlines)")
    run_p.add_argument("--max-task-retries", type=int,
                       default=NiceConfig.max_task_retries, metavar="N",
                       help="worker deaths one sibling group may survive "
                            "before it is quarantined as a poison task")
    run_p.add_argument("--no-quarantine", action="store_true",
                       help="record poison tasks as diagnostics immediately "
                            "instead of retrying them in a sandboxed "
                            "subprocess")
    run_p.add_argument("--worker-memory-limit", type=int, default=None,
                       metavar="BYTES",
                       help="worker rss watchdog: above this, a worker "
                            "sheds its replay cache and, if still over, "
                            "recycles itself")
    run_p.add_argument("--fail-fast", action="store_true",
                       help="abort on exceptions raised by the model under "
                            "test instead of recording them as replayable "
                            "ModelError counterexamples")
    run_p.add_argument("--no-adaptive-batching", action="store_true",
                       help="use the static --batch-groups/--batch-nodes "
                            "task sizes instead of adapting them per worker "
                            "from observed task round-trip times")
    run_p.add_argument("--checkpoint-mode", choices=ALL_CHECKPOINT_MODES,
                       default="deepcopy",
                       help="frontier checkpointing: full deep copies or "
                            "trace-replay restoration")
    run_p.add_argument("--no-hash-memoization", action="store_true",
                       help="recanonicalize the full state on every hash "
                            "(the seed behavior)")
    run_p.add_argument("--hash-mode", choices=ALL_HASH_MODES,
                       default=HASH_DIGEST,
                       help="state hashing: combine cached per-component "
                            "digests (digest) or render the whole canonical "
                            "tuple per call (full, the pre-digest baseline)")
    run_p.add_argument("--no-fast-clone", action="store_true",
                       help="checkpoint with full deepcopy instead of "
                            "component-wise copies (the seed behavior)")
    run_p.add_argument("--no-cow-clone", action="store_true",
                       help="copy checkpoints eagerly instead of "
                            "copy-on-write (the pre-CoW baseline)")
    run_p.add_argument("--batch-groups", type=int,
                       default=NiceConfig.batch_groups, metavar="N",
                       help="parallel scheduler: max sibling groups per "
                            "worker task")
    run_p.add_argument("--batch-nodes", type=int,
                       default=NiceConfig.batch_nodes, metavar="N",
                       help="parallel scheduler: max total nodes per "
                            "worker task")
    run_p.add_argument("--store", choices=ALL_STORES, default=STORE_MEMORY,
                       help="explored-set storage: in-memory hash table, or "
                            "digest-prefix shards spilling to disk under an "
                            "LRU memory budget")
    run_p.add_argument("--store-shards", type=int,
                       default=NiceConfig.store_shards, metavar="N",
                       help="sharded store: number of digest-prefix shards")
    run_p.add_argument("--store-memory-budget", type=int,
                       default=NiceConfig.store_memory_budget, metavar="N",
                       help="sharded store: digests kept resident in memory "
                            "(the rest spill to disk)")
    run_p.add_argument("--store-bloom-bits", type=int,
                       default=NiceConfig.store_bloom_bits, metavar="N",
                       help="sharded store: per-shard Bloom filter size in "
                            "bits (rounded up to a power of two; 0 disables)")
    run_p.add_argument("--no-worker-bloom", action="store_true",
                       help="parallel search: do not broadcast the explored "
                            "set's Bloom summary to workers (children the "
                            "master probably holds then ship in full "
                            "instead of as digest-only stubs; the explored "
                            "state space is identical either way)")
    run_p.add_argument("--checkpoint-dir", default=None, metavar="DIR",
                       help="periodically snapshot the master state "
                            "(explored set, frontier, stats, config) into "
                            "DIR; continue later with `nice resume DIR`")
    run_p.add_argument("--checkpoint-interval", type=int,
                       default=NiceConfig.checkpoint_interval, metavar="N",
                       help="states explored between checkpoints (SIGTERM "
                            "also triggers one)")
    run_p.add_argument("--all-violations", action="store_true",
                       help="keep searching after the first violation")
    run_p.add_argument("--trace", action="store_true",
                       help="print the violation trace(s)")
    run_p.add_argument("--json", action="store_true",
                       help="machine-readable output")

    resume_p = sub.add_parser(
        "resume",
        help="continue a checkpointed search (see `nice run "
             "--checkpoint-dir`); the resumed run explores the identical "
             "state space an uninterrupted run would have")
    resume_p.add_argument("checkpoint_dir", metavar="DIR",
                          help="checkpoint directory written by a previous "
                               "run; the newest valid snapshot is used "
                               "(torn ones fall back to the previous)")
    resume_p.add_argument("--workers", type=int, default=None,
                          help="override the checkpointed worker count")
    resume_p.add_argument("--transport", choices=ALL_TRANSPORTS,
                          default=None,
                          help="override the checkpointed transport — a "
                               "search may resume on a different one")
    resume_p.add_argument("--start-method", choices=ALL_START_METHODS,
                          default=None,
                          help="override the local-transport start method")
    resume_p.add_argument("--store", choices=ALL_STORES, default=None,
                          help="override the explored-set store")
    resume_p.add_argument("--checkpoint-dir", dest="new_checkpoint_dir",
                          default=None, metavar="DIR",
                          help="keep checkpointing, into DIR (default: the "
                               "directory being resumed from)")
    resume_p.add_argument("--checkpoint-interval", type=int, default=None,
                          metavar="N",
                          help="override the checkpoint interval")
    resume_p.add_argument("--no-checkpoints", action="store_true",
                          help="do not write further checkpoints")
    resume_p.add_argument("--trace", action="store_true",
                          help="print the violation trace(s)")
    resume_p.add_argument("--json", action="store_true",
                          help="machine-readable output")

    walk_p = sub.add_parser("walk", help="random walk on system states")
    walk_p.add_argument("scenario", choices=sorted(SCENARIOS))
    walk_p.add_argument("--steps", type=int, default=200)
    walk_p.add_argument("--seed", type=int, default=0)

    worker_p = sub.add_parser(
        "worker",
        help="serve a socket-transport master (`nice run --transport "
             "socket`) as one search worker")
    worker_p.add_argument("--connect", required=True, metavar="HOST:PORT",
                          help="address the master is listening on")
    worker_p.add_argument("--retry", type=int, default=5, metavar="N",
                          help="connection attempts before giving up "
                               "(jittered exponential backoff between "
                               "attempts; 1 = a single try)")
    worker_p.add_argument("--retry-max-wait", type=float, default=30.0,
                          metavar="SEC",
                          help="backoff ceiling between connection attempts")

    ckpt_p = sub.add_parser(
        "checkpoints",
        help="inspect a checkpoint directory: list snapshots, validate "
             "each (sizes + checksums), and show what a resume would load")
    ckpt_p.add_argument("checkpoint_dir", metavar="DIR")
    ckpt_p.add_argument("--json", action="store_true",
                        help="machine-readable output")

    sub.add_parser("list", help="list available scenarios")
    return parser


def make_config(args) -> NiceConfig:
    return NiceConfig(
        strategy=args.strategy,
        max_pkt_sequence=args.max_pkt_sequence,
        max_outstanding=args.max_outstanding,
        canonical_flow_tables=not args.no_canonical,
        state_matching=not args.no_state_matching,
        max_transitions=args.max_transitions,
        stop_at_first_violation=not args.all_violations,
        workers=args.workers,
        transport=args.transport,
        start_method=args.start_method,
        worker_address=args.listen,
        spawn_socket_workers=not args.external_workers,
        affinity=not args.no_affinity,
        min_workers=args.min_workers,
        max_worker_failures=args.max_worker_failures,
        respawn_workers=args.respawn_workers,
        heartbeat_interval=args.heartbeat_interval,
        task_deadline=args.task_deadline,
        max_task_retries=args.max_task_retries,
        quarantine=not args.no_quarantine,
        worker_memory_limit=args.worker_memory_limit,
        fail_fast=args.fail_fast,
        adaptive_batching=not args.no_adaptive_batching,
        checkpoint_mode=args.checkpoint_mode,
        hash_memoization=not args.no_hash_memoization,
        hash_mode=args.hash_mode,
        fast_clone=not args.no_fast_clone,
        cow_clone=not args.no_cow_clone,
        batch_groups=args.batch_groups,
        batch_nodes=args.batch_nodes,
        store=args.store,
        store_shards=args.store_shards,
        store_memory_budget=args.store_memory_budget,
        store_bloom_bits=args.store_bloom_bits,
        store_bloom_broadcast=not args.no_worker_bloom,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_interval=args.checkpoint_interval,
    )


def build_scenario(name: str, args, config: NiceConfig | None):
    builder = SCENARIOS[name]
    if name == "ping":
        return builder(pings=getattr(args, "pings", 2), config=config)
    if name == "hostile":
        return builder(mode=getattr(args, "mode", "benign"),
                       arm_file=getattr(args, "arm_file", None),
                       config=config)
    return builder(config=config)


def cmd_run(args) -> int:
    config = make_config(args)
    if args.workers <= 1:
        ignored = [flag for flag, is_default in [
            ("--transport", args.transport == "local"),
            ("--start-method", args.start_method is None),
            ("--listen", args.listen == "127.0.0.1:0"),
            ("--external-workers", not args.external_workers),
            ("--no-affinity", not args.no_affinity),
            ("--min-workers", args.min_workers == NiceConfig.min_workers),
            ("--max-worker-failures",
             args.max_worker_failures == NiceConfig.max_worker_failures),
            ("--respawn-workers", not args.respawn_workers),
            ("--heartbeat-interval",
             args.heartbeat_interval == NiceConfig.heartbeat_interval),
            ("--task-deadline", args.task_deadline is None),
            ("--max-task-retries",
             args.max_task_retries == NiceConfig.max_task_retries),
            ("--no-quarantine", not args.no_quarantine),
            ("--worker-memory-limit", args.worker_memory_limit is None),
            ("--no-adaptive-batching", not args.no_adaptive_batching),
            ("--batch-groups", args.batch_groups == NiceConfig.batch_groups),
            ("--batch-nodes", args.batch_nodes == NiceConfig.batch_nodes),
            ("--no-worker-bloom", not args.no_worker_bloom),
        ] if not is_default]
        if ignored:
            print(f"warning: {', '.join(ignored)} have no effect without"
                  f" --workers N (N > 1); running the serial engine",
                  file=sys.stderr)
    scenario = build_scenario(args.scenario, args, config)
    result = nice.run(scenario)
    return _report(result, args, scenario.name, config.strategy)


def _report(result, args, scenario_name: str, strategy: str) -> int:
    """Shared `nice run` / `nice resume` result rendering."""
    if args.json:
        payload = {
            "scenario": scenario_name,
            "strategy": strategy,
            "engine": result.engine,
            "workers": result.workers,
            "transitions": result.transitions_executed,
            "unique_states": result.unique_states,
            "wall_time": result.wall_time,
            "hash_hits": result.hash_hits,
            "hash_misses": result.hash_misses,
            "bytes_hashed": result.bytes_hashed,
            "cow_copied": result.cow_copied,
            "worker_failures": result.worker_failures,
            "tasks_retried": result.tasks_retried,
            "groups_reassigned": result.groups_reassigned,
            "elastic_joins": result.elastic_joins,
            "workers_respawned": result.workers_respawned,
            "workers_hung": result.workers_hung,
            "deadline_kills": result.deadline_kills,
            "tasks_quarantined": result.tasks_quarantined,
            "model_errors": result.model_errors,
            "quarantined_tasks": [
                {"trace_length": len(q.trace), "attempts": q.attempts,
                 "reason": q.reason}
                for q in result.quarantined_tasks
            ],
            "worker_tasks": {str(w): n
                             for w, n in sorted(result.worker_tasks.items())},
            "store": result.store,
            "store_hits": result.store_hits,
            "store_spill_reads": result.store_spill_reads,
            "store_evictions": result.store_evictions,
            "store_bloom_negatives": result.store_bloom_negatives,
            "bloom_prefilter_drops": result.bloom_prefilter_drops,
            "bloom_prefilter_fp": result.bloom_prefilter_fp,
            "result_bytes_saved": result.result_bytes_saved,
            "result_payload_bytes": result.result_payload_bytes,
            "checkpoints_written": result.checkpoints_written,
            "checkpoint_seconds": result.checkpoint_seconds,
            "checkpoint_bytes_written": result.checkpoint_bytes_written,
            "resumed_from": result.resumed_from,
            "violations": [
                {"property": v.property_name, "message": v.message,
                 "trace_length": len(v.trace)}
                for v in result.violations
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        print(f"scenario : {scenario_name}")
        print(f"strategy : {strategy}")
        print(result.summary())
        if args.trace:
            for index, violation in enumerate(result.violations):
                print(f"\n--- trace of violation {index} "
                      f"({violation.property_name}) ---")
                print(format_trace(violation.trace))
    return 1 if result.found_violation else 0


def cmd_resume(args) -> int:
    overrides = {}
    if args.workers is not None:
        overrides["workers"] = args.workers
    if args.transport is not None:
        overrides["transport"] = args.transport
    if args.start_method is not None:
        overrides["start_method"] = args.start_method
    if args.store is not None:
        overrides["store"] = args.store
    if args.checkpoint_interval is not None:
        overrides["checkpoint_interval"] = args.checkpoint_interval
    if args.no_checkpoints:
        overrides["checkpoint_dir"] = None
    elif args.new_checkpoint_dir is not None:
        overrides["checkpoint_dir"] = args.new_checkpoint_dir
    try:
        scenario, result = nice.resume(args.checkpoint_dir, **overrides)
    except CheckpointError as exc:
        print(f"nice resume: {exc}", file=sys.stderr)
        return 2
    return _report(result, args, scenario.name, scenario.config.strategy)


def cmd_walk(args) -> int:
    scenario = build_scenario(args.scenario, args, None)
    result = nice.random_walk(scenario, steps=args.steps, seed=args.seed)
    print(result.summary())
    return 1 if result.found_violation else 0


def cmd_list() -> int:
    for name in sorted(SCENARIOS):
        print(name)
    return 0


def cmd_worker(args) -> int:
    from repro.mc.transport.socket import run_worker

    return run_worker(args.connect, retries=args.retry,
                      retry_max_wait=args.retry_max_wait)


def cmd_checkpoints(args) -> int:
    from repro.mc.store import list_checkpoints, validate_checkpoint

    entries = list_checkpoints(args.checkpoint_dir)
    report = []
    newest_valid = None
    for path in entries:
        try:
            checkpoint = validate_checkpoint(path)
        except CheckpointError as exc:
            report.append({"name": path.name, "valid": False,
                           "error": str(exc)})
            continue
        spec = checkpoint.spec
        report.append({
            "name": path.name,
            "valid": True,
            "scenario": spec.name if spec is not None else None,
            "states": checkpoint.states,
            "frontier": len(checkpoint.frontier),
            "transitions": checkpoint.stats.get("transitions_executed"),
            "violations": len(checkpoint.stats.get("violations", [])),
            "format": checkpoint.format,
            # Bytes this snapshot actually wrote (hard-linked segments
            # excluded) — "delta" snapshots show a small number here even
            # for a large explored set.  None for format-1 snapshots.
            "bytes_written": checkpoint.bytes_written,
        })
        newest_valid = path.name
    if args.json:
        print(json.dumps({"checkpoint_dir": args.checkpoint_dir,
                          "resume_would_load": newest_valid,
                          "checkpoints": report}, indent=2))
    else:
        if not entries:
            print(f"no checkpoints under {args.checkpoint_dir}")
        for entry in report:
            if entry["valid"]:
                written = entry["bytes_written"]
                delta = ("" if written is None
                         else f" written={written}B (delta)")
                print(f"{entry['name']}: ok  scenario={entry['scenario']}"
                      f" states={entry['states']}"
                      f" frontier={entry['frontier']}"
                      f" transitions={entry['transitions']}"
                      f" violations={entry['violations']}"
                      f" format={entry['format']}{delta}")
            else:
                print(f"{entry['name']}: INVALID ({entry['error']})")
        if newest_valid is not None:
            print(f"resume would load: {newest_valid}")
    return 0 if newest_valid is not None else 2


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return cmd_run(args)
    if args.command == "resume":
        return cmd_resume(args)
    if args.command == "walk":
        return cmd_walk(args)
    if args.command == "worker":
        return cmd_worker(args)
    if args.command == "checkpoints":
        return cmd_checkpoints(args)
    if args.command == "list":
        return cmd_list()
    return 2


if __name__ == "__main__":
    sys.exit(main())
