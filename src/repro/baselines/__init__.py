"""Baseline model checkers for the Section 7 comparison.

The paper contrasts NICE with SPIN and Java PathFinder.  Neither tool is
available offline, so this package reproduces the two *behaviors* the paper
reports (see DESIGN.md's substitution table):

* :mod:`repro.baselines.spin_like` — a checker over the same model that
  stores **full serialized states** instead of hashes.  SPIN explores an
  abstract model efficiently but "with 7 pings runs out of memory": the
  memory footprint of full-state storage is the comparison axis.
* :mod:`repro.baselines.jpf_like` — a checker that schedules controller
  handlers at **statement granularity** (every controller API call is a
  separate scheduling point), the way JPF interleaves Java threads.  The
  resulting explosion of interleavings is why "taken as is, JPF is slower
  than NICE by a factor of 290 with 3 pings".
"""

from repro.baselines.jpf_like import JpfLikeSearcher, JpfSystem
from repro.baselines.spin_like import SpinLikeSearcher

__all__ = ["JpfLikeSearcher", "JpfSystem", "SpinLikeSearcher"]
