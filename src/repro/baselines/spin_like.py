"""SPIN-like baseline: full-state storage.

SPIN keeps every explored state vector in memory (modulo compression); NICE
deliberately stores only hashes and replays transition sequences to restore
states (Section 6: "this validates our decision to maintain hashes of system
states instead of keeping entire system states").

This checker runs the same search as NICE-MC but stores the complete
canonical serialization of every explored state, and reports the bytes
consumed by the explored-state set — the quantity that makes SPIN run out
of memory at 7 pings in the paper.  An optional ``memory_limit`` aborts the
search when the stored-state budget is exhausted, reproducing SPIN's
out-of-memory failure mode.
"""

from __future__ import annotations

import time

from repro.config import NiceConfig
from repro.mc.canonical import state_string
from repro.mc.strategies import Strategy


class SpinLikeResult:
    """Search statistics plus the memory axis."""

    def __init__(self):
        self.transitions_executed = 0
        self.unique_states = 0
        self.stored_bytes = 0
        self.hash_bytes = 0
        self.wall_time = 0.0
        self.out_of_memory = False

    def __repr__(self):
        return (f"SpinLikeResult(transitions={self.transitions_executed},"
                f" unique={self.unique_states},"
                f" stored={self.stored_bytes}B vs hashes={self.hash_bytes}B,"
                f" oom={self.out_of_memory})")


class SpinLikeSearcher:
    """Exhaustive DFS storing full state vectors."""

    #: Bytes per stored hash in NICE's scheme (md5 hex digest).
    HASH_BYTES = 32

    def __init__(self, system_factory, config: NiceConfig | None = None,
                 memory_limit: int | None = None):
        self.system_factory = system_factory
        self.config = config or NiceConfig()
        self.memory_limit = memory_limit
        self.strategy = Strategy()

    def run(self) -> SpinLikeResult:
        result = SpinLikeResult()
        start = time.perf_counter()
        initial = self.system_factory()
        initial_vector = state_string(initial.canonical_state())
        stored: set[str] = {initial_vector}
        result.stored_bytes = len(initial_vector)
        frontier = [initial]
        while frontier:
            system = frontier.pop()
            enabled = self.strategy.filter(system, system.enabled_transitions())
            for transition in enabled:
                child = system.clone()
                child.execute(transition)
                result.transitions_executed += 1
                if (self.config.max_transitions is not None
                        and result.transitions_executed
                        >= self.config.max_transitions):
                    frontier.clear()
                    break
                vector = state_string(child.canonical_state())
                if vector in stored:
                    continue
                stored.add(vector)
                result.stored_bytes += len(vector)
                if (self.memory_limit is not None
                        and result.stored_bytes > self.memory_limit):
                    result.out_of_memory = True
                    frontier.clear()
                    break
                frontier.append(child)
        result.unique_states = len(stored)
        result.hash_bytes = result.unique_states * self.HASH_BYTES
        result.wall_time = time.perf_counter() - start
        return result
