"""JPF-like baseline: statement-granularity handler interleaving.

Java PathFinder represents system concurrency with Java threads and explores
scheduling points between bytecode instructions touching shared state.
Translated to this model: a controller handler is not atomic — every
OpenFlow API call it makes is a separate scheduling point, and any other
component may run in between.

"The reason is that JPF uses Java threads to represent system concurrency...
JPF leads to too many possible thread interleavings to explore even in our
small example" (Section 7).  This baseline reproduces that blow-up: with a
handler that issues k messages, every other enabled transition can interleave
between consecutive issues, multiplying the interleaving space.

:class:`JpfSystem` wraps the normal system: ``ctrl_handle`` runs the handler
against a *buffering* API, then each buffered operation becomes its own
``apply_op`` transition.
"""

from __future__ import annotations

import time

from repro.config import NiceConfig
from repro.mc import transitions as tk
from repro.mc.strategies import Strategy
from repro.mc.system import System
from repro.mc.transitions import Transition


class _BufferingAPI:
    """Records API operations for later, one-at-a-time application."""

    def __init__(self, ops: list):
        self._ops = ops

    def __getattr__(self, name):
        def record(*args, **kwargs):
            self._ops.append((name, args, kwargs))

        return record


class JpfSystem(System):
    """A system whose controller handlers interleave at statement level."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        #: Operations issued by the in-progress handler, not yet applied.
        self.pending_ops: list = []

    def enabled_transitions(self):
        if self.pending_ops:
            # The handler "thread" is at a scheduling point: applying its
            # next statement competes with every other enabled transition.
            enabled = super().enabled_transitions()
            enabled.append(Transition("apply_op", "ctrl", 0))
            return enabled
        return super().enabled_transitions()

    def execute(self, transition):
        if transition.kind == "apply_op":
            name, args, kwargs = self.pending_ops.pop(0)
            getattr(self.api(), name)(*args, **kwargs)
            return
        if transition.kind == tk.CTRL_HANDLE:
            # The buffering API bypasses the stamping wrapper, so invalidate
            # the handled switch and controller state explicitly — and fetch
            # the switch only afterwards (copy-on-write may replace it).
            self._dirty(("sw", transition.actor), "app", "ctrl")
            switch = self._switch(transition.actor)
            ops: list = []
            self.runtime.handle_message(_BufferingAPI(ops), switch)
            self.pending_ops.extend(ops)
            return
        super().execute(transition)

    def canonical_extra(self):
        # Folded into the state hash in both hash modes (the digest
        # combiner includes canonical_extra alongside the component tree).
        return tuple(
            (name, repr(args), repr(sorted(kwargs.items())))
            for name, args, kwargs in self.pending_ops
        )

    def clone(self):
        new = super().clone()
        new.__class__ = JpfSystem
        new.pending_ops = list(self.pending_ops)
        return new


class JpfLikeResult:
    def __init__(self):
        self.transitions_executed = 0
        self.unique_states = 0
        self.wall_time = 0.0
        self.completed = True

    def __repr__(self):
        return (f"JpfLikeResult(transitions={self.transitions_executed},"
                f" unique={self.unique_states}, t={self.wall_time:.1f}s)")


class JpfLikeSearcher:
    """Exhaustive DFS over the statement-interleaved system."""

    def __init__(self, system_factory, config: NiceConfig | None = None):
        """``system_factory`` must build a :class:`JpfSystem`."""
        self.system_factory = system_factory
        self.config = config or NiceConfig()
        self.strategy = Strategy()

    def run(self) -> JpfLikeResult:
        result = JpfLikeResult()
        start = time.perf_counter()
        initial = self.system_factory()
        explored = {initial.state_hash()}
        frontier = [initial]
        while frontier:
            system = frontier.pop()
            enabled = self.strategy.filter(system, system.enabled_transitions())
            for transition in enabled:
                child = system.clone()
                child.execute(transition)
                result.transitions_executed += 1
                if (self.config.max_transitions is not None
                        and result.transitions_executed
                        >= self.config.max_transitions):
                    result.completed = False
                    frontier.clear()
                    break
                digest = child.state_hash()
                if digest in explored:
                    continue
                explored.add(digest)
                frontier.append(child)
        result.unique_states = len(explored)
        result.wall_time = time.perf_counter() - start
        return result
