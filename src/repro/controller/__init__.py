"""The NOX-like controller platform.

The paper tests unmodified Python applications written for the NOX
controller.  This package provides the equivalent platform surface: an
:class:`~repro.controller.app.App` base class whose handlers mirror NOX's
event API (``packet_in``, ``switch_join``, ``switch_leave``,
``port_stats_in``, ...) and a :class:`~repro.controller.api.ControllerAPI`
with the calls the paper's applications use (``install_rule``,
``send_packet_out``, ``flood_packet``, statistics queries).

Handlers execute atomically — one handler invocation is one model-checking
transition (Section 2.2.1).
"""

from repro.controller.api import (
    ControllerAPI,
    LiveControllerAPI,
    RecordingControllerAPI,
    DROP,
    FLOOD,
    OUTPUT,
)
from repro.controller.app import App
from repro.controller.runtime import ControllerRuntime

__all__ = [
    "App",
    "ControllerAPI",
    "ControllerRuntime",
    "DROP",
    "FLOOD",
    "LiveControllerAPI",
    "OUTPUT",
    "RecordingControllerAPI",
]
