"""Base class for controller applications under test.

An application is a set of event handlers (Section 2.2.1) that execute
atomically and keep their state in instance attributes — the equivalent of
``ctrl_state`` in Figure 3.  NICE treats each handler invocation as one
transition and canonically serializes ``vars(app)`` as the controller's
component state.

Handlers receive the :class:`~repro.controller.api.ControllerAPI` explicitly
rather than storing it, so application state stays a pure value (deep-copy
and hashing never see channel references).
"""

from __future__ import annotations

import copy


class App:
    """Subclass and override the handlers your application needs."""

    name = "app"

    #: Optional user hook for the FLOW-IR strategy: ``is_same_flow(pkt_a,
    #: loc_a, pkt_b, loc_b)`` returns whether two packets belong to the same
    #: group (Section 4).  ``None`` selects the default microflow grouping.
    is_same_flow = None

    def boot(self, api, topo) -> None:
        """Called once before the search starts, with the static topology."""

    def switch_join(self, api, sw_id: str, stats: dict) -> None:
        """A switch joined the network."""

    def switch_leave(self, api, sw_id: str) -> None:
        """A switch left the network."""

    def packet_in(self, api, sw_id: str, inport: int, pkt, bufid: int,
                  reason: str) -> None:
        """A packet arrived at the controller (table miss or rule action)."""

    def port_stats_in(self, api, sw_id: str, stats: dict, xid: int = 0) -> None:
        """A statistics reply arrived (the paper's ``process_stats``)."""

    def port_status(self, api, sw_id: str, port: int, is_up: bool) -> None:
        """A port changed state."""

    def flow_removed(self, api, sw_id: str, match, priority: int) -> None:
        """A rule expired or was evicted."""

    def barrier_reply(self, api, sw_id: str, xid: int = 0) -> None:
        """A barrier completed."""

    def external_events(self) -> list[str]:
        """External one-shot events the model may fire (e.g. an operator
        reconfiguration).  Each becomes a ``ctrl_event`` transition that
        fires at most once per execution."""
        return []

    def handle_event(self, api, event: str) -> None:
        """Handle one of :meth:`external_events`."""

    def state_vars(self) -> dict:
        """The controller state to serialize; defaults to all attributes."""
        return dict(vars(self))

    def clone(self) -> "App":
        """Checkpoint copy of the controller state (``System.clone``).

        The default deep-copies the instance — always safe for arbitrary
        user applications.  The bundled apps override it with hand-rolled
        copies; override it in your app too if cloning shows up in search
        profiles.
        """
        return copy.deepcopy(self)
