"""Dispatching OpenFlow events to application handlers.

The runtime is the controller-side component of the model: it owns the
application instance and turns switch-to-controller messages into handler
invocations.  One ``ctrl_handle(sw)`` transition dequeues exactly one message
from that switch's channel and runs the matching handler to completion
(handler atomicity, Section 2.2.1).
"""

from __future__ import annotations

from repro.errors import ControllerError
from repro.openflow.messages import (
    BarrierReply,
    FlowRemoved,
    PacketIn,
    PortStatus,
    StatsReply,
)


class ControllerRuntime:
    """The controller component: an application plus message dispatch."""

    def __init__(self, app):
        self.app = app

    def boot(self, api, topo, switch_ids: list[str]) -> None:
        """Deliver initial events: app boot, then one join per switch.

        Joins arrive in sorted order so initialization is deterministic.
        """
        self.app.boot(api, topo)
        for sw_id in sorted(switch_ids):
            self.app.switch_join(api, sw_id, {})

    def can_handle(self, switch) -> bool:
        return len(switch.ofp_out) > 0

    def peek_kind(self, switch) -> str | None:
        """The kind of the next pending message ('packet_in', 'stats', ...)."""
        if not switch.ofp_out:
            return None
        message = switch.ofp_out.peek()
        if isinstance(message, PacketIn):
            return "packet_in"
        if isinstance(message, StatsReply):
            return "stats"
        if isinstance(message, PortStatus):
            return "port_status"
        if isinstance(message, BarrierReply):
            return "barrier"
        if isinstance(message, FlowRemoved):
            return "flow_removed"
        return "other"

    def handle_message(self, api, switch) -> None:
        """Dequeue one message from ``switch`` and invoke its handler."""
        if not switch.ofp_out:
            raise ControllerError(
                f"no pending message from switch {switch.switch_id}"
            )
        message = switch.ofp_out.dequeue()
        self.dispatch(api, message)

    def dispatch(self, api, message) -> None:
        app = self.app
        if isinstance(message, PacketIn):
            app.packet_in(api, message.switch, message.in_port,
                          message.packet, message.buffer_id, message.reason)
        elif isinstance(message, StatsReply):
            app.port_stats_in(api, message.switch, message.stats, xid=message.xid)
        elif isinstance(message, PortStatus):
            app.port_status(api, message.switch, message.port, message.is_up)
        elif isinstance(message, BarrierReply):
            app.barrier_reply(api, message.switch, xid=message.xid)
        elif isinstance(message, FlowRemoved):
            app.flow_removed(api, message.switch, message.match, message.priority)
        else:
            raise ControllerError(f"controller cannot dispatch {message!r}")
