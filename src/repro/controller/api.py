"""The controller-side OpenFlow API surface.

Applications call these methods from inside event handlers.  Two
implementations share the interface:

* :class:`LiveControllerAPI` — enqueues real OpenFlow messages onto the
  per-switch control channels of a :class:`repro.mc.system.System`; the
  switch applies them when the model checker schedules ``process_of``.
* :class:`RecordingControllerAPI` — used during concolic execution: records
  the calls (so path summaries can report what a handler *would* do) without
  touching any system state.

``OUTPUT`` / ``FLOOD`` / ``DROP`` constants let applications keep the
paper's ``actions = [OUTPUT, outport]`` idiom from Figure 3.
"""

from __future__ import annotations

from repro.errors import ControllerError
from repro.openflow.actions import (
    Action,
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    ActionTable,
)
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierRequest,
    FlowMod,
    OFPFC_ADD,
    OFPFC_DELETE,
    OFPFC_DELETE_STRICT,
    OFPST_PORT,
    PacketOut,
    StatsRequest,
)
from repro.openflow.packet import Packet
from repro.openflow.rules import DEFAULT_PRIORITY, PERMANENT

OUTPUT = "output"
FLOOD = "flood"
DROP = "drop"
CONTROLLER = "controller"


def normalize_match(match) -> Match:
    """Accept a :class:`Match` or the Figure 3 field-dict style."""
    if isinstance(match, Match):
        return match
    if isinstance(match, dict):
        return Match.from_dict(match)
    raise ControllerError(f"cannot interpret match {match!r}")


def normalize_actions(actions) -> list[Action]:
    """Accept Action objects, or the paper's ``[OUTPUT, port]`` pair style."""
    if actions is None:
        return []
    if (
        len(actions) == 2
        and actions[0] in (OUTPUT,)
        and isinstance(actions[1], int)
    ):
        return [ActionOutput(actions[1])]
    out: list[Action] = []
    for item in actions:
        if isinstance(item, Action):
            out.append(item)
        elif item == FLOOD:
            out.append(ActionFlood())
        elif item == DROP:
            out.append(ActionDrop())
        elif item == CONTROLLER:
            out.append(ActionController())
        else:
            raise ControllerError(f"cannot interpret action {item!r}")
    return out


class ControllerAPI:
    """Abstract interface; see module docstring."""

    def install_rule(self, sw_id: str, match, actions,
                     soft_timer: int = PERMANENT, hard_timer: int = PERMANENT,
                     priority: int = DEFAULT_PRIORITY, cookie: int = 0) -> None:
        raise NotImplementedError

    def delete_rules(self, sw_id: str, match, priority: int | None = None,
                     strict: bool = False) -> None:
        raise NotImplementedError

    def send_packet_out(self, sw_id: str, pkt: Packet | None = None,
                        bufid: int | None = None, actions=None) -> None:
        raise NotImplementedError

    def flood_packet(self, sw_id: str, pkt: Packet | None,
                     bufid: int | None) -> None:
        raise NotImplementedError

    def drop_buffer(self, sw_id: str, bufid: int) -> None:
        raise NotImplementedError

    def query_port_stats(self, sw_id: str, xid: int = 0) -> None:
        raise NotImplementedError

    def send_barrier(self, sw_id: str, xid: int = 0) -> None:
        raise NotImplementedError


class LiveControllerAPI(ControllerAPI):
    """Enqueues OpenFlow messages on the system's control channels."""

    def __init__(self, system):
        self._system = system

    def _channel(self, sw_id: str):
        switch = self._system.switches.get(sw_id)
        if switch is None:
            raise ControllerError(f"unknown switch {sw_id!r}")
        return switch.ofp_in

    def install_rule(self, sw_id, match, actions, soft_timer=PERMANENT,
                     hard_timer=PERMANENT, priority=DEFAULT_PRIORITY,
                     cookie=0):
        self._channel(sw_id).enqueue(
            FlowMod(
                OFPFC_ADD,
                normalize_match(match),
                normalize_actions(actions),
                priority=priority,
                idle_timeout=soft_timer,
                hard_timeout=hard_timer,
                cookie=cookie,
            )
        )

    def delete_rules(self, sw_id, match, priority=None, strict=False):
        command = OFPFC_DELETE_STRICT if strict else OFPFC_DELETE
        self._channel(sw_id).enqueue(
            FlowMod(command, normalize_match(match),
                    priority=priority if priority is not None else DEFAULT_PRIORITY)
        )

    def send_packet_out(self, sw_id, pkt=None, bufid=None, actions=None):
        """Release a buffered packet (or inject a raw one).

        ``actions=None`` means "process through the flow table"
        (OFPP_TABLE) — how NOX's pyswitch makes the packet follow the rule
        it just installed.
        """
        acts = [ActionTable()] if actions is None else normalize_actions(actions)
        self._channel(sw_id).enqueue(PacketOut(bufid, pkt, acts))

    def flood_packet(self, sw_id, pkt, bufid):
        self._channel(sw_id).enqueue(PacketOut(bufid, pkt, [ActionFlood()]))

    def drop_buffer(self, sw_id, bufid):
        """Consume a buffered packet without forwarding it anywhere."""
        self._channel(sw_id).enqueue(PacketOut(bufid, None, []))

    def query_port_stats(self, sw_id, xid=0):
        self._channel(sw_id).enqueue(StatsRequest(OFPST_PORT, xid=xid))

    def send_barrier(self, sw_id, xid=0):
        self._channel(sw_id).enqueue(BarrierRequest(xid=xid))


class RecordingControllerAPI(ControllerAPI):
    """Records API calls; used while concolically executing a handler."""

    def __init__(self):
        self.calls: list[tuple] = []

    def install_rule(self, sw_id, match, actions, soft_timer=PERMANENT,
                     hard_timer=PERMANENT, priority=DEFAULT_PRIORITY,
                     cookie=0):
        self.calls.append(("install_rule", sw_id))

    def delete_rules(self, sw_id, match, priority=None, strict=False):
        self.calls.append(("delete_rules", sw_id))

    def send_packet_out(self, sw_id, pkt=None, bufid=None, actions=None):
        self.calls.append(("send_packet_out", sw_id))

    def flood_packet(self, sw_id, pkt, bufid):
        self.calls.append(("flood_packet", sw_id))

    def drop_buffer(self, sw_id, bufid):
        self.calls.append(("drop_buffer", sw_id))

    def query_port_stats(self, sw_id, xid=0):
        self.calls.append(("query_port_stats", sw_id))

    def send_barrier(self, sw_id, xid=0):
        self.calls.append(("send_barrier", sw_id))
