"""The NICE front end (Figure 2).

Input: an OpenFlow controller program, a network topology, and correctness
properties.  Output: traces of property violations.

>>> from repro import nice, scenarios
>>> scenario = scenarios.pyswitch_direct_path()
>>> result = nice.run(scenario)          # doctest: +SKIP
>>> result.found_violation               # doctest: +SKIP
True
"""

from __future__ import annotations

from repro.config import NiceConfig
from repro.mc.scheduler import ParallelSearcher
from repro.mc.search import Searcher, SearchResult
from repro.mc.strategies import make_strategy
from repro.mc.system import System
from repro.sym.engine import ConcolicEngine


class Scenario:
    """A complete NICE input: topology, app, hosts, properties, config.

    ``app_factory`` / ``hosts_factory`` are zero-argument callables building
    *fresh* instances, so searches and replays always start from identical
    initial states.

    ``spec`` (set by the ``@registered`` builders in ``repro/scenarios.py``)
    is the scenario's portable identity — a
    :class:`~repro.mc.wire.ScenarioSpec` that spawn/socket workers use to
    rebuild the initial :class:`System` by registry name.  Hand-built
    scenarios have ``spec=None`` and can still search in parallel through
    the ``fork`` transport, which inherits the factories.
    """

    def __init__(self, topo, app_factory, hosts_factory, properties,
                 config: NiceConfig | None = None, name: str = "scenario",
                 spec=None):
        self.topo = topo
        self.app_factory = app_factory
        self.hosts_factory = hosts_factory
        self.properties = properties
        self.config = config or NiceConfig()
        self.name = name
        self.spec = spec

    def system_factory(self) -> System:
        system = System(self.topo, self.app_factory(),
                        self.hosts_factory(), self.config)
        system.boot()
        return system

    def make_searcher(self) -> Searcher:
        discoverer = None
        if self.config.use_symbolic_execution:
            discoverer = ConcolicEngine(max_paths=self.config.max_paths)
        strategy = make_strategy(self.config, self.app_factory())
        if self.config.workers > 1:
            return ParallelSearcher(
                self.system_factory, self.properties, self.config,
                strategy=strategy, discoverer=discoverer,
                scenario_spec=self.spec,
            )
        return Searcher(
            self.system_factory, self.properties, self.config,
            strategy=strategy, discoverer=discoverer,
            scenario_spec=self.spec,
        )

    def __repr__(self):
        return f"Scenario({self.name})"


def run(scenario: Scenario) -> SearchResult:
    """Perform the state-space search and return violations + statistics."""
    return scenario.make_searcher().run()


def resume(checkpoint_path, scenario: Scenario | None = None,
           **config_overrides):
    """Reconstruct a checkpointed search mid-flight and continue it.

    Loads the newest *valid* checkpoint under ``checkpoint_path`` (torn
    snapshots fall back to the previous good one), rebuilds the scenario
    from its stored :class:`~repro.mc.wire.ScenarioSpec` — or reuses a
    caller-provided ``scenario`` for hand-built scenarios that have no
    registry spec — and runs the search to completion from the
    checkpointed explored set, frontier, and statistics.  The explored
    state space of checkpoint + resumed leg is bit-identical to an
    uninterrupted run, on any transport.

    ``config_overrides`` replace fields of the checkpointed config —
    engine knobs only (``workers``, ``transport``, ``checkpoint_*``,
    ``store*``…); overriding model or hashing knobs would change what
    the stored digests *mean* and is not supported.

    Returns ``(scenario, stats)``.
    """
    import dataclasses

    from repro.mc import store as store_mod

    checkpoint = store_mod.load_latest_checkpoint(checkpoint_path)
    config = checkpoint.config
    if config_overrides:
        config = dataclasses.replace(config, **config_overrides)
    if scenario is None:
        if checkpoint.spec is None:
            raise store_mod.CheckpointError(
                f"the checkpoint under {checkpoint_path} carries no "
                f"scenario spec (hand-built scenario); pass the scenario "
                f"to nice.resume() explicitly")
        spec = dataclasses.replace(checkpoint.spec, config=config)
        scenario = spec.build()
    else:
        derived = Scenario(scenario.topo, scenario.app_factory,
                           scenario.hosts_factory, scenario.properties,
                           config, name=scenario.name)
        if scenario.spec is not None:
            derived.spec = dataclasses.replace(scenario.spec, config=config)
        scenario = derived
    searcher = scenario.make_searcher()
    searcher._resume = checkpoint
    return scenario, searcher.run()


def replay(scenario: Scenario, trace, expected_hash: str | None = None):
    """Deterministically reproduce a violation trace (Section 6)."""
    from repro.mc.replay import replay_trace

    return replay_trace(
        scenario.system_factory, trace,
        strategy=make_strategy(scenario.config, scenario.app_factory()),
        expected_hash=expected_hash,
    )


def random_walk(scenario: Scenario, steps: int = 100,
                seed: int = 0) -> SearchResult:
    """Random-walk mode (Section 1.3: "random walks on system states")."""
    import dataclasses

    config = dataclasses.replace(scenario.config, search_order="random",
                                 seed=seed, max_transitions=steps,
                                 stop_at_first_violation=False)
    walk = Scenario(scenario.topo, scenario.app_factory,
                    scenario.hosts_factory, scenario.properties, config,
                    name=f"{scenario.name}-walk")
    if scenario.spec is not None:
        walk.spec = dataclasses.replace(scenario.spec, config=config)
    return run(walk)
