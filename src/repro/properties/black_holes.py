"""NoBlackHoles (Section 5.2).

"No packets should be dropped in the network: every packet that enters the
network ultimately leaves the network or is consumed by the controller
itself.  To account for flooding, the property enforces a zero balance
between the packet copies and packets consumed."

Checked at quiescent states (the end of a system execution): every injected
packet must have at least one copy that was delivered to a host or
deliberately consumed by the controller (a buffer-discarding packet-out).
Copies that sit in a switch buffer awaiting a controller verdict are left to
NoForgottenPackets, which is the paper's property for that failure mode.

An explicit rule-drop action also consumes all copies it swallows; by
default that still counts as a black hole unless the property is built with
``allow_rule_drops=True`` (some applications drop on purpose).
"""

from __future__ import annotations

from repro.properties.base import Property


class NoBlackHoles(Property):
    """Fails when a packet can no longer reach any destination."""

    name = "NoBlackHoles"

    def __init__(self, allow_rule_drops: bool = False):
        self.allow_rule_drops = allow_rule_drops

    def check_quiescent(self, system) -> None:
        delivered_uids = {entry[0] for entry in system.ledger.delivered}
        consumed_uids = set()
        dropped_uids = set()
        buffered_uids = set()
        for switch in system.switches.values():
            for kind, uid, _copy in switch.dropped:
                if kind == "ctrl_discard":
                    consumed_uids.add(uid)
                elif kind == "rule_drop":
                    dropped_uids.add(uid)
            for packet, _port in switch.buffers.values():
                buffered_uids.add(packet.uid)
        if self.allow_rule_drops:
            consumed_uids |= dropped_uids
        for uid, host in system.ledger.injected:
            if uid in delivered_uids or uid in consumed_uids:
                continue
            if uid in buffered_uids:
                continue  # NoForgottenPackets owns this failure mode
            self.violation(
                f"packet {uid} from host {host} never reached any "
                f"destination nor was consumed by the controller"
            )
