"""Transient-loss-tolerant NoBlackHoles — the paper's "ongoing work".

Section 8.1, discussing the BUG-I fix: a hard timeout turns *persistent*
packet loss into *transient* loss (packets sent before the stale rule
expires still disappear), and "designing a new NoBlackHoles property that is
robust to transient loss is part of our ongoing work."

This property implements that refinement: a flow is black-holed only when
its loss is persistent — at the end of execution, more than
``tolerance`` packets of the same flow went undelivered *and* the flow never
recovered (no later packet of the flow reached a host).  A short transient
episode (up to ``tolerance`` lost packets, or losses followed by successful
delivery) passes.
"""

from __future__ import annotations

from repro.properties.base import Property


class TransientSafeNoBlackHoles(Property):
    """NoBlackHoles, robust to transient loss episodes."""

    name = "TransientSafeNoBlackHoles"

    def __init__(self, tolerance: int = 1):
        """``tolerance``: lost packets per flow forgiven when the flow never
        recovers; losses followed by a successful delivery are always
        forgiven (the network healed)."""
        self.tolerance = tolerance

    def check_quiescent(self, system) -> None:
        delivered_uids = {entry[0] for entry in system.ledger.delivered}
        consumed_uids = set()
        buffered_uids = set()
        for switch in system.switches.values():
            for kind, uid, _copy in switch.dropped:
                if kind == "ctrl_discard":
                    consumed_uids.add(uid)
            for packet, _port in switch.buffers.values():
                buffered_uids.add(packet.uid)

        # Walk the fate log in order, grouping by flow: track, per flow,
        # the number of undelivered packets and whether a delivery ever
        # followed a loss (recovery).
        flow_outcomes: dict[tuple, list[tuple[str, tuple]]] = {}
        for entry in system.ledger.log:
            kind = entry[0]
            if kind == "inj":
                _, uid, _host, flow = entry
                flow_outcomes.setdefault(flow, []).append(("inj", uid))
            elif kind == "del":
                _, uid, _host, flow = entry
                flow_outcomes.setdefault(flow, []).append(("del", uid))

        for flow, events in flow_outcomes.items():
            lost_run = 0
            recovered = False
            undelivered = []
            for kind, uid in events:
                if kind == "inj":
                    fate_known = (uid in delivered_uids
                                  or uid in consumed_uids
                                  or uid in buffered_uids)
                    if not fate_known:
                        undelivered.append(uid)
                        lost_run += 1
                elif kind == "del":
                    if lost_run:
                        recovered = True
                    lost_run = 0
            if recovered:
                continue  # the network healed: transient episode
            if len(undelivered) > self.tolerance:
                self.violation(
                    f"flow {flow} persistently black-holed: "
                    f"{len(undelivered)} packets never delivered "
                    f"(tolerance {self.tolerance}) — {undelivered}"
                )
