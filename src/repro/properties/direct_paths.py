"""DirectPaths and StrictDirectPaths (Section 5.2).

*DirectPaths*: once a packet has successfully reached its destination,
future packets of the same flow do not go to the controller — i.e. handling
the first packet established a direct path.

*StrictDirectPaths*: after two hosts have delivered at least one packet of a
flow in each direction, no successive packet reaches the controller — the
liveness property whose violation exposes BUG-II in pyswitch.

Both properties must be robust to natural communication delays (Section
5.2): a packet that was *already in flight* when the path completed must not
count as a violation.  The check therefore conditions on the packet-fate log
order: only packets injected *after* the establishing deliveries can
violate.
"""

from __future__ import annotations

from repro.properties.base import Property


def _pair_of(flow_key) -> tuple:
    """The (src MAC, dst MAC) pair of a flow key."""
    return (flow_key[0], flow_key[1])


class _DirectPathsBase(Property):
    """Shared scan: find controller-bound packets of established flows.

    Reads the switches' packet-in *history* rather than the live message
    queues — under NO-DELAY a packet-in is generated and consumed within
    one atomic step, so queue contents alone would hide it.
    """

    def check(self, system, transition) -> None:
        log = system.ledger.log
        for switch in system.switches.values():
            for packet, _reason in switch.packet_in_log:
                if packet.eth_dst.is_broadcast:
                    continue
                if self._established_before_injection(system, log, packet):
                    self.violation(
                        f"{packet!r} went to the controller at "
                        f"{switch.switch_id} although a direct path was "
                        f"already established"
                    )

    def _established_before_injection(self, system, log, packet) -> bool:
        raise NotImplementedError


class DirectPaths(_DirectPathsBase):
    """One-directional: the flow already delivered to its destination."""

    name = "DirectPaths"

    def _established_before_injection(self, system, log, packet) -> bool:
        flow = packet.flow_key()
        dst_hosts = {
            name for name, host in system.hosts.items()
            if host.mac == packet.eth_dst
        }
        for entry in log:
            if entry[0] == "inj" and entry[1] == packet.uid:
                return False  # reached the injection before any delivery
            if entry[0] == "del" and entry[3] == flow and entry[2] in dst_hosts:
                return True
        return False


class StrictDirectPaths(_DirectPathsBase):
    """Bidirectional: both directions delivered before this packet was sent."""

    name = "StrictDirectPaths"

    def _established_before_injection(self, system, log, packet) -> bool:
        pair = _pair_of(packet.flow_key())
        reverse = (pair[1], pair[0])
        forward_done = False
        reverse_done = False
        for entry in log:
            if entry[0] == "inj" and entry[1] == packet.uid:
                return forward_done and reverse_done
            if entry[0] == "del":
                delivered_pair = _pair_of(entry[3])
                receiving_host = system.hosts.get(entry[2])
                if receiving_host is None:
                    continue
                # Count only deliveries to the true destination.
                if receiving_host.mac.canonical() != delivered_pair[1]:
                    continue
                if delivered_pair == pair:
                    forward_done = True
                elif delivered_pair == reverse:
                    reverse_done = True
        return False
