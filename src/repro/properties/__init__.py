"""Correctness properties (Section 5).

A property is a predicate over global system state, optionally consulting
the ordered packet-fate log (the "local state via callbacks" of the paper,
stored on the system so checkpointing stays simple).  NICE checks every
property after every transition, and again at quiescent states for
end-of-execution properties like NoForgottenPackets.
"""

from repro.properties.base import Property
from repro.properties.black_holes import NoBlackHoles
from repro.properties.direct_paths import DirectPaths, StrictDirectPaths
from repro.properties.flow_affinity import FlowAffinity
from repro.properties.forgotten_packets import NoForgottenPackets
from repro.properties.forwarding_loops import NoForwardingLoops
from repro.properties.library import PROPERTY_LIBRARY, make_properties
from repro.properties.routing_table import UseCorrectRoutingTable
from repro.properties.transient import TransientSafeNoBlackHoles

__all__ = [
    "DirectPaths",
    "FlowAffinity",
    "NoBlackHoles",
    "NoForgottenPackets",
    "NoForwardingLoops",
    "PROPERTY_LIBRARY",
    "Property",
    "StrictDirectPaths",
    "TransientSafeNoBlackHoles",
    "UseCorrectRoutingTable",
    "make_properties",
]
