"""FlowAffinity — the application-specific property of Section 8.2.

"We create an application-specific property FlowAffinity that verifies that
all packets of a single TCP connection go to the same server replica."

A connection is identified by the client side of the TCP 5-tuple (client IP,
client port, virtual-IP port); the property records which replica each
delivered packet landed on and fails on the first conflict.  This is the
property whose violation exposes BUG-VII (duplicate SYN during a policy
transition splitting one connection across replicas).
"""

from __future__ import annotations

from repro.openflow.packet import ETH_TYPE_IP, IPPROTO_TCP
from repro.properties.base import Property


class FlowAffinity(Property):
    """All packets of one TCP connection must reach the same replica."""

    name = "FlowAffinity"

    def __init__(self, server_names: list[str]):
        self.server_names = set(server_names)

    def check(self, system, transition) -> None:
        assignments: dict[tuple, str] = {}
        for uid, copy_id, host in system.ledger.delivered:
            if host not in self.server_names:
                continue
            packet = self._find_delivered(system, host, uid, copy_id)
            if packet is None or packet.eth_type != ETH_TYPE_IP \
                    or packet.nw_proto != IPPROTO_TCP:
                continue
            connection = (packet.ip_src, packet.tp_src, packet.tp_dst)
            first = assignments.get(connection)
            if first is None:
                assignments[connection] = host
            elif first != host:
                self.violation(
                    f"TCP connection {connection} split across replicas "
                    f"{first} and {host}"
                )

    @staticmethod
    def _find_delivered(system, host_name, uid, copy_id):
        host = system.hosts[host_name]
        for packet in host.received:
            if packet.uid == uid and packet.copy_id == copy_id:
                return packet
        return None
