"""The library of common correctness properties (Section 5.2).

"NICE provides a library of correctness properties applicable to a wide
range of OpenFlow applications.  A programmer can select properties from a
list, as appropriate for the application."
"""

from __future__ import annotations

from repro.properties.base import Property
from repro.properties.black_holes import NoBlackHoles
from repro.properties.direct_paths import DirectPaths, StrictDirectPaths
from repro.properties.forgotten_packets import NoForgottenPackets
from repro.properties.forwarding_loops import NoForwardingLoops

#: Name -> zero-argument constructor for the generic properties.
PROPERTY_LIBRARY = {
    "NoForwardingLoops": NoForwardingLoops,
    "NoBlackHoles": NoBlackHoles,
    "DirectPaths": DirectPaths,
    "StrictDirectPaths": StrictDirectPaths,
    "NoForgottenPackets": NoForgottenPackets,
}


def make_properties(names) -> list[Property]:
    """Instantiate library properties by name.

    >>> [type(p).__name__ for p in make_properties(["NoBlackHoles"])]
    ['NoBlackHoles']
    """
    properties = []
    for name in names:
        if isinstance(name, Property):
            properties.append(name)
            continue
        ctor = PROPERTY_LIBRARY.get(name)
        if ctor is None:
            raise KeyError(
                f"unknown property {name!r}; library has "
                f"{sorted(PROPERTY_LIBRARY)}"
            )
        properties.append(ctor())
    return properties
