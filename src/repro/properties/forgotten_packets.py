"""NoForgottenPackets (Section 5.2).

"This property checks that all switch buffers are empty at the end of system
execution.  A program can easily violate this property by forgetting to tell
the switch how to handle a packet."

Four of the paper's eleven bugs (IV, V, VI, VIII — plus IX and XI after
fixes) manifest exactly this way: the handler installs rules or sends
replies but never releases (or discards) the buffered packet that triggered
the ``packet_in``.
"""

from __future__ import annotations

from repro.properties.base import Property


class NoForgottenPackets(Property):
    """Fails when a quiescent state leaves packets in switch buffers."""

    name = "NoForgottenPackets"

    def check_quiescent(self, system) -> None:
        for sw_id in sorted(system.switches):
            switch = system.switches[sw_id]
            if switch.buffers:
                buffered = ", ".join(
                    f"buf {bid}: {pkt!r} (in_port {port})"
                    for bid, (pkt, port) in sorted(switch.buffers.items())
                )
                self.violation(
                    f"switch {sw_id} still buffers packets awaiting the "
                    f"controller at the end of execution: {buffered}"
                )
