"""UseCorrectRoutingTable — the application-specific property of Section 8.3.

"This property checks that the controller program, upon receiving a packet
from an ingress switch, issues the installation of rules to all and just the
switches on the appropriate path for that packet, as determined by the
network load."

The property is parameterized by a callable ``expected_path(app, packet)``
supplied by the traffic-engineering application module: it returns the set
of switch ids the current load state requires (or a collection of acceptable
sets when the app may legitimately choose among paths).  After every
``packet_in`` handler invocation for a *new flow* (one that installed at
least one rule), the switches that received ``install_rule`` calls must be
exactly one acceptable set.
"""

from __future__ import annotations

from repro.mc import transitions as tk
from repro.properties.base import Property


class UseCorrectRoutingTable(Property):
    """Rules must go to all-and-only the switches of the load-correct path."""

    name = "UseCorrectRoutingTable"

    def __init__(self, expected_path):
        """``expected_path(app, packet) -> set[str] | list[set[str]]``."""
        self.expected_path = expected_path

    def check(self, system, transition) -> None:
        if transition is None or transition.kind != tk.CTRL_HANDLE:
            return
        record = system.last_handler
        if not record or record.get("kind") != "ctrl_handle":
            return
        packet = record.get("packet")
        if packet is None:
            return
        installed = {
            call[1] for call in record["calls"] if call[0] == "install_rule"
        }
        if not installed:
            return  # not a new-flow installation event
        expected = self.expected_path(system.app, packet)
        if isinstance(expected, set):
            acceptable = [expected]
        else:
            acceptable = [set(option) for option in expected]
        if not any(installed == option for option in acceptable):
            self.violation(
                f"flow {packet.flow_key()} installed rules at "
                f"{sorted(installed)} but the load state requires one of "
                f"{[sorted(o) for o in acceptable]}"
            )
