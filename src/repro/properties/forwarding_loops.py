"""NoForwardingLoops (Section 5.2).

"This property asserts that packets do not encounter forwarding loops, and
is implemented by checking that each packet goes through any given
<switch, input port> pair at most once."

Each packet records its ``(switch, in_port)`` hops as switches process it;
the property scans every live packet (in channels, inboxes, buffers, and the
delivered record) for a repeated hop.
"""

from __future__ import annotations

from repro.properties.base import Property


def _has_repeated_hop(packet) -> tuple | None:
    seen = set()
    for hop in packet.hops:
        if hop in seen:
            return hop
        seen.add(hop)
    return None


class NoForwardingLoops(Property):
    """Fails when any packet revisits a <switch, input port> pair."""

    name = "NoForwardingLoops"

    def check(self, system, transition) -> None:
        for packet in self._live_packets(system):
            repeat = _has_repeated_hop(packet)
            if repeat is not None:
                self.violation(
                    f"packet {packet!r} traversed {repeat} twice"
                )

    def _live_packets(self, system):
        for switch in system.switches.values():
            for port in switch.ports:
                yield from switch.port_in[port].items()
            for packet, _ in switch.buffers.values():
                yield packet
        for host in system.hosts.values():
            yield from host.inbox
            yield from host.received
