"""The property interface.

Correctness properties may (i) access the full system state, (ii) observe
the transition that just executed, and (iii) read the system's ordered
packet-fate log — together covering the three capabilities Section 5.1
enumerates (state access, transition callbacks, local state).

Raise :class:`~repro.errors.PropertyViolation` (or call :meth:`violation`)
to report; the search loop catches it, records the reproducing trace, and —
depending on configuration — stops or keeps exploring.
"""

from __future__ import annotations

from repro.errors import PropertyViolation


class Property:
    """Base class for correctness properties."""

    name = "property"

    def reset(self, system) -> None:
        """Called once on the initial state, before the search starts."""

    def check(self, system, transition) -> None:
        """Called after every executed transition."""

    def check_quiescent(self, system) -> None:
        """Called when a state has no enabled transitions (execution end)."""

    def violation(self, message: str) -> None:
        raise PropertyViolation(self.name, message)

    def __repr__(self):
        return f"{type(self).__name__}()"
