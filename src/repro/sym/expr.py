"""The constraint expression language.

Small, first-order, and exactly what OpenFlow handlers need: integer
variables (multi-byte header fields are 48- or 32-bit integers), constants,
arithmetic/bit operations, byte extraction (``pkt.src[0]``), comparisons,
set membership (from dictionary-stub lookups), and boolean negation.

Expressions are immutable, hashable values with a direct evaluator —
:func:`eval_expr` / :func:`eval_bool` compute an expression under a concrete
variable assignment, which both the solver and the test suite rely on
(property-based tests check proxy arithmetic against the evaluator).
"""

from __future__ import annotations

from repro.errors import SymbolicError

_INT_OPS = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "floordiv": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "lshift": lambda a, b: a << b,
    "rshift": lambda a, b: a >> b,
}

_CMP_OPS = {
    "eq": lambda a, b: a == b,
    "ne": lambda a, b: a != b,
    "lt": lambda a, b: a < b,
    "le": lambda a, b: a <= b,
    "gt": lambda a, b: a > b,
    "ge": lambda a, b: a >= b,
}

_CMP_NEGATION = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
                 "le": "gt", "gt": "le"}


class Expr:
    """Base class; subclasses are immutable value objects."""

    __slots__ = ()

    def key(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other):
        if not isinstance(other, Expr):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())


class Var(Expr):
    """A symbolic variable: a header field or statistics counter.

    ``width`` is the bit width (48 for MACs, 32 for IPv4, 16 for ports...);
    the solver uses it only for sanity bounds.
    """

    __slots__ = ("name", "width")

    def __init__(self, name: str, width: int = 32):
        self.name = name
        self.width = width

    def key(self):
        return ("var", self.name)

    def __repr__(self):
        return self.name


class Const(Expr):
    __slots__ = ("value",)

    def __init__(self, value: int):
        self.value = int(value)

    def key(self):
        return ("const", self.value)

    def __repr__(self):
        return repr(self.value)


class BinOp(Expr):
    """Integer binary operation (see ``_INT_OPS`` for the op names)."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _INT_OPS:
            raise SymbolicError(f"unknown integer op {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("binop", self.op, self.left.key(), self.right.key())

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class ByteAt(Expr):
    """Byte ``index`` (0 = most significant) of a multi-byte variable."""

    __slots__ = ("base", "index", "total_bytes")

    def __init__(self, base: Expr, index: int, total_bytes: int = 6):
        self.base = base
        self.index = index
        self.total_bytes = total_bytes

    def key(self):
        return ("byteat", self.base.key(), self.index, self.total_bytes)

    def __repr__(self):
        return f"{self.base!r}[{self.index}]"


class Cmp(Expr):
    """Comparison producing a boolean."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr):
        if op not in _CMP_OPS:
            raise SymbolicError(f"unknown comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def key(self):
        return ("cmp", self.op, self.left.key(), self.right.key())

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class InSet(Expr):
    """Membership of an integer expression in a finite value set.

    Produced by the dictionary stub: ``pkt.dst in mactable`` becomes
    ``InSet(dst_var, frozenset(concrete keys))``.
    """

    __slots__ = ("item", "values")

    def __init__(self, item: Expr, values):
        self.item = item
        self.values = frozenset(int(v) for v in values)

    def key(self):
        return ("inset", self.item.key(), tuple(sorted(self.values)))

    def __repr__(self):
        return f"({self.item!r} in {sorted(self.values)})"


class Not(Expr):
    __slots__ = ("inner",)

    def __init__(self, inner: Expr):
        self.inner = inner

    def key(self):
        return ("not", self.inner.key())

    def __repr__(self):
        return f"!({self.inner!r})"


class BoolConst(Expr):
    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = bool(value)

    def key(self):
        return ("bool", self.value)

    def __repr__(self):
        return repr(self.value)


def negate(expr: Expr) -> Expr:
    """Logical negation, simplified where cheap."""
    if isinstance(expr, Not):
        return expr.inner
    if isinstance(expr, Cmp):
        return Cmp(_CMP_NEGATION[expr.op], expr.left, expr.right)
    if isinstance(expr, BoolConst):
        return BoolConst(not expr.value)
    return Not(expr)


def eval_expr(expr: Expr, assignment: dict) -> int:
    """Evaluate an integer expression under ``assignment`` (name -> int)."""
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Var):
        try:
            return int(assignment[expr.name])
        except KeyError:
            raise SymbolicError(f"unassigned variable {expr.name!r}") from None
    if isinstance(expr, BinOp):
        left = eval_expr(expr.left, assignment)
        right = eval_expr(expr.right, assignment)
        if expr.op in ("floordiv", "mod") and right == 0:
            raise SymbolicError("division by zero during evaluation")
        return _INT_OPS[expr.op](left, right)
    if isinstance(expr, ByteAt):
        base = eval_expr(expr.base, assignment)
        shift = 8 * (expr.total_bytes - 1 - expr.index)
        return (base >> shift) & 0xFF
    raise SymbolicError(f"not an integer expression: {expr!r}")


def eval_bool(expr: Expr, assignment: dict) -> bool:
    """Evaluate a boolean expression under ``assignment``."""
    if isinstance(expr, BoolConst):
        return expr.value
    if isinstance(expr, Not):
        return not eval_bool(expr.inner, assignment)
    if isinstance(expr, Cmp):
        return _CMP_OPS[expr.op](
            eval_expr(expr.left, assignment), eval_expr(expr.right, assignment)
        )
    if isinstance(expr, InSet):
        return eval_expr(expr.item, assignment) in expr.values
    raise SymbolicError(f"not a boolean expression: {expr!r}")


def expr_vars(expr: Expr) -> set[str]:
    """All variable names occurring in an expression."""
    if isinstance(expr, Var):
        return {expr.name}
    if isinstance(expr, (Const, BoolConst)):
        return set()
    if isinstance(expr, BinOp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, Cmp):
        return expr_vars(expr.left) | expr_vars(expr.right)
    if isinstance(expr, ByteAt):
        return expr_vars(expr.base)
    if isinstance(expr, InSet):
        return expr_vars(expr.item)
    if isinstance(expr, Not):
        return expr_vars(expr.inner)
    raise SymbolicError(f"unknown expression {expr!r}")


def expr_constants(expr: Expr) -> set[int]:
    """All integer constants in an expression (solver candidate seeds)."""
    if isinstance(expr, Const):
        return {expr.value}
    if isinstance(expr, (Var, BoolConst)):
        return set()
    if isinstance(expr, BinOp):
        return expr_constants(expr.left) | expr_constants(expr.right)
    if isinstance(expr, Cmp):
        return expr_constants(expr.left) | expr_constants(expr.right)
    if isinstance(expr, ByteAt):
        return expr_constants(expr.base)
    if isinstance(expr, InSet):
        return set(expr.values) | expr_constants(expr.item)
    if isinstance(expr, Not):
        return expr_constants(expr.inner)
    raise SymbolicError(f"unknown expression {expr!r}")
