"""The concolic engine: DART-style path exploration of event handlers.

``discover_packets`` concolically executes the ``packet_in`` handler from
the *current concrete controller state* (Section 3.2: "we apply symbolic
execution by using these concrete variables as the initial state and by
marking as symbolic the packets and statistics arguments to the handlers").
Every explored handler path yields one representative packet; the model
checker turns each into an enabled ``send`` transition (Figure 4).

``discover_stats`` does the same for the statistics handler with symbolic
integers as counters — how NICE steers threshold-style logic (the energy-
aware traffic-engineering application changes behavior when utilization
crosses a limit the model's tiny traffic volumes would never reach).

The loop is classic concolic testing (DART [24]): run concretely, record the
branch sequence, then for every prefix solve "prefix holds ∧ branch_i
flipped"; each satisfying assignment seeds another run.  Exploration is
bounded by ``max_paths`` (Section 9 discusses the trade-off).
"""

from __future__ import annotations

import copy

from repro.controller.api import RecordingControllerAPI
from repro.errors import SolverError
from repro.openflow.messages import OFPR_NO_MATCH
from repro.openflow.packet import Packet
from repro.sym.concolic import PathRecorder, SymInt
from repro.sym.expr import Expr, Var, negate
from repro.sym.packets import SymbolicPacketFactory
from repro.sym.solver import Domain, Solver, stats_candidates
from repro.sym.symdict import SymDict

#: Statistics counters made symbolic per port.
STAT_COUNTERS = ("rx_packets", "tx_packets", "rx_bytes", "tx_bytes")


def _wrap_state(value, recorder: PathRecorder):
    """Recursively substitute dict stubs into a copied controller state."""
    if isinstance(value, dict):
        return SymDict(value, recorder)
    if isinstance(value, list):
        return [_wrap_state(item, recorder) for item in value]
    return value


def _normalized(branches) -> list[Expr]:
    """Branch records as positive constraints (expr that actually held)."""
    return [expr if taken else negate(expr) for expr, taken in branches]


class ConcolicEngine:
    """Discovery entry points used by :class:`repro.mc.search.Searcher`."""

    def __init__(self, max_paths: int = 64):
        self.max_paths = max_paths
        #: Cumulative counters, for reporting and the Section 9 trade-off
        #: benchmarks.
        self.handler_runs = 0
        self.solver_calls = 0

    # ------------------------------------------------------------------
    # Packets
    # ------------------------------------------------------------------

    def discover_packets(self, app, sw_id: str, in_port: int, topo,
                         host) -> list[Packet]:
        """Representative packets, one per feasible ``packet_in`` path."""
        factory = SymbolicPacketFactory(topo, host, app)
        solver = Solver(factory.domains())
        seed = factory.default_assignment()

        def run(assignment):
            recorder = PathRecorder()
            prepared = self._prepare_app(app, recorder)
            packet = factory.make(recorder, assignment)
            api = RecordingControllerAPI()
            self.handler_runs += 1
            try:
                prepared.packet_in(api, sw_id, in_port, packet, 1,
                                   OFPR_NO_MATCH)
            except Exception:  # noqa: BLE001 - a crashing path is a path
                pass
            return recorder

        representatives = self._explore(run, solver_for=lambda _c: solver,
                                        seed=seed)
        return [
            factory.packet_from_assignment(assignment, constrained)
            for assignment, constrained in representatives
        ]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------

    def discover_stats(self, app, sw_id: str, base_stats: dict) -> list[dict]:
        """Representative port-stats payloads, one per handler path."""
        seed: dict[str, int] = {}
        for port in sorted(base_stats):
            for counter in STAT_COUNTERS:
                seed[f"stats_{port}_{counter}"] = int(
                    base_stats[port].get(counter, 0)
                )

        def make_stats(recorder, assignment):
            values = dict(seed)
            values.update(assignment)
            stats = {}
            for port in sorted(base_stats):
                stats[port] = {
                    counter: SymInt(
                        values[f"stats_{port}_{counter}"],
                        Var(f"stats_{port}_{counter}", 64),
                        recorder,
                    )
                    for counter in STAT_COUNTERS
                }
            return stats

        def run(assignment):
            recorder = PathRecorder()
            prepared = self._prepare_app(app, recorder)
            api = RecordingControllerAPI()
            self.handler_runs += 1
            try:
                prepared.port_stats_in(api, sw_id,
                                       make_stats(recorder, assignment))
            except Exception:  # noqa: BLE001
                pass
            return recorder

        def solver_for(constraints):
            domains = {}
            names = set()
            for constraint in constraints:
                from repro.sym.expr import expr_vars

                names |= expr_vars(constraint)
            candidates = stats_candidates(constraints)
            for name in names:
                domains[name] = Domain(
                    name, candidates + [seed.get(name, 0)]
                )
            return Solver(domains)

        representatives = self._explore(run, solver_for=solver_for, seed=seed)
        results = []
        for assignment, _constrained in representatives:
            values = dict(seed)
            values.update(assignment)
            stats = {}
            for port in sorted(base_stats):
                stats[port] = {
                    counter: values[f"stats_{port}_{counter}"]
                    for counter in STAT_COUNTERS
                }
            results.append(stats)
        return results

    # ------------------------------------------------------------------
    # The DART loop
    # ------------------------------------------------------------------

    def _explore(self, run, solver_for, seed) -> list[tuple[dict, set]]:
        """Generic concolic loop.

        Returns one ``(assignment, constrained_vars)`` pair per explored
        path; ``constrained_vars`` are the variables the path actually
        branched on — the rest are don't-cares of that equivalence class.
        """
        worklist: list[dict] = [dict(seed)]
        seen_assignments: set[tuple] = set()
        seen_paths: set[tuple] = set()
        tried_prefixes: set[tuple] = set()
        representatives: list[tuple[dict, set]] = []
        runs = 0
        while worklist and runs < self.max_paths:
            assignment = worklist.pop()
            akey = tuple(sorted(assignment.items()))
            if akey in seen_assignments:
                continue
            seen_assignments.add(akey)
            runs += 1
            recorder = run(assignment)
            pkey = recorder.path_key()
            if pkey not in seen_paths:
                seen_paths.add(pkey)
                from repro.sym.expr import expr_vars

                constrained: set = set()
                for expr, _taken in recorder.branches:
                    constrained |= expr_vars(expr)
                representatives.append((assignment, constrained))
            branches = recorder.branches
            held = _normalized(branches)
            for index in range(len(branches)):
                flipped = held[:index] + [negate(held[index])]
                prefix_key = tuple(expr.key() for expr in flipped)
                if prefix_key in tried_prefixes:
                    continue
                tried_prefixes.add(prefix_key)
                solver = solver_for(flipped)
                self.solver_calls += 1
                try:
                    solution = solver.solve(flipped, defaults=seed)
                except SolverError:
                    solution = None
                if solution is not None:
                    worklist.append(solution)
        return representatives

    # ------------------------------------------------------------------
    # State preparation
    # ------------------------------------------------------------------

    @staticmethod
    def _prepare_app(app, recorder: PathRecorder):
        """Deep-copy the application and substitute dict stubs into it."""
        prepared = copy.deepcopy(app)
        for name, value in list(vars(prepared).items()):
            setattr(prepared, name, _wrap_state(value, recorder))
        return prepared
