"""Constraint solving over finite header-field domains.

The paper hands path constraints to the STP bit-vector solver.  Offline, we
exploit the same *domain knowledge* the paper applies to header fields
(Section 3.2: "we apply domain knowledge to further constrain the possible
values of header fields, e.g. the MAC and IP addresses used by the hosts and
switches in the system model") — every variable ranges over a small
candidate set derived from the topology plus a handful of fresh values, so
backtracking enumeration with per-constraint early evaluation decides the
same constraint language exactly.

For statistics variables (unbounded counters), candidates are synthesized
from the constants appearing in the constraints (boundary values c-1, c,
c+1, scaled combinations), the standard trick for threshold-style handler
code.
"""

from __future__ import annotations

from repro.errors import SolverError
from repro.sym.expr import Expr, eval_bool, expr_constants, expr_vars


class Domain:
    """Candidate values for one variable."""

    def __init__(self, name: str, candidates: list[int]):
        self.name = name
        seen = set()
        self.candidates = []
        for value in candidates:
            value = int(value)
            if value not in seen:
                seen.add(value)
                self.candidates.append(value)
        if not self.candidates:
            raise SolverError(f"empty domain for {name!r}")

    def __repr__(self):
        return f"Domain({self.name}, {self.candidates})"


def stats_candidates(constraints: list[Expr], base: int = 0) -> list[int]:
    """Candidate counter values derived from constraint constants."""
    constants: set[int] = set()
    for constraint in constraints:
        constants |= expr_constants(constraint)
    candidates = {0, 1, base}
    for constant in constants:
        if constant < 0:
            continue
        candidates.update({constant, constant + 1, max(constant - 1, 0),
                           constant * 2, constant // 2, constant * 100,
                           constant * 1000})
    return sorted(candidates)


class Solver:
    """Backtracking enumeration with early constraint evaluation."""

    def __init__(self, domains: dict[str, Domain], max_checks: int = 200000):
        self.domains = domains
        self.max_checks = max_checks

    def solve(self, constraints: list[Expr],
              defaults: dict[str, int] | None = None) -> dict[str, int] | None:
        """Find an assignment satisfying every constraint, or None.

        Variables not mentioned in any constraint take their ``defaults``
        value (the current concrete seed), keeping representatives minimal.
        """
        defaults = dict(defaults or {})
        variables = set()
        for constraint in constraints:
            variables |= expr_vars(constraint)
        unknown = variables - set(self.domains)
        if unknown:
            raise SolverError(f"variables without domains: {sorted(unknown)}")
        ordered = sorted(variables)
        # Constraints become checkable once all their variables are bound;
        # index them by the latest-bound variable for early pruning.
        position = {name: i for i, name in enumerate(ordered)}
        by_depth: list[list[Expr]] = [[] for _ in ordered]
        ground: list[Expr] = []
        for constraint in constraints:
            used = expr_vars(constraint)
            if not used:
                ground.append(constraint)
                continue
            depth = max(position[name] for name in used)
            by_depth[depth].append(constraint)
        for constraint in ground:
            if not eval_bool(constraint, {}):
                return None

        assignment: dict[str, int] = {}
        checks = 0

        def backtrack(depth: int) -> bool:
            nonlocal checks
            if depth == len(ordered):
                return True
            name = ordered[depth]
            for value in self.domains[name].candidates:
                assignment[name] = value
                checks += 1
                if checks > self.max_checks:
                    raise SolverError("solver budget exceeded")
                if all(eval_bool(c, assignment) for c in by_depth[depth]):
                    if backtrack(depth + 1):
                        return True
            assignment.pop(name, None)
            return False

        if not backtrack(0):
            return None
        solution = dict(defaults)
        solution.update(assignment)
        return solution

    def is_satisfiable(self, constraints: list[Expr]) -> bool:
        return self.solve(constraints) is not None
