"""Concolic execution of controller event handlers (Sections 3 and 6).

The paper avoids modifying the Python interpreter by using *concolic*
(concrete + symbolic) execution: handlers run with concrete inputs wrapped in
proxy objects that record every data-dependent branch as a constraint.  The
engine then flips branch constraints DART-style, asks the solver for fresh
concrete inputs, and re-runs until all feasible handler paths are covered —
yielding one representative packet per equivalence class (Figure 4).

Modules:

* :mod:`repro.sym.expr` — the constraint expression language;
* :mod:`repro.sym.concolic` — ``SymInt`` / ``SymBool`` / ``SymBytes``
  proxies (the paper's "symbolic integer" data type and byte arrays);
* :mod:`repro.sym.symdict` — the dictionary stub substituted into controller
  state (the paper's AST transformation (iv));
* :mod:`repro.sym.solver` — constraint solving over the finite,
  domain-knowledge-constrained header domains (the paper used STP);
* :mod:`repro.sym.packets` — symbolic packets (Section 3.2);
* :mod:`repro.sym.engine` — the DART loop and the ``discover_packets`` /
  ``discover_stats`` entry points used by the model checker.
"""

from repro.sym.concolic import PathRecorder, SymBool, SymBytes, SymInt
from repro.sym.engine import ConcolicEngine
from repro.sym.expr import (
    BinOp,
    ByteAt,
    Cmp,
    Const,
    InSet,
    Not,
    Var,
    eval_bool,
    eval_expr,
    expr_vars,
    negate,
)
from repro.sym.packets import SymbolicPacketFactory
from repro.sym.solver import Solver
from repro.sym.symdict import SymDict

__all__ = [
    "BinOp",
    "ByteAt",
    "Cmp",
    "ConcolicEngine",
    "Const",
    "InSet",
    "Not",
    "PathRecorder",
    "Solver",
    "SymBool",
    "SymBytes",
    "SymDict",
    "SymInt",
    "SymbolicPacketFactory",
    "Var",
    "eval_bool",
    "eval_expr",
    "expr_vars",
    "negate",
]
