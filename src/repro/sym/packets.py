"""Symbolic packets (Section 3.2).

"Rather than view a packet as a generic array of symbolic bytes, we
introduce symbolic packets as our symbolic data type.  A symbolic packet is
a group of symbolic integer variables that each represents a header field...
We also apply domain knowledge to further constrain the possible values of
header fields (e.g., the MAC and IP addresses used by the hosts and switches
in the system model, as specified by the input topology)."

The factory builds (a) the proxy-valued :class:`~repro.openflow.packet.
Packet` handed to the handler during a concolic run, and (b) concrete
representative packets from solver assignments.

The sending host's source addresses are pinned to its own MAC/IP — clients
inject their own traffic — while destination fields range over the
topology's addresses plus broadcast and one "fresh" (unknown) value each, so
handlers' unknown-destination paths stay reachable.  Applications can extend
the domains (e.g. the load balancer adds its virtual IP) via a
``symbolic_domains()`` hook.
"""

from __future__ import annotations

from repro.openflow.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    ETH_TYPE_LLDP,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MacAddress,
    Packet,
    TCP_ACK,
    TCP_SYN,
)
from repro.sym.concolic import PathRecorder, SymBytes, SymInt
from repro.sym.expr import Var
from repro.sym.solver import Domain

#: A MAC that belongs to no modeled host — the "unknown destination".
FRESH_MAC = 0xFEFEFEFEFEFE
#: An IP that belongs to no modeled host.
FRESH_IP = 0xC0A8FEFE  # 192.168.254.254

#: (field name, bit width) of every symbolic packet variable.
PACKET_FIELDS = (
    ("eth_src", 48),
    ("eth_dst", 48),
    ("eth_type", 16),
    ("ip_src", 32),
    ("ip_dst", 32),
    ("nw_proto", 8),
    ("tp_src", 16),
    ("tp_dst", 16),
    ("tcp_flags", 8),
    ("arp_op", 8),
)


class SymbolicPacketFactory:
    """Builds symbolic packets and their solution-space domains."""

    def __init__(self, topo, host, app=None):
        self.topo = topo
        self.host = host
        mac_ints = sorted(mac.to_int() for mac in topo.mac_addresses())
        ip_ints = sorted(topo.ip_addresses())
        extra: dict[str, list[int]] = {}
        hook = getattr(app, "symbolic_domains", None)
        if callable(hook):
            extra = {name: [int(v) for v in values]
                     for name, values in hook().items()}

        def merged(name: str, base: list[int]) -> list[int]:
            values = list(base)
            for value in extra.get(name, []):
                if value not in values:
                    values.append(value)
            return values

        self._domains = {
            "eth_src": Domain("eth_src", merged("eth_src", [host.mac.to_int()])),
            "eth_dst": Domain("eth_dst", merged(
                "eth_dst",
                [m for m in mac_ints if m != host.mac.to_int()]
                + [MacAddress.broadcast().to_int(), FRESH_MAC],
            )),
            "eth_type": Domain("eth_type", merged(
                "eth_type", [ETH_TYPE_IP, ETH_TYPE_ARP, ETH_TYPE_LLDP])),
            "ip_src": Domain("ip_src", merged("ip_src", [host.ip])),
            "ip_dst": Domain("ip_dst", merged(
                "ip_dst",
                [ip for ip in ip_ints if ip != host.ip] + [FRESH_IP])),
            "nw_proto": Domain("nw_proto", merged(
                "nw_proto", [IPPROTO_TCP, IPPROTO_UDP, IPPROTO_ICMP])),
            "tp_src": Domain("tp_src", merged("tp_src", [1000, 1001])),
            "tp_dst": Domain("tp_dst", merged("tp_dst", [80, 8080])),
            "tcp_flags": Domain("tcp_flags", merged(
                "tcp_flags", [TCP_SYN, TCP_ACK, 0, TCP_SYN | TCP_ACK])),
            "arp_op": Domain("arp_op", merged("arp_op", [1, 2])),
        }

    def domains(self) -> dict[str, Domain]:
        return dict(self._domains)

    def default_assignment(self) -> dict[str, int]:
        """The seed: the first candidate of every field."""
        return {name: domain.candidates[0]
                for name, domain in self._domains.items()}

    def make(self, recorder: PathRecorder, assignment: dict[str, int]) -> Packet:
        """A Packet whose fields are concolic proxies under ``assignment``."""
        values = self.default_assignment()
        values.update(assignment)

        def sym_int(name: str, width: int) -> SymInt:
            return SymInt(values[name], Var(name, width), recorder)

        def sym_mac(name: str) -> SymBytes:
            return SymBytes(MacAddress.from_int(values[name]),
                            Var(name, 48), recorder)

        packet = Packet(
            eth_src=MacAddress.from_int(values["eth_src"]),
            eth_dst=MacAddress.from_int(values["eth_dst"]),
        )
        packet.eth_src = sym_mac("eth_src")
        packet.eth_dst = sym_mac("eth_dst")
        packet.eth_type = sym_int("eth_type", 16)
        packet.ip_src = sym_int("ip_src", 32)
        packet.ip_dst = sym_int("ip_dst", 32)
        packet.nw_proto = sym_int("nw_proto", 8)
        packet.tp_src = sym_int("tp_src", 16)
        packet.tp_dst = sym_int("tp_dst", 16)
        packet.tcp_flags = sym_int("tcp_flags", 8)
        packet.arp_op = sym_int("arp_op", 8)
        return packet

    def packet_from_assignment(self, assignment: dict[str, int],
                               constrained: set | None = None) -> Packet:
        """The concrete representative packet of an equivalence class.

        Fields the path never branched on are don't-cares: they are set to
        zero so a representative does not accidentally carry semantic noise
        (e.g. leftover TCP defaults inside an ARP-typed class) into the
        model.  Pinned single-candidate fields (the sender's own addresses)
        always keep their value.
        """
        values = self.default_assignment()
        values.update(assignment)
        if constrained is not None:
            for name, domain in self._domains.items():
                if name in constrained or len(domain.candidates) == 1:
                    continue
                values[name] = 0
        return Packet(
            eth_src=MacAddress.from_int(values["eth_src"]),
            eth_dst=MacAddress.from_int(values["eth_dst"]),
            eth_type=values["eth_type"],
            ip_src=values["ip_src"],
            ip_dst=values["ip_dst"],
            nw_proto=values["nw_proto"],
            tp_src=values["tp_src"],
            tp_dst=values["tp_dst"],
            tcp_flags=values["tcp_flags"],
            arp_op=values["arp_op"],
        )
