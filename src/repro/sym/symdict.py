"""The dictionary stub (Section 6, transformation (iv)).

"We substitute the built-in dictionary with a special stub that exposes the
constraints."  Plain dict lookups with a symbolic key would silently
concretize through ``__hash__`` — a key that is *absent* under the concrete
value never triggers ``__eq__``, so the "present" path would be lost.  The
stub makes both outcomes visible: membership tests record an ``InSet``
constraint over the concrete keys, and successful lookups record equality
with the matched key.

Before a concolic run, the engine walks a *copy* of the controller state and
replaces every dict with a :class:`SymDict` (recursively on access), so the
application under test never needs modification.
"""

from __future__ import annotations

from repro.openflow.packet import MacAddress
from repro.sym.concolic import PathRecorder, SymBytes, SymInt
from repro.sym.expr import Cmp, Const, InSet, negate


def _key_to_int(key) -> int | None:
    """Concrete integer form of a dict key, when it has one."""
    if isinstance(key, bool):
        return int(key)
    if isinstance(key, int):
        return key
    if isinstance(key, MacAddress):
        return key.to_int()
    return None


def _is_symbolic(key) -> bool:
    return isinstance(key, (SymInt, SymBytes))


def _concretize_key(key):
    if isinstance(key, SymInt):
        return key.concrete
    if isinstance(key, SymBytes):
        return key.concrete
    return key


class SymDict:
    """A dict wrapper that records constraints on symbolic-key operations."""

    def __init__(self, data: dict, recorder: PathRecorder):
        self._data = data
        self._recorder = recorder

    # ------------------------------------------------------------------
    # Membership
    # ------------------------------------------------------------------

    def _int_keys(self) -> list[int]:
        keys = []
        for key in self._data:
            as_int = _key_to_int(key)
            if as_int is not None:
                keys.append(as_int)
        return keys

    def __contains__(self, key) -> bool:
        if not _is_symbolic(key):
            return key in self._data
        concrete = _concretize_key(key)
        present = concrete in self._data
        constraint = InSet(key.expr, self._int_keys())
        self._recorder.record(constraint if present else negate(constraint),
                              True)
        return present

    def has_key(self, key) -> bool:
        """Python-2-era alias kept because Figure 3 uses it."""
        return self.__contains__(key)

    # ------------------------------------------------------------------
    # Lookup / store
    # ------------------------------------------------------------------

    def __getitem__(self, key):
        if _is_symbolic(key):
            concrete = _concretize_key(key)
            if concrete not in self._data:
                constraint = InSet(key.expr, self._int_keys())
                self._recorder.record(negate(constraint), True)
                raise KeyError(concrete)
            matched_int = _key_to_int(concrete)
            if matched_int is not None:
                self._recorder.record(
                    Cmp("eq", key.expr, Const(matched_int)), True
                )
            return self._wrap(self._data[concrete])
        return self._wrap(self._data[key])

    def get(self, key, default=None):
        if _is_symbolic(key):
            concrete = _concretize_key(key)
            present = concrete in self._data
            constraint = InSet(key.expr, self._int_keys())
            self._recorder.record(constraint if present else negate(constraint),
                                  True)
            if not present:
                return default
            matched_int = _key_to_int(concrete)
            if matched_int is not None:
                self._recorder.record(
                    Cmp("eq", key.expr, Const(matched_int)), True
                )
            return self._wrap(self._data[concrete])
        if key in self._data:
            return self._wrap(self._data[key])
        return default

    def __setitem__(self, key, value) -> None:
        self._data[_concretize_key(key)] = value

    def __delitem__(self, key) -> None:
        del self._data[_concretize_key(key)]

    def setdefault(self, key, default=None):
        concrete = _concretize_key(key)
        if concrete not in self._data:
            self._data[concrete] = default
        return self._wrap(self._data[concrete])

    def _wrap(self, value):
        """Nested dicts become stubs lazily, on access."""
        if isinstance(value, dict):
            return SymDict(value, self._recorder)
        return value

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------

    def __len__(self):
        return len(self._data)

    def __iter__(self):
        return iter(self._data)

    def keys(self):
        return self._data.keys()

    def values(self):
        return self._data.values()

    def items(self):
        return self._data.items()

    def __repr__(self):
        return f"SymDict({self._data!r})"
