"""Concolic proxy values.

Section 6: "we first implement a new 'symbolic integer' data type that
tracks assignments, changes and comparisons to its value while behaving like
a normal integer from the program point of view.  We also implement arrays
(tuples in Python terminology) of these symbolic integers."

:class:`SymInt` and :class:`SymBytes` wrap a concrete value plus a symbolic
expression; every comparison yields a :class:`SymBool` whose ``__bool__``
records the branch (expression + concrete outcome) in the active
:class:`PathRecorder` and then lets execution proceed along the concrete
path.  Python short-circuits ``and`` / ``or`` through ``__bool__``, which
gives exactly the split-composite-predicate behavior the paper obtains by
AST rewriting (item (i) of Section 6).
"""

from __future__ import annotations

from repro.errors import SymbolicError
from repro.openflow.packet import MacAddress
from repro.sym.expr import BinOp, ByteAt, Cmp, Const, Expr


class PathRecorder:
    """Collects the branch constraints of one concolic run, in order."""

    def __init__(self):
        self.branches: list[tuple[Expr, bool]] = []

    def record(self, expr: Expr, outcome: bool) -> None:
        self.branches.append((expr, bool(outcome)))

    def path_key(self) -> tuple:
        return tuple((expr.key(), outcome) for expr, outcome in self.branches)

    def __len__(self):
        return len(self.branches)


def _to_expr(value) -> Expr:
    if isinstance(value, SymInt):
        return value.expr
    if isinstance(value, bool):
        return Const(int(value))
    if isinstance(value, int):
        return Const(value)
    if isinstance(value, MacAddress):
        return Const(value.to_int())
    if isinstance(value, SymBytes):
        return value.expr
    raise SymbolicError(f"cannot lift {value!r} into an expression")


def concrete_of(value):
    """The concrete value beneath a (possibly) symbolic one."""
    if isinstance(value, SymInt):
        return value.concrete
    if isinstance(value, SymBytes):
        return value.concrete
    return value


class SymBool:
    """A boolean whose truth test records a path constraint."""

    __slots__ = ("concrete", "expr", "recorder")

    def __init__(self, concrete: bool, expr: Expr, recorder: PathRecorder):
        self.concrete = bool(concrete)
        self.expr = expr
        self.recorder = recorder

    def __bool__(self) -> bool:
        self.recorder.record(self.expr, self.concrete)
        return self.concrete

    def __repr__(self):
        return f"SymBool({self.concrete}, {self.expr!r})"


class SymInt:
    """An integer proxy: concrete value + expression."""

    __slots__ = ("concrete", "expr", "recorder")

    def __init__(self, concrete: int, expr: Expr, recorder: PathRecorder):
        self.concrete = int(concrete)
        self.expr = expr
        self.recorder = recorder

    # -- arithmetic / bit operations --------------------------------------

    def _binop(self, op: str, other, reflected: bool = False):
        other_concrete = concrete_of(other)
        if not isinstance(other_concrete, int):
            return NotImplemented
        left, right = (other, self) if reflected else (self, other)
        import operator

        py_ops = {
            "add": operator.add, "sub": operator.sub, "mul": operator.mul,
            "floordiv": operator.floordiv, "mod": operator.mod,
            "and": operator.and_, "or": operator.or_, "xor": operator.xor,
            "lshift": operator.lshift, "rshift": operator.rshift,
        }
        concrete = py_ops[op](concrete_of(left), concrete_of(right))
        expr = BinOp(op, _to_expr(left), _to_expr(right))
        return SymInt(concrete, expr, self.recorder)

    def __add__(self, other):
        return self._binop("add", other)

    def __radd__(self, other):
        return self._binop("add", other, reflected=True)

    def __sub__(self, other):
        return self._binop("sub", other)

    def __rsub__(self, other):
        return self._binop("sub", other, reflected=True)

    def __mul__(self, other):
        return self._binop("mul", other)

    def __rmul__(self, other):
        return self._binop("mul", other, reflected=True)

    def __floordiv__(self, other):
        return self._binop("floordiv", other)

    def __rfloordiv__(self, other):
        return self._binop("floordiv", other, reflected=True)

    def __mod__(self, other):
        return self._binop("mod", other)

    def __rmod__(self, other):
        return self._binop("mod", other, reflected=True)

    def __and__(self, other):
        return self._binop("and", other)

    def __rand__(self, other):
        return self._binop("and", other, reflected=True)

    def __or__(self, other):
        return self._binop("or", other)

    def __ror__(self, other):
        return self._binop("or", other, reflected=True)

    def __xor__(self, other):
        return self._binop("xor", other)

    def __rxor__(self, other):
        return self._binop("xor", other, reflected=True)

    def __lshift__(self, other):
        return self._binop("lshift", other)

    def __rshift__(self, other):
        return self._binop("rshift", other)

    # -- comparisons -------------------------------------------------------

    def _cmp(self, op: str, other):
        other_concrete = concrete_of(other)
        if isinstance(other_concrete, MacAddress):
            other_concrete = other_concrete.to_int()
        if not isinstance(other_concrete, int):
            return NotImplemented
        import operator

        py_ops = {"eq": operator.eq, "ne": operator.ne, "lt": operator.lt,
                  "le": operator.le, "gt": operator.gt, "ge": operator.ge}
        concrete = py_ops[op](self.concrete, other_concrete)
        return SymBool(concrete, Cmp(op, self.expr, _to_expr(other)),
                       self.recorder)

    def __eq__(self, other):
        return self._cmp("eq", other)

    def __ne__(self, other):
        return self._cmp("ne", other)

    def __lt__(self, other):
        return self._cmp("lt", other)

    def __le__(self, other):
        return self._cmp("le", other)

    def __gt__(self, other):
        return self._cmp("gt", other)

    def __ge__(self, other):
        return self._cmp("ge", other)

    # -- conversions ---------------------------------------------------

    def __bool__(self) -> bool:
        """Truthiness is a branch on ``value != 0``."""
        self.recorder.record(Cmp("ne", self.expr, Const(0)),
                             self.concrete != 0)
        return self.concrete != 0

    def __hash__(self):
        return hash(self.concrete)

    def __int__(self):
        return self.concrete

    def __index__(self):
        return self.concrete

    def __repr__(self):
        return f"SymInt({self.concrete}, {self.expr!r})"


class SymBytes:
    """A fixed-width multi-byte value (MAC address) with byte access.

    The paper keeps each header field one lazily-initialized symbolic
    variable while still allowing byte- and bit-level access; ``mac[0]``
    here yields a :class:`SymInt` over a ``ByteAt`` extraction of the single
    48-bit variable.
    """

    __slots__ = ("concrete", "expr", "recorder", "width_bytes")

    def __init__(self, concrete: MacAddress, expr: Expr,
                 recorder: PathRecorder, width_bytes: int = 6):
        self.concrete = concrete
        self.expr = expr
        self.recorder = recorder
        self.width_bytes = width_bytes

    def __getitem__(self, index: int) -> SymInt:
        if not 0 <= index < self.width_bytes:
            raise IndexError(index)
        return SymInt(self.concrete[index],
                      ByteAt(self.expr, index, self.width_bytes),
                      self.recorder)

    def __len__(self):
        return self.width_bytes

    def _cmp_value(self, other):
        other = concrete_of(other)
        if isinstance(other, MacAddress):
            return other
        if isinstance(other, (tuple, list)) and len(other) == self.width_bytes:
            return MacAddress(other)
        return None

    def __eq__(self, other):
        if isinstance(other, SymBytes):
            concrete = self.concrete == other.concrete
            return SymBool(concrete, Cmp("eq", self.expr, other.expr),
                           self.recorder)
        value = self._cmp_value(other)
        if value is None:
            return NotImplemented
        return SymBool(self.concrete == value,
                       Cmp("eq", self.expr, Const(value.to_int())),
                       self.recorder)

    def __ne__(self, other):
        result = self.__eq__(other)
        if result is NotImplemented:
            return result
        from repro.sym.expr import negate

        return SymBool(not result.concrete, negate(result.expr), self.recorder)

    def __hash__(self):
        return hash(self.concrete)

    @property
    def is_broadcast(self) -> SymBool:
        """Group-address test, mirroring ``mac[0] & 1`` as a symbolic branch."""
        bit = BinOp("and", ByteAt(self.expr, 0, self.width_bytes), Const(1))
        return SymBool(bool(self.concrete[0] & 1), Cmp("ne", bit, Const(0)),
                       self.recorder)

    def to_int(self) -> int:
        return self.concrete.to_int()

    def canonical(self) -> str:
        return self.concrete.canonical()

    def __repr__(self):
        return f"SymBytes({self.concrete}, {self.expr!r})"
