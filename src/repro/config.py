"""Configuration objects for NICE searches.

:class:`NiceConfig` gathers every tunable the paper mentions: the search
order, the PKT-SEQ bounds (maximum packet-sequence length and maximum
outstanding packets per host), which heuristic strategy is active, whether
symbolic execution is used to discover packets, and whether the canonical
flow-table representation is enabled (disabling it gives the
NO-SWITCH-REDUCTION baseline of Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Search strategy names accepted by :class:`NiceConfig`.
STRATEGY_PKT_SEQ = "PKT-SEQ"
STRATEGY_NO_DELAY = "NO-DELAY"
STRATEGY_UNUSUAL = "UNUSUAL"
STRATEGY_FLOW_IR = "FLOW-IR"

ALL_STRATEGIES = (
    STRATEGY_PKT_SEQ,
    STRATEGY_NO_DELAY,
    STRATEGY_UNUSUAL,
    STRATEGY_FLOW_IR,
)

#: Frontier policies for the model-checking loop.
ORDER_DFS = "dfs"
ORDER_BFS = "bfs"
ORDER_RANDOM = "random"

#: Checkpoint modes for the search frontier (DESIGN.md, "Search engine").
#: ``deepcopy`` keeps a full System copy per frontier entry (the seed
#: behavior); ``trace`` stores only the transition path and restores by
#: deterministic replay from the initial state — cheap enough to ship
#: between worker processes.
CHECKPOINT_DEEPCOPY = "deepcopy"
CHECKPOINT_TRACE = "trace"

ALL_CHECKPOINT_MODES = (CHECKPOINT_DEEPCOPY, CHECKPOINT_TRACE)

#: State-hash modes (DESIGN.md, "Per-state hot path").  ``digest`` combines
#: cached per-component digests, so a one-component transition re-hashes one
#: component; ``full`` renders the whole canonical tuple and hashes it on
#: every call — the measurable O(state-size) baseline.
HASH_DIGEST = "digest"
HASH_FULL = "full"

ALL_HASH_MODES = (HASH_DIGEST, HASH_FULL)

#: Transports for the parallel searcher (DESIGN.md, "Scheduler and
#: transports").  ``local`` runs workers as child processes on this
#: machine; ``socket`` drives TCP workers (started with ``nice worker``),
#: which may live on other machines.
TRANSPORT_LOCAL = "local"
TRANSPORT_SOCKET = "socket"

ALL_TRANSPORTS = (TRANSPORT_LOCAL, TRANSPORT_SOCKET)

#: Start methods for the local transport.  ``None`` picks ``fork`` where
#: the platform offers it and ``spawn`` otherwise.
START_METHOD_FORK = "fork"
START_METHOD_SPAWN = "spawn"

ALL_START_METHODS = (START_METHOD_FORK, START_METHOD_SPAWN)

#: Explored-set state stores (DESIGN.md, "State store and
#: restartability").  ``memory`` is the plain in-process hash table the
#: engines always used; ``sharded`` shards digests by prefix into
#: append-only record files with an LRU-bounded resident set, so the
#: explored set can spill to disk and outgrow RAM.
STORE_MEMORY = "memory"
STORE_SHARDED = "sharded"

ALL_STORES = (STORE_MEMORY, STORE_SHARDED)


@dataclass
class NiceConfig:
    """All knobs for a NICE run.

    Attributes mirror the paper's knobs:

    * ``strategy`` — one of :data:`ALL_STRATEGIES`.  PKT-SEQ is the default
      and is always active as a bound; the other three are heuristics layered
      on top of it (Section 4).
    * ``max_pkt_sequence`` — PKT-SEQ bound on the number of packets each end
      host may send (the depth of the send tree).
    * ``max_outstanding`` — PKT-SEQ bound on the packet burst (the counter
      ``c`` in the paper; replenished by one for every packet received).
    * ``use_symbolic_execution`` — when True, hosts gain the
      ``discover_packets`` transition and the controller gains
      ``discover_stats`` (Figure 5); when False, hosts only send packets from
      a user-provided concrete list (used for the Table 1 / Figure 6 ping
      experiments, which run with symbolic execution turned off).
    * ``canonical_flow_tables`` — canonical switch-state representation
      (Section 2.2.2).  False reproduces NO-SWITCH-REDUCTION.
    * ``state_matching`` — store hashes of visited states and prune repeats.
    * ``max_paths`` — budget for concolic path exploration per handler call.
    * ``search_order`` — dfs (paper default), bfs, or random walk.
    * ``max_transitions`` / ``max_depth`` — hard safety bounds for bounded
      searches; ``None`` means unbounded.
    * ``stop_at_first_violation`` — Table 2 measures transitions/time to the
      *first* violation, so that mode is first-class.
    * ``enable_rule_timeouts`` — model rule expiry as explicit transitions
      (off by default; see DESIGN.md substitution table).
    * ``channel_faults`` — enable the optional drop/duplicate/reorder fault
      model on packet channels (off by default, as in the paper's
      NoBlackHoles experiments).
    * ``workers`` — size of the search worker pool.  ``0`` (the default)
      and ``1`` run the serial searcher; ``N > 1`` shards the frontier
      across N processes with a shared explored-state set (DESIGN.md).
    * ``transport`` — how parallel workers are reached:
      :data:`TRANSPORT_LOCAL` (child processes) or
      :data:`TRANSPORT_SOCKET` (TCP workers, ``nice worker``).
    * ``start_method`` — multiprocessing start method for the local
      transport (:data:`START_METHOD_FORK` or :data:`START_METHOD_SPAWN`);
      ``None`` auto-selects ``fork`` where available, ``spawn`` otherwise.
      ``spawn`` (and the socket transport) require the scenario to be
      reconstructable by name — see the registry in ``repro/scenarios.py``.
    * ``worker_address`` — ``host:port`` the socket transport listens on.
      Port ``0`` picks a free port; workers are told the real one.
    * ``spawn_socket_workers`` — when True (the default) the socket
      transport launches ``workers`` local ``nice worker`` subprocesses
      pointed at its own listening address, so ``transport="socket"``
      works out of the box; set False when workers are started externally
      (e.g. on other machines) and the master should only wait for them.
    * ``affinity`` — route a sibling group to the worker whose replay
      cache holds its parent trace (DESIGN.md, "Affinity scheduling").
      Disable for round-robin routing; results are identical either way,
      only restoration work changes.  Only composes with the default
      ``dfs`` search order — ``bfs``/``random`` frontiers pop globally
      and route round-robin regardless.
    * ``worker_cache_size`` — per-worker LRU bound on cached node systems
      used for prefix-replay restoration.
    * ``checkpoint_mode`` — how frontier states are stored:
      :data:`CHECKPOINT_DEEPCOPY` (seed behavior) or
      :data:`CHECKPOINT_TRACE` (trace-replay restoration, Section 6).
      The parallel engine always restores by trace replay.
    * ``hash_memoization`` — reuse cached per-component canonical forms when
      hashing a state; components invalidate on mutation, so unchanged
      switches/hosts are not re-canonicalized on every expansion.  Disable
      to reproduce the seed's full re-hash per state.
    * ``hash_mode`` — :data:`HASH_DIGEST` (default) combines cached
      per-component digests so ``state_hash()`` re-hashes only what the
      transition touched; :data:`HASH_FULL` renders and hashes the entire
      canonical tuple per call (the pre-digest baseline).  Digest mode
      requires ``hash_memoization``; with memoization off the full render
      is used regardless.
    * ``fast_clone`` — hand-rolled component-wise checkpoint copies
      (DESIGN.md, "Cheap checkpointing").  Disable to fall back to the
      seed's ``copy.deepcopy`` checkpointing — the baseline the
      checkpointing benchmark compares against.
    * ``cow_clone`` — copy-on-write checkpointing (DESIGN.md, "Per-state
      hot path"): ``System.clone()`` *shares* every switch/host/app/ledger
      component and a component is copied lazily on its first mutation,
      driven by the same ``_dirty`` keys that invalidate the hash memo.
      Disable to fall back to eager ``fast_clone`` copies (or deepcopy,
      when that is off too) — the measurable baselines.
    * ``batch_groups`` / ``batch_nodes`` — parallel-scheduler task sizing:
      at most ``batch_groups`` sibling groups and ``batch_nodes`` total
      nodes are packed into one worker task.  With ``adaptive_batching``
      off these static values are used verbatim (the measurable baseline).
    * ``adaptive_batching`` — let the scheduler adapt the per-worker batch
      size from observed task round-trip times (DESIGN.md, "Fault
      tolerance and elasticity"): fast round trips grow a worker's batch
      (amortizing per-task overhead — the sweet spot for high-RTT socket
      workers), slow ones shrink it back toward fine-grained load
      balancing.  ``batch_groups``/``batch_nodes`` seed the initial size.
    * ``store`` — explored-set storage: :data:`STORE_MEMORY` (the
      default in-process hash table — zero regression) or
      :data:`STORE_SHARDED` (``store_shards`` digest-prefix shards, each
      an append-only file of fixed-width packed hash records with an
      in-memory index; at most ``store_memory_budget`` digests stay
      resident, the rest spill to disk — the explored set can outgrow
      RAM).  ``store_bloom_bits`` sizes the sharded store's per-shard
      Bloom filter (bits, rounded up to a power of two; 0 disables it) —
      a compact bitset answering definite-negative membership before the
      index/disk probe, serialized into checkpoints so resume reloads it
      instead of recomputing.
    * ``store_bloom_broadcast`` — worker-side dedup pre-filter (DESIGN.md,
      "Distributed dedup"): broadcast the explored set's Bloom summary to
      workers so children the master has (probably) already seen cross
      the wire as digest-only stubs instead of full transitions.  Purely
      a wire/CPU optimization — the master still verifies every stub
      against the authoritative store, so the explored state space stays
      bit-identical.  Requires ``state_matching`` and a nonzero
      ``store_bloom_bits`` (the summary works with either store kind);
      ``--no-worker-bloom`` on the CLI sets this to False.
    * ``checkpoint_interval`` / ``checkpoint_dir`` — master
      checkpointing: with ``checkpoint_dir`` set, the search atomically
      snapshots the explored-set store, the frontier, the statistics and
      this config every ``checkpoint_interval`` newly explored states
      (executed transitions, when ``state_matching`` is off)
      (and on SIGTERM); ``nice resume <dir>`` continues the search
      mid-flight on any transport, bit-identical to an uninterrupted
      run.  ``checkpoint_dir=None`` (the default) disables
      checkpointing.
    * ``respawn_workers`` — autoscaler hook: when a worker dies, ask the
      transport to spawn a replacement (a fresh local-pool process, or
      an elastic socket joiner) before applying the failure policy, so
      the pool holds its size under churn.  Deaths still count toward
      ``max_worker_failures``.
    * ``min_workers`` — fault-tolerance floor: a clean error is raised if
      worker deaths shrink the live pool below this many workers (the
      default ``1`` keeps searching on the last surviving worker).
    * ``max_worker_failures`` — how many worker deaths the scheduler
      tolerates before giving up; ``None`` (the default) tolerates any
      number while ``min_workers`` workers survive, ``0`` restores the
      pre-PR 4 abort-on-first-death behavior.
    * ``heartbeat_interval`` — seconds between worker liveness beats on
      the result channel (DESIGN.md, "Failure containment").  ``0``
      disables heartbeats.
    * ``task_deadline`` — hard per-task deadline in seconds after which a
      silent worker is declared *hung*, killed, and its groups requeued.
      ``None`` (the default) derives the deadline from the adaptive-RTT
      estimator; ``0`` disables hang detection entirely.
    * ``max_task_retries`` — how many times a sibling group implicated in
      a worker death is re-dispatched to the fleet before it is treated
      as *poison* and quarantined.
    * ``quarantine`` — execute a poison group once in a sandboxed
      one-shot subprocess with rlimits; on success the result is merged
      (bit-identity preserved), on a second death the search degrades
      gracefully and records a :class:`~repro.mc.search.QuarantinedTask`
      diagnostic instead of aborting.  ``False`` skips the sandbox and
      degrades immediately after ``max_task_retries``.
    * ``worker_memory_limit`` — soft RSS bound in bytes per worker; an
      over-limit worker sheds its replay cache and, if still over,
      recycles itself through the respawn path.  Also used as the
      address-space rlimit of the quarantine sandbox.  ``None`` disables
      the watchdog.
    * ``fail_fast`` — restore the pre-containment behavior for model
      exceptions: an exception escaping a controller/host handler aborts
      the search instead of being recorded as a replayable ``ModelError``
      counterexample.
    * ``seed`` — seed for the random-walk frontier.
    """

    strategy: str = STRATEGY_PKT_SEQ
    max_pkt_sequence: int = 2
    max_outstanding: int = 1
    use_symbolic_execution: bool = True
    canonical_flow_tables: bool = True
    state_matching: bool = True
    max_paths: int = 64
    search_order: str = ORDER_DFS
    max_transitions: int | None = None
    max_depth: int | None = None
    stop_at_first_violation: bool = True
    enable_rule_timeouts: bool = False
    channel_faults: bool = False
    #: Include rule hit counters and port statistics in the state hash.
    #: The paper's simplified switch model does not carry counters, so two
    #: states differing only in counter values are the same state.  Enable
    #: for applications whose behavior depends on statistics (the energy-
    #: aware traffic-engineering app), where merging across counter values
    #: would be unsound.
    hash_counters: bool = False
    workers: int = 0
    transport: str = TRANSPORT_LOCAL
    start_method: str | None = None
    worker_address: str = "127.0.0.1:0"
    spawn_socket_workers: bool = True
    affinity: bool = True
    worker_cache_size: int = 2048
    checkpoint_mode: str = CHECKPOINT_DEEPCOPY
    hash_memoization: bool = True
    hash_mode: str = HASH_DIGEST
    fast_clone: bool = True
    cow_clone: bool = True
    batch_groups: int = 8
    batch_nodes: int = 16
    adaptive_batching: bool = True
    min_workers: int = 1
    max_worker_failures: int | None = None
    heartbeat_interval: float = 0.5
    task_deadline: float | None = None
    max_task_retries: int = 2
    quarantine: bool = True
    worker_memory_limit: int | None = None
    fail_fast: bool = False
    store: str = STORE_MEMORY
    store_shards: int = 16
    store_memory_budget: int = 1_000_000
    store_bloom_bits: int = 1 << 20
    store_bloom_broadcast: bool = True
    checkpoint_interval: int = 1000
    checkpoint_dir: str | None = None
    respawn_workers: bool = False
    seed: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.strategy not in ALL_STRATEGIES:
            raise ValueError(
                f"unknown strategy {self.strategy!r}; expected one of {ALL_STRATEGIES}"
            )
        if self.search_order not in (ORDER_DFS, ORDER_BFS, ORDER_RANDOM):
            raise ValueError(f"unknown search order {self.search_order!r}")
        if self.max_pkt_sequence < 0:
            raise ValueError("max_pkt_sequence must be >= 0")
        if self.max_outstanding < 1:
            raise ValueError("max_outstanding must be >= 1")
        if self.max_paths < 1:
            raise ValueError("max_paths must be >= 1")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.transport not in ALL_TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r};"
                f" expected one of {ALL_TRANSPORTS}"
            )
        if (self.start_method is not None
                and self.start_method not in ALL_START_METHODS):
            raise ValueError(
                f"unknown start method {self.start_method!r};"
                f" expected one of {ALL_START_METHODS} or None"
            )
        if self.worker_cache_size < 1:
            raise ValueError("worker_cache_size must be >= 1")
        if self.checkpoint_mode not in ALL_CHECKPOINT_MODES:
            raise ValueError(
                f"unknown checkpoint mode {self.checkpoint_mode!r};"
                f" expected one of {ALL_CHECKPOINT_MODES}"
            )
        if self.hash_mode not in ALL_HASH_MODES:
            raise ValueError(
                f"unknown hash mode {self.hash_mode!r};"
                f" expected one of {ALL_HASH_MODES}"
            )
        if self.batch_groups < 1:
            raise ValueError("batch_groups must be >= 1")
        if self.batch_nodes < 1:
            raise ValueError("batch_nodes must be >= 1")
        if self.min_workers < 1:
            raise ValueError("min_workers must be >= 1")
        if self.max_worker_failures is not None \
                and self.max_worker_failures < 0:
            raise ValueError("max_worker_failures must be >= 0 or None")
        if self.heartbeat_interval < 0:
            raise ValueError("heartbeat_interval must be >= 0")
        if self.task_deadline is not None and self.task_deadline < 0:
            raise ValueError("task_deadline must be >= 0 or None")
        if self.max_task_retries < 0:
            raise ValueError("max_task_retries must be >= 0")
        if self.worker_memory_limit is not None \
                and self.worker_memory_limit < 1:
            raise ValueError("worker_memory_limit must be >= 1 or None")
        if self.store not in ALL_STORES:
            raise ValueError(
                f"unknown store {self.store!r};"
                f" expected one of {ALL_STORES}"
            )
        if self.store_shards < 1:
            raise ValueError("store_shards must be >= 1")
        if self.store_memory_budget < 1:
            raise ValueError("store_memory_budget must be >= 1")
        if self.store_bloom_bits < 0:
            raise ValueError("store_bloom_bits must be >= 0")
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
