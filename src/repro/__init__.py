"""NICE — No bugs In Controller Execution.

A from-scratch reproduction of *A NICE Way to Test OpenFlow Applications*
(Canini, Venzano, Perešíni, Kostić, Rexford — NSDI 2012): a model checker
plus concolic-execution engine that systematically tests unmodified OpenFlow
controller programs against network-wide correctness properties.

Quick start::

    from repro import nice, scenarios

    scenario = scenarios.pyswitch_direct_path()
    result = nice.run(scenario)
    for violation in result.violations:
        print(violation.property_name, violation.message)

See DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
of every table and figure in the paper's evaluation.
"""

from repro.config import NiceConfig
from repro.mc.search import Searcher, SearchResult, SearchStats, Violation
from repro.mc.system import System
from repro.nice import Scenario, random_walk, replay, run

__version__ = "1.0.0"

__all__ = [
    "NiceConfig",
    "Scenario",
    "SearchResult",
    "SearchStats",
    "Searcher",
    "System",
    "Violation",
    "random_walk",
    "replay",
    "run",
    "__version__",
]
