"""Exception hierarchy for the NICE reproduction.

Every exception raised on purpose by this library derives from
:class:`NiceError`, so callers can catch library failures without also
swallowing genuine programming errors.
"""

from __future__ import annotations


class NiceError(Exception):
    """Base class for all errors raised by this library."""


class TopologyError(NiceError):
    """Raised for malformed topologies (unknown nodes, duplicate ports...)."""


class SwitchError(NiceError):
    """Raised by the switch model for invalid OpenFlow operations."""


class ChannelError(NiceError):
    """Raised for invalid channel operations (e.g. dequeue from empty)."""


class ControllerError(NiceError):
    """Raised by the controller runtime, e.g. an API call on an unknown switch."""


class TransitionError(NiceError):
    """Raised when a transition descriptor cannot be executed in a state."""


class SearchError(NiceError):
    """Raised for invalid model-checker configurations."""


class SolverError(NiceError):
    """Raised when the constraint solver is given constraints it cannot decide."""


class SymbolicError(NiceError):
    """Raised for unsupported operations on symbolic values."""


class ReplayError(NiceError):
    """Raised when a recorded trace fails to replay deterministically."""


class PropertyViolation(NiceError):
    """Raised (internally) when a correctness property detects a violation.

    The search loop converts these into :class:`repro.mc.search.Violation`
    records carrying the trace that reproduces the failure; user code normally
    never sees this exception escape.
    """

    def __init__(self, property_name: str, message: str):
        super().__init__(f"{property_name}: {message}")
        self.property_name = property_name
        self.message = message
