"""Network topologies: switches, hosts, ports, and links."""

from repro.topo.builder import topology_from_spec, topology_to_spec
from repro.topo.spanning_tree import spanning_tree_ports
from repro.topo.topology import Endpoint, HostSpec, Topology

__all__ = ["Endpoint", "HostSpec", "Topology", "spanning_tree_ports",
           "topology_from_spec", "topology_to_spec"]
