"""Declarative topology construction.

NICE's input includes "the specification of a topology with switches and
hosts" (Section 1.3).  :func:`topology_from_spec` builds a
:class:`~repro.topo.topology.Topology` from a plain dict — the natural shape
for a JSON/YAML file — so scenarios can live in configuration instead of
code:

>>> spec = {
...     "switches": {"s1": [1, 2], "s2": [1, 2]},
...     "links": [["s1", 2, "s2", 1]],
...     "hosts": {
...         "A": {"mac": "00:00:00:00:00:01", "ip": "10.0.0.1",
...               "switch": "s1", "port": 1},
...         "B": {"mac": "00:00:00:00:00:02", "ip": "10.0.0.2",
...               "switch": "s2", "port": 2},
...     },
... }
>>> topo = topology_from_spec(spec)
>>> sorted(topo.switches)
['s1', 's2']
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.topo.topology import Topology


def topology_from_spec(spec: dict) -> Topology:
    """Build and validate a topology from a declarative dict."""
    if not isinstance(spec, dict):
        raise TopologyError("topology spec must be a dict")
    topo = Topology()
    switches = spec.get("switches")
    if not switches:
        raise TopologyError("topology spec needs a 'switches' section")
    for name, ports in switches.items():
        topo.add_switch(str(name), [int(p) for p in ports])
    for link in spec.get("links", []):
        if len(link) != 4:
            raise TopologyError(f"link needs [sw1, port1, sw2, port2]: {link}")
        sw1, port1, sw2, port2 = link
        topo.add_link(str(sw1), int(port1), str(sw2), int(port2))
    for name, host in spec.get("hosts", {}).items():
        missing = {"mac", "ip", "switch", "port"} - set(host)
        if missing:
            raise TopologyError(
                f"host {name!r} spec missing {sorted(missing)}")
        topo.add_host(str(name), host["mac"], host["ip"],
                      str(host["switch"]), int(host["port"]))
    topo.validate()
    return topo


def topology_to_spec(topo: Topology) -> dict:
    """Inverse of :func:`topology_from_spec` (round-trip safe)."""
    from repro.openflow.packet import ip_to_string

    return {
        "switches": {name: list(ports)
                     for name, ports in topo.switches.items()},
        "links": [list(link) for link in topo.switch_links()],
        "hosts": {
            name: {
                "mac": repr(spec.mac),
                "ip": ip_to_string(spec.ip),
                "switch": spec.switch,
                "port": spec.port,
            }
            for name, spec in topo.hosts.items()
        },
    }
