"""The static network topology NICE takes as input (Figure 2).

A :class:`Topology` declares switches (with their port numbers), hosts (with
MAC/IP addresses and an attachment point), and switch-to-switch links.  It is
purely declarative — the dynamic state (e.g. where a mobile host currently
sits) lives in :class:`repro.mc.system.System`.

The topology also supplies the *domain knowledge* the symbolic-execution
engine uses to constrain header fields (Section 3.2): the sets of MAC and IP
addresses present in the network.
"""

from __future__ import annotations

from repro.errors import TopologyError
from repro.openflow.packet import MacAddress


class Endpoint:
    """What is attached at the far side of a switch port."""

    __slots__ = ("kind", "node", "port")

    KIND_SWITCH = "switch"
    KIND_HOST = "host"

    def __init__(self, kind: str, node: str, port: int | None = None):
        self.kind = kind
        self.node = node
        self.port = port

    def __eq__(self, other):
        if not isinstance(other, Endpoint):
            return NotImplemented
        return (self.kind, self.node, self.port) == (other.kind, other.node, other.port)

    def __hash__(self):
        return hash((self.kind, self.node, self.port))

    def __repr__(self):
        if self.kind == self.KIND_SWITCH:
            return f"Endpoint(switch {self.node}:{self.port})"
        return f"Endpoint(host {self.node})"


class HostSpec:
    """Declared attributes of one end host."""

    __slots__ = ("name", "mac", "ip", "switch", "port")

    def __init__(self, name: str, mac: MacAddress, ip: int, switch: str, port: int):
        self.name = name
        self.mac = mac
        self.ip = ip
        self.switch = switch
        self.port = port

    @property
    def location(self) -> tuple[str, int]:
        return (self.switch, self.port)

    def __repr__(self):
        return f"HostSpec({self.name}, mac={self.mac}, at {self.switch}:{self.port})"


class Topology:
    """Switches, hosts, and links.

    >>> topo = Topology()
    >>> topo.add_switch("s1", [1, 2])
    >>> topo.add_host("A", "00:00:00:00:00:01", "10.0.0.1", "s1", 1)
    >>> topo.add_host("B", "00:00:00:00:00:02", "10.0.0.2", "s1", 2)
    >>> topo.validate()
    """

    def __init__(self):
        self.switches: dict[str, list[int]] = {}
        self.hosts: dict[str, HostSpec] = {}
        self._links: dict[tuple[str, int], Endpoint] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_switch(self, name: str, ports: list[int]) -> None:
        if name in self.switches:
            raise TopologyError(f"duplicate switch {name!r}")
        if len(set(ports)) != len(ports):
            raise TopologyError(f"duplicate ports on switch {name!r}")
        self.switches[name] = sorted(ports)

    def add_host(self, name: str, mac, ip, switch: str, port: int) -> None:
        if name in self.hosts:
            raise TopologyError(f"duplicate host {name!r}")
        self._check_port(switch, port)
        self._check_port_free(switch, port)
        if isinstance(mac, str):
            mac = MacAddress.from_string(mac)
        if isinstance(ip, str):
            from repro.openflow.packet import ip_from_string

            ip = ip_from_string(ip)
        spec = HostSpec(name, mac, ip, switch, port)
        self.hosts[name] = spec
        self._links[(switch, port)] = Endpoint(Endpoint.KIND_HOST, name)

    def add_link(self, sw1: str, port1: int, sw2: str, port2: int) -> None:
        """Declare a bidirectional switch-to-switch link."""
        self._check_port(sw1, port1)
        self._check_port(sw2, port2)
        self._check_port_free(sw1, port1)
        self._check_port_free(sw2, port2)
        if sw1 == sw2:
            raise TopologyError(f"self-link on switch {sw1!r}")
        self._links[(sw1, port1)] = Endpoint(Endpoint.KIND_SWITCH, sw2, port2)
        self._links[(sw2, port2)] = Endpoint(Endpoint.KIND_SWITCH, sw1, port1)

    def _check_port(self, switch: str, port: int) -> None:
        if switch not in self.switches:
            raise TopologyError(f"unknown switch {switch!r}")
        if port not in self.switches[switch]:
            raise TopologyError(f"switch {switch!r} has no port {port}")

    def _check_port_free(self, switch: str, port: int) -> None:
        if (switch, port) in self._links:
            raise TopologyError(f"port {switch}:{port} already wired")

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def endpoint(self, switch: str, port: int) -> Endpoint | None:
        """Who is on the far side of ``switch:port`` (None for loose ports)."""
        return self._links.get((switch, port))

    def host_location(self, name: str) -> tuple[str, int]:
        return self.hosts[name].location

    def switch_links(self) -> list[tuple[str, int, str, int]]:
        """Each switch-to-switch link once, as ``(sw1, p1, sw2, p2)``."""
        seen = set()
        out = []
        for (sw, port), ep in sorted(self._links.items()):
            if ep.kind != Endpoint.KIND_SWITCH:
                continue
            key = frozenset([(sw, port), (ep.node, ep.port)])
            if key in seen:
                continue
            seen.add(key)
            out.append((sw, port, ep.node, ep.port))
        return out

    def switch_graph(self) -> dict[str, set[str]]:
        """Adjacency over switches only."""
        graph: dict[str, set[str]] = {name: set() for name in self.switches}
        for sw1, _, sw2, _ in self.switch_links():
            graph[sw1].add(sw2)
            graph[sw2].add(sw1)
        return graph

    def mac_addresses(self) -> list[MacAddress]:
        """Every declared host MAC (domain knowledge for symbolic packets)."""
        return [spec.mac for spec in self.hosts.values()]

    def ip_addresses(self) -> list[int]:
        """Every declared host IP (domain knowledge for symbolic packets)."""
        return [spec.ip for spec in self.hosts.values()]

    def host_by_mac(self, mac: MacAddress) -> HostSpec | None:
        for spec in self.hosts.values():
            if spec.mac == mac:
                return spec
        return None

    def validate(self) -> None:
        """Check global consistency; raises :class:`TopologyError`."""
        macs = [spec.mac for spec in self.hosts.values()]
        if len(set(macs)) != len(macs):
            raise TopologyError("duplicate host MAC addresses")
        if not self.switches:
            raise TopologyError("topology has no switches")

    def __repr__(self):
        return (f"Topology({len(self.switches)} switches, {len(self.hosts)} hosts,"
                f" {len(self.switch_links())} links)")
