"""Spanning-tree computation for loop-free flooding.

The paper's BUG-III arises because pyswitch floods on cyclic topologies
without building a spanning tree.  The *fixed* variant uses this module: a
deterministic BFS spanning tree over the switch graph, from which each switch
derives the set of ports it may flood on (tree ports plus host ports).
"""

from __future__ import annotations

from repro.topo.topology import Endpoint, Topology


def spanning_tree_links(topo: Topology) -> set[frozenset]:
    """The switch-to-switch links kept by a BFS spanning tree.

    Deterministic: roots at the lexicographically-smallest switch and visits
    neighbors in sorted order, so every run picks the same tree.
    """
    switches = sorted(topo.switches)
    if not switches:
        return set()
    graph = topo.switch_graph()
    root = switches[0]
    visited = {root}
    frontier = [root]
    kept: set[frozenset] = set()
    while frontier:
        node = frontier.pop(0)
        for neighbor in sorted(graph[node]):
            if neighbor in visited:
                continue
            visited.add(neighbor)
            kept.add(frozenset((node, neighbor)))
            frontier.append(neighbor)
    return kept


def spanning_tree_ports(topo: Topology) -> dict[str, set[int]]:
    """For each switch, the ports on which flooding is loop-free.

    Includes every host-facing (or unwired) port and the ports of
    switch-to-switch links that belong to the spanning tree.
    """
    kept = spanning_tree_links(topo)
    ports: dict[str, set[int]] = {}
    for switch, all_ports in topo.switches.items():
        allowed: set[int] = set()
        for port in all_ports:
            ep = topo.endpoint(switch, port)
            if ep is None or ep.kind == Endpoint.KIND_HOST:
                allowed.add(port)
            elif frozenset((switch, ep.node)) in kept:
                allowed.add(port)
        ports[switch] = allowed
    return ports
