"""Canonical serialization and hashing of system states.

Section 6: "State-matching is done by comparing and storing hashes of the
explored states.  To create state hashes, NICE serializes the state via the
cPickle module and applies the built-in hash function."

Pickle output depends on dict insertion order, so this module instead builds
a *canonical* nested-tuple form — dict items sorted, sets sorted, and model
objects contributing their own ``canonical()`` methods — and hashes its
stable text rendering.  The same logical state always hashes identically,
regardless of the event order that produced its containers.
"""

from __future__ import annotations

import hashlib


def canonicalize(obj):
    """Convert ``obj`` into a deterministic, hashable nested-tuple form."""
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    canonical = getattr(obj, "canonical", None)
    if callable(canonical):
        return canonicalize(canonical())
    if isinstance(obj, dict):
        items = [(canonicalize(k), canonicalize(v)) for k, v in obj.items()]
        items.sort(key=lambda kv: repr(kv[0]))
        return ("dict",) + tuple(items)
    if isinstance(obj, (list, tuple)):
        return tuple(canonicalize(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        items = sorted((canonicalize(item) for item in obj), key=repr)
        return ("set",) + tuple(items)
    if hasattr(obj, "__dict__"):
        return ("obj", type(obj).__name__, canonicalize(vars(obj)))
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def state_string(obj) -> str:
    """Stable text rendering of the canonical form."""
    return repr(canonicalize(obj))


def state_hash(obj) -> str:
    """Compact digest of the canonical form, for the explored-state set."""
    return hashlib.md5(state_string(obj).encode()).hexdigest()


def hash_canonical(form) -> str:
    """Digest of an *already canonical* form.

    ``canonicalize`` is idempotent, so for a form it produced this equals
    ``state_hash(form)`` while skipping the full re-walk of the object tree
    — the fast path the memoizing :meth:`System.state_hash` relies on.
    """
    return hashlib.md5(repr(form).encode()).hexdigest()
