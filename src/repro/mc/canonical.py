"""Canonical serialization and hashing of system states.

Section 6: "State-matching is done by comparing and storing hashes of the
explored states.  To create state hashes, NICE serializes the state via the
cPickle module and applies the built-in hash function."

Pickle output depends on dict insertion order, so this module instead builds
a *canonical* nested-tuple form — dict items sorted, sets sorted, and model
objects contributing their own ``canonical()`` methods — and hashes its
stable text rendering.  The same logical state always hashes identically,
regardless of the event order that produced its containers.

Hashing uses ``blake2b`` (16-byte digests), which is both faster than the
md5 the seed used and available keyed/tree-hashing-free from the standard
library.  :func:`digest_canonical` is the building block of the Merkle-style
per-component digest cache in :meth:`System.state_hash
<repro.mc.system.System.state_hash>`: each memoized component form is
hashed once, and a state hash combines the cached component digests instead
of re-rendering the whole tree (DESIGN.md, "Per-state hot path").
"""

from __future__ import annotations

import hashlib
import marshal
import re

#: Digest width for state hashes, in bytes (hex-doubles when rendered).
DIGEST_SIZE = 16

#: Canonical forms are rendered to bytes with version-2 ``marshal`` — the
#: last format without object references, so structurally equal forms
#: render identically no matter how their sub-tuples are shared (memoized
#: packet headers, interned strings), which the repr rendering guaranteed
#: and object-ref formats (pickle, marshal >= 3) do not.  It is also ~5x
#: faster than ``repr`` and discriminates every type canonical forms use
#: (None/bool/int/float/str/bytes/tuple).  Digests are per-run artifacts
#: (never persisted), so marshal's version-to-version instability does not
#: matter; socket workers on other machines already require matching
#: interpreters for the pickle wire protocol.
_MARSHAL_VERSION = 2


def render_canonical(form) -> bytes:
    """Deterministic byte rendering of an already-canonical form."""
    return marshal.dumps(form, _MARSHAL_VERSION)

#: Characters over which plain string order provably equals repr order:
#: printable ASCII at or above ``(`` (0x28), minus the backslash.  Everything
#: in this set renders unescaped inside repr's single quotes, and the
#: closing quote (0x27) stays smaller than any of them — so when one key is
#: a proper prefix of another, ``'a'`` still sorts before ``'a('`` exactly
#: as ``a`` sorts before ``a(``.  Quotes, escapes, and low-codepoint
#: characters (space through ``&``) would all reorder; they take the slow
#: path.
_SAFE_KEY_RE = re.compile(r"[\x28-\x5b\x5d-\x7e]*\Z")


def _safe_string_key(key) -> bool:
    """True when sorting ``key`` directly orders identically to sorting by
    ``repr(key)`` (see :data:`_SAFE_KEY_RE`)."""
    return type(key) is str and _SAFE_KEY_RE.match(key) is not None


def canonicalize(obj):
    """Convert ``obj`` into a deterministic, hashable nested-tuple form.

    Objects exposing a ``canonical()`` method are trusted to return an
    *already canonical* form — primitives and nested tuples only, with any
    internal dicts/sets pre-sorted (every model class in this repo does;
    it is part of the ``canonical()`` contract).  Trusting it lets a
    component digest recompute skip re-walking thousands of packet and
    message sub-tuples that the model already rendered canonically.
    """
    if obj is None or isinstance(obj, (bool, int, float, str, bytes)):
        return obj
    canonical = getattr(obj, "canonical", None)
    if callable(canonical):
        return canonical()
    if isinstance(obj, dict):
        items = [(canonicalize(k), canonicalize(v)) for k, v in obj.items()]
        # Fast path for the common all-string-key dicts (state vars, stats
        # counters): plain sort on the keys themselves.  Guarded so the
        # resulting order — and therefore every hash — is identical to the
        # repr-keyed slow path; dict keys are unique, so the comparison
        # never reaches the (possibly incomparable) values.
        if all(_safe_string_key(k) for k, _ in items):
            items.sort()
        else:
            items.sort(key=lambda kv: repr(kv[0]))
        return ("dict",) + tuple(items)
    if isinstance(obj, (list, tuple)):
        return tuple(canonicalize(item) for item in obj)
    if isinstance(obj, (set, frozenset)):
        items = sorted((canonicalize(item) for item in obj), key=repr)
        return ("set",) + tuple(items)
    if hasattr(obj, "__dict__"):
        return ("obj", type(obj).__name__, canonicalize(vars(obj)))
    raise TypeError(f"cannot canonicalize {type(obj).__name__}: {obj!r}")


def state_string(obj) -> str:
    """Stable text rendering of the canonical form."""
    return repr(canonicalize(obj))


def digest_bytes(data: bytes) -> bytes:
    """Raw blake2b digest of ``data`` (the Merkle-tree building block)."""
    return hashlib.blake2b(data, digest_size=DIGEST_SIZE).digest()


def digest_canonical(form) -> bytes:
    """Raw digest of an *already canonical* form."""
    return digest_bytes(render_canonical(form))


def state_hash(obj) -> str:
    """Compact digest of the canonical form, for the explored-state set.

    Kept as md5-over-repr — the exact pre-digest hashing — so that
    ``hash_mode="full"`` measures the unmodified old behavior; the digest
    hot path uses :func:`render_canonical` + blake2b instead.
    """
    return hashlib.md5(state_string(obj).encode()).hexdigest()


def hash_canonical(form) -> str:
    """Digest of an *already canonical* form (legacy md5-over-repr).

    ``canonicalize`` is idempotent, so for a form it produced this equals
    ``state_hash(form)`` while skipping the full re-walk of the object tree
    — the fast path the memoizing :meth:`System.state_hash` relied on
    before per-component digests; it remains the ``hash_mode="full"``
    baseline.
    """
    return hashlib.md5(repr(form).encode()).hexdigest()
