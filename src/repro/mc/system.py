"""The composed system model: controller + switches + hosts + channels.

A :class:`System` is the model-checker's notion of "state": a plain-Python
object tree that can be deep-copied (checkpointing), canonically serialized
(state matching), and advanced by executing :class:`~repro.mc.transitions.
Transition` descriptors (always deterministically — the foundation of
trace replay, Section 6).

The system also keeps the :class:`PacketLedger`: a record of every packet
injected, delivered, lost (forwarded out a port with nothing attached — the
black holes of BUG-I), or dropped, which the correctness properties read.
"""

from __future__ import annotations

import copy
import hashlib

from repro.config import HASH_DIGEST, NiceConfig
from repro.controller.api import LiveControllerAPI
from repro.controller.runtime import ControllerRuntime
from repro.errors import TransitionError
from repro.mc import transitions as tk
from repro.mc.canonical import (
    DIGEST_SIZE,
    canonicalize,
    digest_bytes,
    render_canonical,
)
from repro.mc.transitions import Transition
from repro.openflow.messages import StatsReply
from repro.openflow.packet import Packet
from repro.openflow.switch import SwitchModel
from repro.topo.topology import Endpoint, Topology


class HashStats:
    """Per-state hot-path counters (DESIGN.md, "Per-state hot path").

    One object is shared by reference between a System and every clone
    descended from it, so a search run (or one worker process) accumulates
    into a single place:

    * ``hits`` / ``misses`` — component-digest cache hits vs. recomputes in
      digest hash mode;
    * ``bytes_hashed`` — bytes of canonical *rendering* performed for
      hashing, the O(changed) work: full mode renders the whole state per
      call (plus the controller form on discovery-cache misses), digest
      mode only re-rendered components and the meta tail.  Re-feeding
      already-cached digests/tails to the 16-byte combiner is not counted
      — it is not rendering work;
    * ``cow_copied`` — components lazily copied by copy-on-write clones.
    """

    __slots__ = ("hits", "misses", "bytes_hashed", "cow_copied")

    def __init__(self):
        self.hits = 0
        self.misses = 0
        self.bytes_hashed = 0
        self.cow_copied = 0

    def snapshot(self) -> tuple[int, int, int, int]:
        return (self.hits, self.misses, self.bytes_hashed, self.cow_copied)

    def __repr__(self):
        return (f"HashStats(hits={self.hits}, misses={self.misses},"
                f" bytes={self.bytes_hashed}, cow={self.cow_copied})")


class PacketLedger:
    """System-wide accounting of packet fates."""

    def __init__(self):
        #: (uid, host) per injection.
        self.injected: list[tuple] = []
        #: (uid, copy_id, host) per packet consumed by a host.
        self.delivered: list[tuple] = []
        #: (uid, copy_id, switch, port) per packet sent into the void.
        self.lost: list[tuple] = []
        #: fault-model events (op, switch, port).
        self.faults: list[tuple] = []
        #: Ordered history of all of the above, for properties that need
        #: happened-before information ("wait until a safe time", §5.2).
        #: Deliberately *excluded* from canonical() — two interleavings that
        #: reach the same network state should still hash together; the
        #: paper's callback-local-state design has the same blind spot.
        self.log: list[tuple] = []
        #: Header copies of every injected packet (for FLOW-IR's
        #: established-flow test).  Derivable from ``injected``; not hashed.
        self.history: list[Packet] = []

    def record_injected(self, packet: Packet, host: str) -> None:
        self.injected.append((packet.uid, host))
        self.log.append(("inj", packet.uid, host, packet.flow_key()))
        header_copy = packet.copy()
        header_copy.hops = []
        self.history.append(header_copy)

    def record_delivered(self, packet: Packet, host: str) -> None:
        self.delivered.append((packet.uid, packet.copy_id, host))
        self.log.append(("del", packet.uid, host, packet.flow_key()))

    def record_lost(self, packet: Packet, switch: str, port: int) -> None:
        self.lost.append((packet.uid, packet.copy_id, switch, port))
        self.log.append(("lost", packet.uid, switch, port))

    def record_fault(self, op: tuple, switch: str, port: int) -> None:
        self.faults.append((op, switch, port))
        self.log.append(("fault", op, switch, port))

    def clone(self) -> "PacketLedger":
        """Checkpoint copy: every record is an immutable tuple (and the
        ``history`` packets are private header copies, never mutated), so
        shallow list copies suffice."""
        new = PacketLedger.__new__(PacketLedger)
        new.injected = list(self.injected)
        new.delivered = list(self.delivered)
        new.lost = list(self.lost)
        new.faults = list(self.faults)
        new.log = list(self.log)
        new.history = list(self.history)
        return new

    def canonical(self) -> tuple:
        return (
            tuple(sorted(self.injected, key=repr)),
            tuple(sorted(self.delivered, key=repr)),
            tuple(sorted(self.lost, key=repr)),
            tuple(sorted(self.faults, key=repr)),
        )


class System:
    """One state of the whole network under test."""

    def __init__(self, topo: Topology, app, hosts: list, config: NiceConfig):
        topo.validate()
        self.topo = topo
        self.config = config
        self.switches: dict[str, SwitchModel] = {}
        for name, ports in topo.switches.items():
            switch = SwitchModel(
                name,
                ports,
                canonical_flow_tables=config.canonical_flow_tables,
                reliable_packet_channels=not config.channel_faults,
            )
            switch.hash_counters = config.hash_counters
            self.switches[name] = switch
        self.hosts: dict[str, object] = {}
        for host in hosts:
            if host.name not in topo.hosts:
                raise TransitionError(f"host {host.name!r} not in topology")
            host.counter_c = config.max_outstanding
            self.hosts[host.name] = host
        #: Dynamic attachment map; mobile hosts mutate it.
        self.attachments: dict[tuple[str, int], str] = {
            topo.hosts[name].location: name for name in self.hosts
        }
        self.host_locations: dict[str, tuple[str, int]] = {
            name: topo.hosts[name].location for name in self.hosts
        }
        self.runtime = ControllerRuntime(app)
        self.ledger = PacketLedger()
        self.events_fired: dict[str, bool] = {
            name: False for name in app.external_events()
        }
        #: Issue-order stamp for controller->switch messages (UNUSUAL).
        self.of_seq = 0
        #: Record of the most recent controller-handler invocation:
        #: ``{"kind", "switch", "packet", "calls"}`` where calls is the list
        #: of API invocations the handler made.  Properties such as
        #: UseCorrectRoutingTable inspect it right after a transition.
        #: Ephemeral (derived from the last transition) — not hashed.
        self.last_handler: dict | None = None
        self._api_calls: list[tuple] = []
        #: Memoized per-component canonical forms (DESIGN.md, "Hash
        #: memoization").  Keys: ``("sw", id)``, ``("host", name)``,
        #: ``"app"``, ``"ctrl"`` (controller-state digest), ``"ledger"``.
        #: Every mutation path pops the affected keys via :meth:`_dirty`.
        self._canon_cache: dict = {}
        #: Merkle layer on top of the canonical memo: per-component blake2b
        #: digests, invalidated by the same :meth:`_dirty` keys.  A state
        #: hash combines these instead of re-rendering the whole tree.
        self._digest_cache: dict = {}
        #: Hot-path counters, shared by reference with every clone.
        self._hash_stats = HashStats()
        #: Copy-on-write bookkeeping: component keys whose objects may also
        #: be referenced by another System (a parent or a child), and must
        #: therefore be copied before their first mutation.  Every mutation
        #: path goes through :meth:`_dirty`, which materializes shared
        #: components before dropping their cached forms.
        self._shared: set = set()
        self._component_keys = frozenset(
            [("sw", sw_id) for sw_id in self.switches]
            + [("host", name) for name in self.hosts]
            + ["app", "ledger"]
        )
        #: Component and event orderings are fixed for the lifetime of the
        #: system (and every clone); precomputing them keeps sorts out of
        #: the per-state hot path.
        self._sw_order = tuple(sorted(self.switches))
        self._host_order = tuple(sorted(self.hosts))
        self._event_order = tuple(sorted(self.events_fired))

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------

    @property
    def app(self):
        return self.runtime.app

    def api(self) -> LiveControllerAPI:
        api = LiveControllerAPI(self)
        return _StampingAPI(api, self)

    def boot(self) -> None:
        """Deliver boot + switch-join events, then settle the control plane.

        Booting synchronously applies any initial rule installations so the
        search starts from the configured network, not from an exploration
        of setup orderings.
        """
        self.runtime.boot(self.api(), self.topo, sorted(self.switches))
        self._dirty("app", "ctrl")
        self.drain_control_plane()

    # ------------------------------------------------------------------
    # Enabled transitions
    # ------------------------------------------------------------------

    def enabled_transitions(self) -> list[Transition]:
        """Base enabled set (the search layer adds symbolic sends/stats)."""
        enabled: list[Transition] = []
        for sw_id in self._sw_order:
            switch = self.switches[sw_id]
            if switch.can_process_pkt():
                enabled.append(Transition(tk.PROCESS_PKT, sw_id))
            if switch.can_process_of():
                enabled.append(Transition(tk.PROCESS_OF, sw_id))
            if self.runtime.can_handle(switch):
                enabled.append(Transition(tk.CTRL_HANDLE, sw_id))
            if self.config.enable_rule_timeouts:
                for index in range(len(switch.table.expirable_rules())):
                    enabled.append(Transition(tk.EXPIRE_RULE, sw_id, index))
            if self.config.channel_faults:
                for port in switch.ports:
                    for op in switch.port_in[port].fault_operations():
                        enabled.append(
                            Transition(tk.CHANNEL_FAULT, sw_id, (port, op))
                        )
        for name in self._host_order:
            host = self.hosts[name]
            for descriptor in host.send_candidates(self.config.max_pkt_sequence):
                enabled.append(Transition(tk.HOST_SEND, name, descriptor))
            if host.can_receive():
                enabled.append(Transition(tk.HOST_RECV, name))
            for target in host.move_targets():
                enabled.append(Transition(tk.HOST_MOVE, name, target))
        for event in self._event_order:
            if not self.events_fired[event]:
                enabled.append(Transition(tk.CTRL_EVENT, event))
        return enabled

    def quiescent(self) -> bool:
        return not self.enabled_transitions()

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------

    def execute(self, transition: Transition) -> None:
        """Apply one transition; raises TransitionError if not executable.

        Mutate-through-owner discipline: a component reference is fetched
        *after* the ``_dirty`` call that covers it, never before — under
        copy-on-write cloning ``_dirty`` may replace the shared component
        with this system's own copy, and a stale reference would mutate
        the parent's state.
        """
        kind = transition.kind
        if kind == tk.PROCESS_PKT:
            self._dirty(("sw", transition.actor))
            switch = self._switch(transition.actor)
            self.route(transition.actor, switch.process_pkt())
        elif kind == tk.PROCESS_OF:
            self._dirty(("sw", transition.actor))
            switch = self._switch(transition.actor)
            self.route(transition.actor, switch.process_of())
        elif kind == tk.CTRL_HANDLE:
            switch = self._switch(transition.actor)
            pending = switch.ofp_out.peek() if switch.ofp_out else None
            self._begin_handler("ctrl_handle", transition.actor, pending)
            self.handle_ctrl_message(switch)
            self._end_handler()
        elif kind == tk.CTRL_STATS:
            self._begin_handler("ctrl_stats", transition.actor, None)
            self._dirty(("sw", transition.actor), "app", "ctrl")
            self._execute_ctrl_stats(transition)
            self._end_handler()
        elif kind == tk.CTRL_EVENT:
            if self.events_fired.get(transition.actor, True):
                raise TransitionError(f"event {transition.actor!r} already fired")
            self.events_fired[transition.actor] = True
            self._begin_handler("ctrl_event", transition.actor, None)
            self._dirty("app", "ctrl", "meta")
            self.app.handle_event(self.api(), transition.actor)
            self._end_handler()
        elif kind == tk.HOST_SEND:
            self._execute_host_send(transition)
        elif kind == tk.HOST_RECV:
            self._dirty(("host", transition.actor), "ledger")
            host = self._host(transition.actor)
            packet = host.receive()
            self.ledger.record_delivered(packet, transition.actor)
        elif kind == tk.HOST_MOVE:
            self._execute_host_move(transition)
        elif kind == tk.EXPIRE_RULE:
            self._dirty(("sw", transition.actor))
            self._switch(transition.actor).expire_rule(transition.arg)
        elif kind == tk.CHANNEL_FAULT:
            port, op = transition.arg
            self._dirty(("sw", transition.actor), "ledger")
            switch = self._switch(transition.actor)
            switch.port_in[port].apply_fault(tuple(op))
            self.ledger.record_fault(tuple(op), transition.actor, port)
        else:
            raise TransitionError(f"unknown transition kind {kind!r}")

    def _execute_ctrl_stats(self, transition: Transition) -> None:
        """Consume a pending stats reply, substituting discovered values.

        The symbolic-execution layer finds representative statistics that
        exercise each path of the stats handler (Figure 5, discover_stats);
        this transition delivers one such representative in place of the
        model's real counters.
        """
        switch = self._switch(transition.actor)
        if not switch.ofp_out or not isinstance(switch.ofp_out.peek(), StatsReply):
            raise TransitionError(
                f"no pending stats reply from {transition.actor}"
            )
        reply = switch.ofp_out.dequeue()
        stats = transition.payload if transition.payload is not None else reply.stats
        self.app.port_stats_in(self.api(), transition.actor, stats, xid=reply.xid)

    def _execute_host_send(self, transition: Transition) -> None:
        self._dirty(("host", transition.actor), "ledger")
        host = self._host(transition.actor)
        descriptor = transition.arg
        if descriptor[0] == "sym":
            if transition.payload is None:
                raise TransitionError("symbolic send without packet payload")
            packet = host.take_send_sym(transition.payload)
        else:
            packet = host.take_send(tuple(descriptor))
        # Identity independent of global interleaving: the n-th send of a
        # given header signature by this host always gets the same uid, so
        # equivalent event orders still reach identical states.  (The
        # header tuple is already canonical; the fast renderer is used in
        # every mode, so uids never differ between engine configurations.)
        signature = digest_bytes(render_canonical(packet.header_tuple())).hex()[:8]
        occurrence = host.send_sig_counts.get(signature, 0)
        host.send_sig_counts[signature] = occurrence + 1
        packet.uid = (host.name, signature, occurrence)
        packet.copy_id = ()
        packet.hops = []
        switch_id, port = self.host_locations[host.name]
        self._dirty(("sw", switch_id))
        self._switch(switch_id).port_in[port].enqueue(packet)
        self.ledger.record_injected(packet, host.name)

    def _execute_host_move(self, transition: Transition) -> None:
        # "meta" covers the attachment map in the digest-combine tail.
        self._dirty(("host", transition.actor), "meta")
        host = self._host(transition.actor)
        target = tuple(transition.arg)
        if target[0] not in self.switches or target[1] not in self.switches[target[0]].ports:
            raise TransitionError(f"move target {target} is not a switch port")
        if self.attachments.get(target) not in (None, host.name):
            raise TransitionError(f"move target {target} is occupied")
        old = self.host_locations[host.name]
        host.take_move()
        self.attachments.pop(old, None)
        self.attachments[target] = host.name
        self.host_locations[host.name] = target

    def _begin_handler(self, kind: str, actor: str, pending_message) -> None:
        from repro.openflow.messages import PacketIn

        self._api_calls = []
        packet = None
        if isinstance(pending_message, PacketIn):
            packet = pending_message.packet
        self.last_handler = {
            "kind": kind,
            "actor": actor,
            "packet": packet,
            "calls": self._api_calls,
        }

    def _end_handler(self) -> None:
        # last_handler already references the (now filled) call list.
        self._api_calls = []

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def route(self, sw_id: str, emissions: list[tuple[int, Packet]]) -> None:
        """Deliver switch emissions along links; track black-holed packets."""
        for port, packet in emissions:
            host_name = self.attachments.get((sw_id, port))
            if host_name is not None:
                self._dirty(("host", host_name))
                self.hosts[host_name].deliver(packet)
                continue
            endpoint = self.topo.endpoint(sw_id, port)
            if endpoint is not None and endpoint.kind == Endpoint.KIND_SWITCH:
                self._dirty(("sw", endpoint.node))
                self.switches[endpoint.node].port_in[endpoint.port].enqueue(packet)
                continue
            # Nothing attached (loose port, or the host moved away): the
            # packet leaves the network without reaching any destination.
            self._dirty("ledger")
            self.ledger.record_lost(packet, sw_id, port)

    def drain_control_plane(self) -> None:
        """Run all pending control-plane work to completion, atomically.

        Used at boot and by the NO-DELAY strategy (Section 4): every
        outstanding controller<->switch message is processed in a fixed
        deterministic order until the control plane is silent.
        """
        progress = True
        while progress:
            progress = False
            for sw_id in self._sw_order:
                # Re-index every iteration: pumping or handling may replace
                # the switch object (copy-on-write materialization), and a
                # stale reference would read the pre-copy queues forever.
                while self.switches[sw_id].can_process_of():
                    self.pump_process_of(sw_id)
                    progress = True
                while self.runtime.can_handle(self.switches[sw_id]):
                    self.handle_ctrl_message(self.switches[sw_id])
                    progress = True

    def handle_ctrl_message(self, switch) -> None:
        """Run the controller handler for ``switch``'s next pending message.

        The invalidation-safe entry point: dequeuing from ``ofp_out`` and the
        handler's controller-state mutation both invalidate cached canonical
        forms; API calls to other switches invalidate theirs via the stamping
        wrapper.  Strategies that pump the control plane outside ``execute``
        (NO-DELAY) must go through here.
        """
        self._dirty(("sw", switch.switch_id), "app", "ctrl")
        # _dirty may have copied the switch (copy-on-write); dequeue from
        # this system's own object, not the caller's possibly-stale one.
        self.runtime.handle_message(self.api(), self.switches[switch.switch_id])

    def pump_process_of(self, sw_id: str) -> None:
        """Apply one pending controller message at ``sw_id`` and route the
        resulting emissions (invalidation-safe; used by boot and NO-DELAY)."""
        self._dirty(("sw", sw_id))
        self.route(sw_id, self.switches[sw_id].process_of())

    # ------------------------------------------------------------------
    # State identity / checkpointing
    # ------------------------------------------------------------------

    def _dirty(self, *keys) -> None:
        """Declare components about to be mutated.

        Two jobs, driven by the same keys: materialize any component still
        shared with a parent/child clone (copy-on-write), and drop its
        cached canonical form and digest.  Every mutation path calls this
        *before* touching the component and fetches its reference *after*.
        """
        for key in keys:
            if key in self._shared:
                self._materialize(key)
            self._canon_cache.pop(key, None)
            self._digest_cache.pop(key, None)

    def _materialize(self, key) -> None:
        """Replace a shared component with this system's own copy."""
        self._shared.discard(key)
        self._hash_stats.cow_copied += 1
        if key == "app":
            self.runtime = ControllerRuntime(self.runtime.app.clone())
        elif key == "ledger":
            self.ledger = self.ledger.clone()
        else:
            kind, name = key
            if kind == "sw":
                self.switches[name] = self.switches[name].clone({})
            else:
                self.hosts[name] = self.hosts[name].clone({})

    def _memo(self, key, obj):
        """Cached ``canonicalize(obj)``; recomputed only after `_dirty`."""
        if not self.config.hash_memoization:
            return canonicalize(obj)
        form = self._canon_cache.get(key)
        if form is None:
            form = canonicalize(obj)
            self._canon_cache[key] = form
        return form

    def canonical_state(self) -> tuple:
        """Fully canonical state tuple.

        Component entries are memoized per switch/host/app/ledger (see
        ``hash_memoization``); ``canonicalize`` is idempotent, so the overall
        form — and therefore every state hash — is identical to canonicalizing
        the raw component tuples from scratch.
        """
        base = (
            tuple(self._memo(("sw", s), self.switches[s])
                  for s in self._sw_order),
            tuple(self._memo(("host", h), self.hosts[h])
                  for h in self._host_order),
            self._memo("app", self.app.state_vars()),
            tuple(sorted(self.attachments.items())),
            self._memo("ledger", self.ledger),
            tuple((e, self.events_fired[e]) for e in self._event_order),
        )
        extra = self.canonical_extra()
        return base + ((extra,) if extra else ())

    def canonical_extra(self) -> tuple:
        """Subclass hook: extra state folded into the hash in *both* hash
        modes (e.g. the JPF baseline's pending handler operations).  Must
        return an already-canonical tuple; ``()`` contributes nothing."""
        return ()

    def controller_state_hash(self) -> str:
        """Hash of the controller state only — the discovery-cache key of
        Figure 5 (``client.packets[state(ctrl)]``)."""
        if not self.config.hash_memoization:
            data = repr(canonicalize(self.app.state_vars())).encode()
            self._hash_stats.bytes_hashed += len(data)
            return hashlib.md5(data).hexdigest()
        if self.config.hash_mode == HASH_DIGEST:
            return self._digest("app", self.app.state_vars).hex()
        digest = self._canon_cache.get("ctrl")
        if digest is None:
            data = repr(self._memo("app", self.app.state_vars())).encode()
            self._hash_stats.bytes_hashed += len(data)
            digest = hashlib.md5(data).hexdigest()
            self._canon_cache["ctrl"] = digest
        return digest

    def _digest(self, key, obj) -> bytes:
        """Cached blake2b digest of one component's canonical form.

        ``obj`` is the component, or a zero-argument callable invoked only
        on a miss (``app.state_vars`` allocates a dict per call, so it is
        passed as the bound method).  Hit/miss/bytes counters feed
        :class:`HashStats`.
        """
        digest = self._digest_cache.get(key)
        if digest is None:
            if callable(obj):
                obj = obj()
            data = render_canonical(self._memo(key, obj))
            digest = digest_bytes(data)
            self._digest_cache[key] = digest
            self._hash_stats.misses += 1
            self._hash_stats.bytes_hashed += len(data)
        else:
            self._hash_stats.hits += 1
        return digest

    def state_hash(self) -> str:
        """Digest of the full state, for the explored-state set.

        Digest mode (the default) combines the cached per-component
        digests Merkle-style: a transition that touched one switch
        re-renders and re-hashes that one switch, not the whole tree.
        Full mode — and any run with ``hash_memoization`` off — renders
        the entire canonical tuple per call, the O(state size) baseline.
        Both modes induce the same state partition: two states combine to
        the same digest exactly when their canonical forms are equal.
        """
        config = self.config
        if not (config.hash_memoization and config.hash_mode == HASH_DIGEST):
            # The measurable old behavior: md5 over a repr of the entire
            # canonical tuple, exactly as shipped before digest hashing.
            data = repr(self.canonical_state()).encode()
            self._hash_stats.bytes_hashed += len(data)
            return hashlib.md5(data).hexdigest()
        combined = hashlib.blake2b(digest_size=DIGEST_SIZE)
        for sw_id in self._sw_order:
            combined.update(self._digest(("sw", sw_id), self.switches[sw_id]))
        for name in self._host_order:
            combined.update(self._digest(("host", name), self.hosts[name]))
        combined.update(self._digest("app", self.app.state_vars))
        combined.update(self._digest("ledger", self.ledger))
        # The small always-owned fields (attachments, fired events) ride
        # along as a cached rendered tail under the "meta" dirty key; the
        # component digest count is fixed per topology, so the
        # concatenation is unambiguous.
        tail = self._digest_cache.get("meta")
        if tail is None:
            tail = render_canonical((
                tuple(sorted(self.attachments.items())),
                tuple((e, self.events_fired[e]) for e in self._event_order),
            ))
            self._digest_cache["meta"] = tail
            self._hash_stats.bytes_hashed += len(tail)
        combined.update(tail)
        # Subclass extras (the JPF baseline's pending operations) may be
        # mutated directly from outside ``execute``, so they are rendered
        # per call, never cached — they are empty for plain systems.
        extra = self.canonical_extra()
        if extra:
            data = render_canonical(extra)
            self._hash_stats.bytes_hashed += len(data)
            combined.update(data)
        return combined.hexdigest()

    def clone(self) -> "System":
        """Checkpoint: copy the mutable parts, share everything static.

        Copy-on-write (default): the clone *shares* every switch, host,
        app, and ledger component with this system, and a component is
        copied lazily on its first mutation — by :meth:`_dirty`, the same
        invalidation that already knows exactly which components a
        transition touches.  Cloning becomes O(#components) dict copies
        and executing a child costs one component copy per touched
        component, not one full state copy per child.

        ``cow_clone=False`` falls back to the eager component-wise copy
        (``fast_clone``) — the ``clone`` methods on :class:`SwitchModel`,
        :class:`FlowTable`, :class:`~repro.hosts.base.Host`,
        :class:`PacketLedger` and the apps, sharing immutable objects and
        memo-copying data-plane packets — and ``fast_clone=False`` keeps
        the seed's full deepcopy, the baselines the hot-path benchmark
        measures against (DESIGN.md, "Per-state hot path").
        """
        if self.config.cow_clone:
            return self._clone_cow()
        if not self.config.fast_clone:
            return self._clone_deepcopy()
        packet_memo: dict = {}
        new = object.__new__(System)
        new.topo = self.topo
        new.config = self.config
        new.switches = {sw_id: switch.clone(packet_memo)
                        for sw_id, switch in self.switches.items()}
        new.hosts = {name: host.clone(packet_memo)
                     for name, host in self.hosts.items()}
        new.runtime = ControllerRuntime(self.runtime.app.clone())
        new.ledger = self.ledger.clone()
        new._shared = set()
        return self._finish_clone(new)

    def _clone_cow(self) -> "System":
        """Copy-on-write checkpoint: share every component, copy none."""
        new = object.__new__(System)
        new.topo = self.topo
        new.config = self.config
        new.switches = dict(self.switches)
        new.hosts = dict(self.hosts)
        new.runtime = self.runtime
        new.ledger = self.ledger
        new._shared = set(self._component_keys)
        # The parent keeps referencing the same objects, so it gives up
        # exclusive ownership too: whichever side mutates a component
        # first materializes its own copy (isolation in both directions).
        self._shared.update(self._component_keys)
        return self._finish_clone(new)

    def _clone_deepcopy(self) -> "System":
        """The seed's checkpointing: deep-copy every mutable component."""
        new = object.__new__(System)
        new.topo = self.topo
        new.config = self.config
        new.switches = copy.deepcopy(self.switches)
        new.hosts = copy.deepcopy(self.hosts)
        new.runtime = ControllerRuntime(copy.deepcopy(self.runtime.app))
        new.ledger = copy.deepcopy(self.ledger)
        new._shared = set()
        return self._finish_clone(new)

    def _finish_clone(self, new: "System") -> "System":
        """Fields copied identically by all three clone strategies."""
        new.attachments = dict(self.attachments)
        new.host_locations = dict(self.host_locations)
        new.events_fired = dict(self.events_fired)
        new.of_seq = self.of_seq
        new.last_handler = None
        new._api_calls = []
        # Canonical forms and digests are immutable; a shallow copy lets
        # the child reuse everything its transition does not invalidate.
        new._canon_cache = dict(self._canon_cache)
        new._digest_cache = dict(self._digest_cache)
        new._hash_stats = self._hash_stats
        new._component_keys = self._component_keys
        new._sw_order = self._sw_order
        new._host_order = self._host_order
        new._event_order = self._event_order
        return new

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _switch(self, sw_id: str) -> SwitchModel:
        switch = self.switches.get(sw_id)
        if switch is None:
            raise TransitionError(f"unknown switch {sw_id!r}")
        return switch

    def _host(self, name: str):
        host = self.hosts.get(name)
        if host is None:
            raise TransitionError(f"unknown host {name!r}")
        return host

    def __repr__(self):
        return (f"System({len(self.switches)} switches, {len(self.hosts)} hosts,"
                f" app={type(self.app).__name__})")


class _StampingAPI:
    """Wraps the live API to stamp controller->switch messages with a global
    issue sequence (consumed by the UNUSUAL strategy)."""

    def __init__(self, api: LiveControllerAPI, system: System):
        self._api = api
        self._system = system

    def __getattr__(self, name):
        method = getattr(self._api, name)

        def wrapper(sw_id, *args, **kwargs):
            # Invalidate (and, under copy-on-write, materialize) before
            # fetching the switch: the API call must enqueue onto this
            # system's own copy, and the stamping below must read it.
            self._system._dirty(("sw", sw_id), "app", "ctrl")
            switch = self._system.switches.get(sw_id)
            before = len(switch.ofp_in) if switch else 0
            result = method(sw_id, *args, **kwargs)
            if switch is not None:
                for message in switch.ofp_in.items()[before:]:
                    self._system.of_seq += 1
                    message.seq = self._system.of_seq
            self._system._api_calls.append((name, sw_id, args, kwargs))
            return result

        return wrapper
