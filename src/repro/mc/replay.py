"""Deterministic trace replay (Section 6).

NICE checkpoints by remembering the sequence of transitions that created a
state and restores it by replaying that sequence from the initial state —
valid because every component executes deterministically.  This module
re-executes a recorded trace (e.g. the one attached to a
:class:`~repro.mc.search.Violation`) and verifies determinism along the way.

Replay of a violation trace is also how a developer reproduces a bug
step-by-step: :func:`replay_trace` yields every intermediate system if asked.
"""

from __future__ import annotations

from repro.errors import ReplayError
from repro.mc.strategies import Strategy
from repro.mc.system import System


def replay_from(system: System, trace, strategy: Strategy | None = None) -> System:
    """Re-execute ``trace`` on an existing initial-state ``system``, in place.

    The workhorse of trace-replay checkpointing (``checkpoint_mode="trace"``
    and the parallel engine): restoring a frontier node is a clone of the
    initial state plus a deterministic replay of the node's transition path.
    """
    strategy = strategy or Strategy()
    for step, transition in enumerate(trace):
        try:
            system.execute(transition)
        except Exception as exc:  # noqa: BLE001 - convert for context
            raise ReplayError(
                f"replay failed at step {step} ({transition!r}): {exc}"
            ) from exc
        strategy.post_execute(system, transition)
    return system


def replay_with_spine(system: System, trace, start: int,
                      strategy: Strategy | None = None,
                      snapshot=None, stride: int = 8) -> System:
    """Replay ``trace[start:]`` on ``system`` in place, invoking
    ``snapshot(prefix, clone)`` every ``stride`` executed transitions.

    The snapshot hook is how parallel workers repopulate their replay LRU
    while restoring a long suffix (DESIGN.md, "Affinity scheduling"):
    nearby sibling groups then restore from a spine clone instead of
    replaying from the initial state again.
    """
    strategy = strategy or Strategy()
    k = start
    while k < len(trace):
        segment = trace[k:k + stride]
        replay_from(system, segment, strategy)
        k += len(segment)
        if snapshot is not None and k < len(trace):
            snapshot(trace[:k], system.clone())
    return system


def replay_trace(system_factory, trace, strategy: Strategy | None = None,
                 expected_hash: str | None = None) -> System:
    """Re-execute ``trace`` from a fresh initial state.

    ``strategy`` must match the one used during the original search (the
    NO-DELAY strategy performs extra work after each transition).  When
    ``expected_hash`` is given, the final state must hash to it or a
    :class:`~repro.errors.ReplayError` is raised.
    """
    system = replay_from(system_factory(), trace, strategy)
    if expected_hash is not None and system.state_hash() != expected_hash:
        raise ReplayError(
            "replayed final state hash does not match the recorded one; "
            "the model is nondeterministic or the factory changed"
        )
    return system


def replay_steps(system_factory, trace, strategy: Strategy | None = None):
    """Generator variant: yields ``(step_index, transition, system)`` after
    every transition, for step-by-step debugging (the paper's simulator
    mode)."""
    system = system_factory()
    strategy = strategy or Strategy()
    yield (-1, None, system)
    for step, transition in enumerate(trace):
        system.execute(transition)
        strategy.post_execute(system, transition)
        yield (step, transition, system)


def format_trace(trace) -> str:
    """Human-readable rendering of a violation trace."""
    lines = []
    for index, transition in enumerate(trace):
        lines.append(f"{index:4d}. {transition!r}")
    return "\n".join(lines) if lines else "(empty trace)"
