"""Pluggable transports for the parallel search scheduler.

A transport owns the worker lifecycle and message movement; the scheduler
(`repro/mc/scheduler.py`) never sees processes or sockets, only
``submit(worker_id, task)`` / ``recv()``.  Two implementations ship:

* :class:`~repro.mc.transport.local.LocalTransport` — worker child
  processes on this machine, ``fork`` or ``spawn`` start method;
* :class:`~repro.mc.transport.socket.SocketTransport` — TCP workers
  started with ``nice worker`` (on this or other machines).

:func:`create_transport` picks one from the config and *warns* — never
silently falls back — when a ``workers>0`` request cannot be honored as
asked (satellite of ISSUE 2): an unavailable start method, or a scenario
that is not registry-reconstructable and therefore cannot cross a spawn or
socket boundary.
"""

from __future__ import annotations

import multiprocessing
import warnings

from repro.config import (
    START_METHOD_FORK,
    START_METHOD_SPAWN,
    TRANSPORT_SOCKET,
)
from repro.mc.wire import spec_is_portable


class TransportError(RuntimeError):
    """A transport could not start, or the scheduler's fault-tolerance
    policy (``min_workers`` / ``max_worker_failures``) gave up the run."""


class WorkerLost(Exception):
    """Raised by :meth:`Transport.submit` when the target worker is found
    dead at submission time.  Recoverable: the scheduler treats it exactly
    like a :class:`~repro.mc.wire.WorkerGone` event and requeues the task
    it was submitting."""

    def __init__(self, worker_id: int, reason: str):
        super().__init__(f"worker {worker_id} lost: {reason}")
        self.worker_id = worker_id
        self.reason = reason


class Transport:
    """Scheduler-facing interface; see module docstring.

    Worker churn is part of the interface: ``recv()`` may yield
    :class:`~repro.mc.wire.WorkerGone` (a worker died — the scheduler
    requeues its work) and :class:`~repro.mc.wire.WorkerJoined` (an
    elastic worker connected mid-search) alongside task results, and
    ``submit()`` may raise :class:`WorkerLost`.  A transport must never
    *raise* for a single dead worker — only the scheduler's policy decides
    whether churn is fatal.
    """

    #: Human-readable engine name surfaced in SearchStats ("local-fork",
    #: "local-spawn", "socket").
    name = "transport"

    #: How Bloom dedup summaries reach workers (wire protocol v4).  False:
    #: the scheduler piggy-backs the delta on the next ExpandTask (local
    #: pipes — one fewer message per dispatch).  True: the scheduler
    #: submits a standalone :class:`~repro.mc.wire.BloomSummary` ahead of
    #: the task (socket — the channel is FIFO, so the worker installs the
    #: summary before it sees the task).
    summary_push = False

    def __init__(self, workers: int):
        self.workers = workers

    def start(self, searcher) -> None:
        """Bring up ``self.workers`` workers, ready for tasks."""
        raise NotImplementedError

    def worker_ids(self):
        """The ids of the workers actually serving once ``start()``
        returned — what the scheduler enrolls as its initial live pool.
        The socket transport overrides this: a worker that handshakes and
        dies *during* the accept barrier burns its id, so the admitted ids
        need not be ``0..workers-1``."""
        return range(self.workers)

    def submit(self, worker_id: int, task) -> None:
        """Send an :class:`~repro.mc.wire.ExpandTask` to one worker;
        raises :class:`WorkerLost` if that worker is already dead."""
        raise NotImplementedError

    def recv(self, timeout: float | None = None):
        """Block until any worker yields a TaskResult, WorkerError,
        Heartbeat, WorkerGone, or WorkerJoined.  With ``timeout`` set,
        return None after that many seconds of silence — the scheduler's
        deadline checker runs on these timed wakeups."""
        raise NotImplementedError

    def stop(self) -> None:
        """Tear the workers down; safe to call with tasks in flight."""
        raise NotImplementedError

    def spawn_worker(self) -> int | None:
        """Start one extra worker, if the transport can.

        Returns the new worker id when the spawn is synchronous (local
        pools) or None when the worker joins asynchronously (the socket
        transport's elastic accept loop).  This is the autoscaler hook
        behind ``NiceConfig.respawn_workers``; transports that cannot
        grow raise :class:`NotImplementedError`.
        """
        raise NotImplementedError

    def kill_worker(self, worker_id: int) -> None:
        """Forcibly kill one worker (SIGKILL / connection teardown).

        The fault-injection hook behind the chaos test suite
        (``tests/test_fault_tolerance.py``) — and a convenient lever for
        operators draining a host.  The death surfaces through ``recv()``
        as a normal :class:`~repro.mc.wire.WorkerGone` event.
        """
        raise NotImplementedError

    def worker_pid(self, worker_id: int) -> int | None:
        """The OS pid of a worker, when the transport knows it (local
        children always; socket workers via their Hello).  Used by the
        chaos suite to wedge — not kill — a live worker (SIGSTOP), the
        failure shape hang detection exists for."""
        return None


def _warn(message: str) -> None:
    warnings.warn(message, RuntimeWarning, stacklevel=4)


def create_transport(config, spec) -> Transport | None:
    """Build the configured transport, or return None (with a visible
    RuntimeWarning) when the request cannot be honored and serial search
    is the only remaining option."""
    from repro.mc.transport.local import LocalTransport
    from repro.mc.transport.socket import SocketTransport

    portable = spec_is_portable(spec)
    if config.transport == TRANSPORT_SOCKET:
        if not portable:
            _warn(
                "workers>0 with transport='socket' needs a registry"
                " scenario (socket workers rebuild the System by name);"
                " this scenario has no portable spec — falling back to the"
                " local transport"
            )
        else:
            return SocketTransport(config.workers, config.worker_address,
                                   spec, config.spawn_socket_workers)

    fork_ok = "fork" in multiprocessing.get_all_start_methods()
    method = config.start_method
    if method is None:
        method = (START_METHOD_FORK if fork_ok
                  else START_METHOD_SPAWN if portable else None)
        if method is None:
            _warn(
                "workers>0 cannot be honored: the platform has no 'fork'"
                " start method and this scenario has no portable spec for"
                " 'spawn' workers — running the serial engine instead"
            )
            return None
    elif method == START_METHOD_FORK and not fork_ok:
        if portable:
            _warn(
                "start_method='fork' is unavailable on this platform —"
                " using 'spawn' workers instead"
            )
            method = START_METHOD_SPAWN
        else:
            _warn(
                "workers>0 cannot be honored: 'fork' is unavailable and"
                " this scenario has no portable spec for 'spawn' workers —"
                " running the serial engine instead"
            )
            return None
    elif method == START_METHOD_SPAWN and not portable:
        if fork_ok:
            _warn(
                "start_method='spawn' needs a registry scenario (spawned"
                " workers rebuild the System by name); this scenario has"
                " no portable spec — using 'fork' workers instead"
            )
            method = START_METHOD_FORK
        else:
            _warn(
                "workers>0 cannot be honored: 'spawn' needs a registry"
                " scenario and 'fork' is unavailable — running the serial"
                " engine instead"
            )
            return None
    return LocalTransport(config.workers, method,
                          spec if method == START_METHOD_SPAWN else None)
