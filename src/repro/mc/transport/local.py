"""In-process-pool transport: worker child processes on this machine.

Unlike PR 1's ``ProcessPoolExecutor`` pool, every worker has its *own*
task queue, because affinity scheduling must address a specific worker —
the one whose replay LRU holds a group's parent trace.  Results travel on
a *per-worker pipe* rather than one shared queue: a worker killed mid-write
(the fault-injection tests do exactly that) can only corrupt its own
channel, which the master reads as that worker's death — never garbage on
a channel other workers still need.  A closed pipe is also an immediate,
poll-free death signal: ``recv()`` wakes on EOF the moment the process
exits and reports a :class:`~repro.mc.wire.WorkerGone` event for the
scheduler to requeue the dead worker's tasks.

Two start methods:

* ``fork`` — workers inherit the live searcher (scenario closures
  included) by copy-on-write via ``repro.mc.worker._INHERITED_SEARCHER``,
  exactly like PR 1's pool;
* ``spawn`` — workers start from a fresh interpreter and rebuild the
  searcher from the pickled :class:`~repro.mc.wire.ScenarioSpec`, which is
  what makes parallel search work on platforms without ``fork`` and what
  the socket transport reuses for remote workers.
"""

from __future__ import annotations

import multiprocessing
import signal
import threading
import time
from multiprocessing import connection as mp_connection

from repro.mc import worker as worker_mod
from repro.mc.transport import Transport, WorkerLost
from repro.mc.wire import Shutdown, WorkerError, WorkerGone
from repro.mc.worker import local_worker_main


class LocalTransport(Transport):
    """``workers`` child processes, one task queue and result pipe each."""

    #: Seconds to wait for a clean worker exit before terminating it.
    JOIN_TIMEOUT = 5.0

    def __init__(self, workers: int, start_method: str, spec):
        super().__init__(workers)
        self.name = f"local-{start_method}"
        self.start_method = start_method
        self.spec = spec
        self._processes: list = []
        self._task_queues: list = []
        #: Master-side result ends, worker id -> Connection; dead workers'
        #: entries are dropped so ``recv`` never re-polls a broken pipe.
        self._result_conns: dict[int, object] = {}
        self._context = None
        #: The live searcher, kept so ``spawn_worker`` can hand it to a
        #: respawned fork child via the inheritance seam (spec-less
        #: scenarios cannot cross a process boundary any other way).
        self._searcher = None

    def start(self, searcher) -> None:
        self._context = multiprocessing.get_context(self.start_method)
        inherit = self.spec is None
        if inherit:
            self._searcher = searcher
            worker_mod._INHERITED_SEARCHER = searcher
        try:
            for worker_id in range(self.workers):
                self._launch(worker_id)
        finally:
            if inherit:
                worker_mod._INHERITED_SEARCHER = None

    def _launch(self, worker_id: int) -> None:
        """Start one child process serving ``worker_id`` (which must be
        ``len(self._processes)``)."""
        task_queue = self._context.SimpleQueue()
        recv_end, send_end = self._context.Pipe(duplex=False)
        process = self._context.Process(
            target=local_worker_main,
            args=(worker_id, task_queue, send_end, self.spec),
            daemon=True,
        )
        # Fork children inherit the master's signal handlers — including
        # the checkpointer's flag-setting SIGTERM handler, which a worker
        # never reads and which would swallow stop()'s terminate()
        # escalation.  Default SIGTERM briefly around the fork so the
        # child starts killable (coverage's own child bootstrap re-hooks
        # SIGTERM after the fork when it needs to).
        previous = None
        if threading.current_thread() is threading.main_thread():
            previous = signal.signal(signal.SIGTERM, signal.SIG_DFL)
        try:
            process.start()
        finally:
            if previous is not None:
                signal.signal(signal.SIGTERM, previous)
        # The child holds the only live send end now; closing ours
        # makes the pipe EOF the instant the child dies.
        send_end.close()
        self._task_queues.append(task_queue)
        self._result_conns[worker_id] = recv_end
        self._processes.append(process)

    def spawn_worker(self) -> int:
        """Start one replacement/extra worker mid-search (the autoscaler
        hook): a fresh child with the next worker id, inheriting the live
        searcher (fork) or rebuilding from the spec (spawn)."""
        worker_id = len(self._processes)
        inherit = self.spec is None
        if inherit:
            worker_mod._INHERITED_SEARCHER = self._searcher
        try:
            self._launch(worker_id)
        finally:
            if inherit:
                worker_mod._INHERITED_SEARCHER = None
        return worker_id

    def submit(self, worker_id: int, message) -> None:
        if worker_id not in self._result_conns:
            raise WorkerLost(worker_id, "already reported dead")
        process = self._processes[worker_id]
        if not process.is_alive():
            raise WorkerLost(worker_id,
                             f"process exited with code {process.exitcode}")
        self._task_queues[worker_id].put(message)

    def recv(self, timeout: float | None = None):
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            wait_for = 1.0
            if deadline is not None:
                wait_for = min(wait_for, deadline - time.monotonic())
                if wait_for <= 0:
                    return None
            ready = mp_connection.wait(
                list(self._result_conns.values()), timeout=wait_for)
            if not ready:
                # EOF normally reports deaths instantly; this poll is a
                # backstop for a worker wedged without closing its pipe.
                for worker_id in list(self._result_conns):
                    process = self._processes[worker_id]
                    if not process.is_alive():
                        return self._reap(
                            worker_id,
                            f"process exited with code {process.exitcode}")
                continue
            conn = ready[0]
            worker_id = next(w for w, c in self._result_conns.items()
                             if c is conn)
            try:
                result = conn.recv()
            except (EOFError, OSError) as exc:
                process = self._processes[worker_id]
                process.join(timeout=self.JOIN_TIMEOUT)
                reason = (f"process exited with code {process.exitcode}"
                          if not process.is_alive()
                          else f"result pipe broke: {exc!r}")
                return self._reap(worker_id, reason)
            except Exception as exc:  # noqa: BLE001 - killed mid-write
                return self._reap(
                    worker_id, f"undecodable result (killed mid-write?):"
                               f" {exc!r}")
            if isinstance(result, WorkerError) and result.task_id is None:
                return self._reap(
                    worker_id, f"failed to start:\n{result.error}")
            return result

    def _reap(self, worker_id: int, reason: str) -> WorkerGone:
        """Drop a dead worker's channel and report the death exactly once."""
        conn = self._result_conns.pop(worker_id)
        try:
            conn.close()
        except OSError:
            pass
        return WorkerGone(worker_id, reason)

    def kill_worker(self, worker_id: int) -> None:
        self._processes[worker_id].kill()

    def worker_pid(self, worker_id: int) -> int | None:
        try:
            return self._processes[worker_id].pid
        except IndexError:
            return None

    def stop(self) -> None:
        for queue, process in zip(self._task_queues, self._processes):
            if process.is_alive():
                try:
                    queue.put(Shutdown())
                except (OSError, ValueError):
                    pass
        for process in self._processes:
            process.join(timeout=self.JOIN_TIMEOUT)
            if process.is_alive():
                # A worker mid-task can block writing a large result to its
                # pipe once the master stops reading; it holds no state the
                # master needs, so cut it loose.
                process.terminate()
                process.join(timeout=self.JOIN_TIMEOUT)
            if process.is_alive():
                # SIGTERM is held pending while a process is stopped
                # (SIGSTOP — the chaos suite's wedged-worker injection);
                # only SIGKILL acts on it.  Never leak a wedged child.
                process.kill()
                process.join(timeout=self.JOIN_TIMEOUT)
        for queue in self._task_queues:
            queue.close()
        for conn in self._result_conns.values():
            try:
                conn.close()
            except OSError:
                pass
        self._processes.clear()
        self._task_queues.clear()
        self._result_conns.clear()
