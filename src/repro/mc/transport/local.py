"""In-process-pool transport: worker child processes on this machine.

Unlike PR 1's ``ProcessPoolExecutor`` pool, every worker has its *own*
task queue, because affinity scheduling must address a specific worker —
the one whose replay LRU holds a group's parent trace.  A single shared
result queue carries completions back.

Two start methods:

* ``fork`` — workers inherit the live searcher (scenario closures
  included) by copy-on-write via ``repro.mc.worker._INHERITED_SEARCHER``,
  exactly like PR 1's pool;
* ``spawn`` — workers start from a fresh interpreter and rebuild the
  searcher from the pickled :class:`~repro.mc.wire.ScenarioSpec`, which is
  what makes parallel search work on platforms without ``fork`` and what
  the socket transport reuses for remote workers.
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod

from repro.mc import worker as worker_mod
from repro.mc.transport import Transport, TransportError
from repro.mc.wire import ExpandTask, Shutdown, WorkerError
from repro.mc.worker import local_worker_main


class LocalTransport(Transport):
    """``workers`` child processes, one task queue each."""

    #: Seconds to wait for a clean worker exit before terminating it.
    JOIN_TIMEOUT = 5.0

    def __init__(self, workers: int, start_method: str, spec):
        super().__init__(workers)
        self.name = f"local-{start_method}"
        self.start_method = start_method
        self.spec = spec
        self._processes: list = []
        self._task_queues: list = []
        self._result_queue = None

    def start(self, searcher) -> None:
        context = multiprocessing.get_context(self.start_method)
        # A real Queue (not SimpleQueue): recv() needs a timeout so a
        # worker that dies without reporting never hangs the master.
        self._result_queue = context.Queue()
        inherit = self.spec is None
        if inherit:
            worker_mod._INHERITED_SEARCHER = searcher
        try:
            for worker_id in range(self.workers):
                task_queue = context.SimpleQueue()
                process = context.Process(
                    target=local_worker_main,
                    args=(worker_id, task_queue, self._result_queue,
                          self.spec),
                    daemon=True,
                )
                process.start()
                self._task_queues.append(task_queue)
                self._processes.append(process)
        finally:
            if inherit:
                worker_mod._INHERITED_SEARCHER = None

    def submit(self, worker_id: int, task: ExpandTask) -> None:
        self._task_queues[worker_id].put(task)

    def recv(self):
        while True:
            try:
                result = self._result_queue.get(timeout=1.0)
                break
            except queue_mod.Empty:
                dead = [(i, p.exitcode) for i, p in
                        enumerate(self._processes) if not p.is_alive()]
                if dead:
                    raise TransportError(
                        f"worker process(es) died without reporting:"
                        f" {dead} (id, exit code)") from None
        if isinstance(result, WorkerError) and result.task_id is None:
            raise TransportError(
                f"worker {result.worker_id} failed to start:\n{result.error}")
        return result

    def stop(self) -> None:
        for queue, process in zip(self._task_queues, self._processes):
            if process.is_alive():
                try:
                    queue.put(Shutdown())
                except (OSError, ValueError):
                    pass
        for process in self._processes:
            process.join(timeout=self.JOIN_TIMEOUT)
            if process.is_alive():
                # A worker mid-task can block writing a large result to the
                # shared pipe once the master stops reading; it holds no
                # state the master needs, so cut it loose.
                process.terminate()
                process.join(timeout=self.JOIN_TIMEOUT)
        for queue in self._task_queues:
            queue.close()
        if self._result_queue is not None:
            self._result_queue.cancel_join_thread()
            self._result_queue.close()
        self._processes.clear()
        self._task_queues.clear()
