"""TCP transport: the VPKIaaS-style scale-out (PAPERS.md).

The master listens on ``NiceConfig.worker_address`` and waits for
``workers`` connections.  Each worker — a ``nice worker --connect
HOST:PORT`` process, on this machine or another — sends a
:class:`~repro.mc.wire.Hello`, receives an
:class:`~repro.mc.wire.InitWorker` carrying the
:class:`~repro.mc.wire.ScenarioSpec`, rebuilds the System by registry
name, and then serves :class:`~repro.mc.wire.ExpandTask` messages.

By default (``spawn_socket_workers=True``) the transport launches the
worker subprocesses itself, pointed at its own ephemeral port, so
``nice run --transport socket`` works with zero setup; with it off, the
master only listens, and the operator starts workers wherever there are
cores.  A reader thread per connection funnels results into one queue;
a dropped connection surfaces as a :class:`TransportError`, never a hang.
"""

from __future__ import annotations

import os
import pathlib
import queue
import socket
import subprocess
import sys
import tempfile
import threading
from time import monotonic as _monotonic

import repro
from repro.mc.transport import Transport, TransportError
from repro.mc.wire import (
    PROTOCOL_VERSION,
    ExpandTask,
    Hello,
    InitWorker,
    Shutdown,
    WorkerError,
    recv_msg,
    send_msg,
)


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` -> (host, port); a bare port means localhost."""
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", address
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(
            f"bad worker address {address!r}; expected host:port") from None


class SocketTransport(Transport):
    """Master side of the TCP worker protocol."""

    #: Seconds to wait for all workers to connect before giving up.
    ACCEPT_TIMEOUT = 60.0

    def __init__(self, workers: int, address: str, spec,
                 spawn_workers: bool = True):
        super().__init__(workers)
        self.name = "socket"
        self.address = address
        self.spec = spec
        self.spawn_workers = spawn_workers
        self._listener: socket.socket | None = None
        self._connections: list[socket.socket] = []
        self._subprocesses: list[subprocess.Popen] = []
        self._stderr_logs: list = []
        self._threads: list[threading.Thread] = []
        self._results: queue.Queue = queue.Queue()
        #: The bound (host, port), with the real port once listening.
        self.bound: tuple[str, int] | None = None

    #: Seconds a freshly accepted connection gets to complete the Hello
    #: handshake before being dropped (a port scanner or hung peer must
    #: not stall the master).
    HANDSHAKE_TIMEOUT = 10.0

    def start(self, searcher) -> None:
        host, port = parse_address(self.address)
        self._listener = socket.create_server((host, port), backlog=self.workers)
        # Short per-accept timeout so worker subprocesses that die before
        # connecting are noticed immediately instead of after the deadline.
        self._listener.settimeout(1.0)
        self.bound = self._listener.getsockname()[:2]
        if self.spawn_workers:
            self._spawn_local_workers()
        else:
            # The operator must be able to aim `nice worker` somewhere —
            # with the default ephemeral port only we know the number.
            print(f"socket transport listening on "
                  f"{self.bound[0]}:{self.bound[1]} — waiting for "
                  f"{self.workers} x `nice worker --connect "
                  f"{self.bound[0]}:{self.bound[1]}`",
                  file=sys.stderr, flush=True)
        deadline = _monotonic() + self.ACCEPT_TIMEOUT
        while len(self._connections) < self.workers:
            if _monotonic() > deadline:
                raise TransportError(
                    f"only {len(self._connections)}/{self.workers}"
                    f" workers connected to"
                    f" {self.bound[0]}:{self.bound[1]} within"
                    f" {self.ACCEPT_TIMEOUT:.0f}s")
            try:
                connection, _ = self._listener.accept()
            except TimeoutError:
                self._check_spawned_alive()
                continue
            if self._handshake(connection, len(self._connections)):
                self._connections.append(connection)
        for worker_id, connection in enumerate(self._connections):
            thread = threading.Thread(
                target=self._reader, args=(worker_id, connection),
                daemon=True)
            thread.start()
            self._threads.append(thread)

    def _spawn_local_workers(self) -> None:
        """Launch ``workers`` `nice worker` subprocesses aimed at us."""
        host, port = self.bound
        env = dict(os.environ)
        # Make `repro` importable in the child even when running from a
        # src layout without an installed package.
        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)
        command = [sys.executable, "-m", "repro.cli", "worker",
                   "--connect", f"{host}:{port}"]
        for _ in range(self.workers):
            # stderr goes to an unbuffered temp file, not a PIPE: nobody
            # drains a pipe during the search, so a chatty worker would
            # block on a full pipe buffer and stall its tasks.
            log = tempfile.TemporaryFile()
            self._stderr_logs.append(log)
            self._subprocesses.append(
                subprocess.Popen(command, env=env,
                                 stdout=subprocess.DEVNULL, stderr=log))

    def _read_stderr(self, index: int) -> str:
        log = self._stderr_logs[index]
        log.seek(0)
        return log.read().decode(errors="replace")

    def _handshake(self, connection: socket.socket, worker_id: int) -> bool:
        """Hello/Init exchange on a fresh connection; drops peers that stay
        silent or speak garbage instead of hanging or aborting the run.
        Accepted sockets do not inherit the listener's timeout, so one is
        set for the handshake and cleared for the streaming phase."""
        connection.settimeout(self.HANDSHAKE_TIMEOUT)
        try:
            hello = recv_msg(connection)
            if not isinstance(hello, Hello) \
                    or hello.protocol != PROTOCOL_VERSION:
                raise ConnectionError(
                    f"bad handshake: {hello!r} (master speaks protocol"
                    f" {PROTOCOL_VERSION})")
            send_msg(connection, InitWorker(self.spec, worker_id))
        except Exception as exc:  # noqa: BLE001 - any failure drops the peer
            print(f"dropping connection that failed the worker handshake:"
                  f" {exc}", file=sys.stderr, flush=True)
            connection.close()
            return False
        connection.settimeout(None)
        return True

    def _check_spawned_alive(self) -> None:
        for index, process in enumerate(self._subprocesses):
            if process.poll() is not None:
                raise TransportError(
                    f"spawned socket worker {index} exited with code"
                    f" {process.returncode} before connecting:\n"
                    f"{self._read_stderr(index)}")

    def _reader(self, worker_id: int, connection: socket.socket) -> None:
        # Any reader exit — clean FIN from a dying worker, a mid-frame
        # reset, an unpicklable frame from a mismatched worker — must
        # surface as a WorkerError, never a silent recv() hang on the
        # master.  During stop() the master closes the sockets itself and
        # no longer reads the queue, so the spurious entry is harmless.
        try:
            while True:
                message = recv_msg(connection)
                if message is None or isinstance(message, Shutdown):
                    self._results.put(
                        WorkerError(None, worker_id,
                                    "worker closed the connection"))
                    return
                self._results.put(message)
        except Exception as exc:  # noqa: BLE001 - see above
            self._results.put(
                WorkerError(None, worker_id, f"connection lost: {exc!r}"))

    def submit(self, worker_id: int, task: ExpandTask) -> None:
        try:
            send_msg(self._connections[worker_id], task)
        except OSError as exc:
            raise TransportError(
                f"socket worker {worker_id} connection lost while"
                f" submitting task {task.task_id}: {exc}") from exc

    def recv(self):
        result = self._results.get()
        if isinstance(result, WorkerError) and result.task_id is None:
            detail = result.error
            # Worker ids are assigned in *accept* order, which need not
            # match spawn order — report every exited subprocess's stderr
            # instead of guessing which one backed this worker id.
            for index, process in enumerate(self._subprocesses):
                if process.poll() is not None:
                    stderr = self._read_stderr(index)
                    if stderr:
                        detail += (f"\nstderr of exited worker subprocess"
                                   f" {index}:\n{stderr}")
            raise TransportError(
                f"socket worker {result.worker_id} failed:\n{detail}")
        return result

    def stop(self) -> None:
        for connection in self._connections:
            try:
                send_msg(connection, Shutdown())
            except OSError:
                pass
        for connection in self._connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        if self._listener is not None:
            self._listener.close()
        for process in self._subprocesses:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        for log in self._stderr_logs:
            log.close()
        self._connections.clear()
        self._subprocesses.clear()
        self._stderr_logs.clear()


def run_worker(address: str) -> int:
    """Client side: connect to a master and serve tasks (``nice worker``)."""
    from repro.mc.worker import socket_worker_loop

    host, port = parse_address(address)
    try:
        connection = socket.create_connection((host, port))
    except OSError as exc:
        print(f"nice worker: cannot reach a master at {host}:{port}: {exc}",
              file=sys.stderr)
        return 1
    with connection:
        socket_worker_loop(connection)
    return 0
