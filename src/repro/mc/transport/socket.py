"""TCP transport: the VPKIaaS-style scale-out (PAPERS.md).

The master listens on ``NiceConfig.worker_address`` and waits for
``workers`` connections.  Each worker — a ``nice worker --connect
HOST:PORT`` process, on this machine or another — sends a
:class:`~repro.mc.wire.Hello`, receives an
:class:`~repro.mc.wire.InitWorker` carrying the
:class:`~repro.mc.wire.ScenarioSpec`, rebuilds the System by registry
name, and then serves :class:`~repro.mc.wire.ExpandTask` messages.

The pool is **elastic**: the listener stays open for the whole search, and
any worker connecting *after* the initial barrier joins the live run — it
completes the same handshake, gets the next worker id, and surfaces to the
scheduler as a :class:`~repro.mc.wire.WorkerJoined` event, at which point
it starts receiving tasks from the per-worker queues (the VPKIaaS
autoscaling shape: add ``nice worker`` processes whenever there are spare
cores, mid-run).  Symmetrically, a dropped connection or dead worker
process surfaces as :class:`~repro.mc.wire.WorkerGone` — never a hang and
never, by itself, an aborted search; the scheduler requeues the dead
worker's in-flight groups and applies the ``min_workers`` /
``max_worker_failures`` policy.

By default (``spawn_socket_workers=True``) the transport launches the
worker subprocesses itself, pointed at its own ephemeral port, so
``nice run --transport socket`` works with zero setup; with it off, the
master only listens, and the operator starts workers wherever there are
cores.  A reader thread per connection funnels results into one queue.
"""

from __future__ import annotations

import os
import pathlib
import queue
import signal
import socket
import subprocess
import sys
import tempfile
import threading
from time import monotonic as _monotonic

import repro
from repro.mc.transport import Transport, TransportError, WorkerLost
from repro.mc.wire import (
    PROTOCOL_VERSION,
    Hello,
    InitWorker,
    Shutdown,
    WorkerError,
    WorkerGone,
    WorkerJoined,
    recv_msg,
    send_msg,
)


def parse_address(address: str) -> tuple[str, int]:
    """``host:port`` -> (host, port); a bare port means localhost."""
    host, sep, port = address.rpartition(":")
    if not sep:
        host, port = "127.0.0.1", address
    try:
        return host or "127.0.0.1", int(port)
    except ValueError:
        raise ValueError(
            f"bad worker address {address!r}; expected host:port") from None


class SocketTransport(Transport):
    """Master side of the TCP worker protocol."""

    #: Bloom summaries go out as standalone framed messages, not
    #: piggy-backed on tasks (see the base class attribute).
    summary_push = True

    #: Seconds to wait for all *initial* workers to connect before giving
    #: up on the run (elastic joiners can arrive any time after that).
    ACCEPT_TIMEOUT = 60.0

    #: Seconds a freshly accepted connection gets to complete the Hello
    #: handshake before being dropped (a port scanner or hung peer must
    #: not stall the master).
    HANDSHAKE_TIMEOUT = 10.0

    def __init__(self, workers: int, address: str, spec,
                 spawn_workers: bool = True):
        super().__init__(workers)
        self.name = "socket"
        self.address = address
        self.spec = spec
        self.spawn_workers = spawn_workers
        self._listener: socket.socket | None = None
        #: worker id -> live connection; the accept thread adds elastic
        #: joiners, reader threads remove the dead.  Guarded by _lock.
        self._connections: dict[int, socket.socket] = {}
        #: worker id -> (host, pid) from the worker's Hello.
        self._peers: dict[int, tuple[str, int]] = {}
        self._next_worker_id = 0
        self._lock = threading.Lock()
        self._stopping = False
        #: Set once start() returns.  Deaths *during* the accept barrier
        #: are the barrier's business (the id is burned and the slot
        #: reopens — or the barrier times out cleanly); only deaths after
        #: the search is running become scheduler-visible WorkerGone
        #: events.
        self._started = False
        self._subprocesses: list[subprocess.Popen] = []
        self._stderr_logs: list = []
        self._threads: list[threading.Thread] = []
        self._results: queue.Queue = queue.Queue()
        #: The bound (host, port), with the real port once listening.
        self.bound: tuple[str, int] | None = None

    def start(self, searcher) -> None:
        host, port = parse_address(self.address)
        self._listener = socket.create_server((host, port),
                                              backlog=max(self.workers, 8))
        # Short per-accept timeout so worker subprocesses that die before
        # connecting are noticed immediately instead of after the deadline.
        self._listener.settimeout(1.0)
        self.bound = self._listener.getsockname()[:2]
        if self.spawn_workers:
            self._spawn_local_workers()
        else:
            # The operator must be able to aim `nice worker` somewhere —
            # with the default ephemeral port only we know the number.
            print(f"socket transport listening on "
                  f"{self.bound[0]}:{self.bound[1]} — waiting for "
                  f"{self.workers} x `nice worker --connect "
                  f"{self.bound[0]}:{self.bound[1]}`"
                  f" (more may join mid-search)",
                  file=sys.stderr, flush=True)
        deadline = _monotonic() + self.ACCEPT_TIMEOUT
        while len(self._connections) < self.workers:
            if _monotonic() > deadline:
                raise TransportError(
                    f"only {len(self._connections)}/{self.workers}"
                    f" workers connected to"
                    f" {self.bound[0]}:{self.bound[1]} within"
                    f" {self.ACCEPT_TIMEOUT:.0f}s")
            try:
                connection, _ = self._listener.accept()
            except TimeoutError:
                self._check_spawned_alive()
                continue
            self._admit(connection, announce=False)
        # The search runs from here on; late connections are elastic
        # joiners, admitted by a background thread for the run's lifetime.
        accept_thread = threading.Thread(target=self._accept_elastic,
                                         daemon=True)
        accept_thread.start()
        self._threads.append(accept_thread)
        self._started = True

    def worker_ids(self):
        """Ids actually admitted by the accept barrier (a worker that
        handshook and died mid-barrier burned its id; its replacement got
        the next one)."""
        with self._lock:
            return sorted(self._connections)

    def _admit(self, connection: socket.socket, announce: bool) -> bool:
        """Handshake a fresh connection into the pool; posts WorkerJoined
        for elastic (mid-search) joiners."""
        with self._lock:
            worker_id = self._next_worker_id
        peer = self._handshake(connection, worker_id)
        if peer is None:
            return False
        with self._lock:
            if self._stopping:
                # stop() won the race: it has (or is about to have)
                # snapshotted the pool, so registering now would orphan
                # this worker with no Shutdown ever sent.  Closing the
                # socket lets the worker exit on EOF instead.
                connection.close()
                return False
            self._next_worker_id = worker_id + 1
            self._connections[worker_id] = connection
            self._peers[worker_id] = peer
        if announce:
            host, pid = peer
            print(f"elastic worker {worker_id} joined mid-search from"
                  f" {host or 'unknown host'} (pid {pid})",
                  file=sys.stderr, flush=True)
            # Queued *before* the reader thread starts: a joiner that dies
            # instantly must deliver WorkerJoined before its WorkerGone, or
            # the scheduler would ignore the death (id not yet live) and
            # then enter a dead worker into the routing tables.
            self._results.put(WorkerJoined(worker_id, host, pid))
        thread = threading.Thread(
            target=self._reader, args=(worker_id, connection), daemon=True)
        thread.start()
        self._threads.append(thread)
        return True

    def _accept_elastic(self) -> None:
        """Admit workers that connect while the search is running."""
        while not self._stopping:
            try:
                connection, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return  # listener closed by stop()
            if self._stopping:
                connection.close()
                return
            self._admit(connection, announce=True)

    def _spawn_local_workers(self) -> None:
        """Launch ``workers`` `nice worker` subprocesses aimed at us."""
        for _ in range(self.workers):
            self.spawn_worker()

    def spawn_worker(self) -> None:
        """Launch one `nice worker` subprocess aimed at this master.

        Used for the initial pool and available afterwards to grow it
        mid-search (the subprocess joins through the elastic accept path).
        """
        host, port = self.bound
        env = dict(os.environ)
        # Make `repro` importable in the child even when running from a
        # src layout without an installed package.
        src_dir = str(pathlib.Path(repro.__file__).resolve().parent.parent)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_dir, env.get("PYTHONPATH")) if p)
        command = [sys.executable, "-m", "repro.cli", "worker",
                   "--connect", f"{host}:{port}"]
        # stderr goes to an unbuffered temp file, not a PIPE: nobody
        # drains a pipe during the search, so a chatty worker would
        # block on a full pipe buffer and stall its tasks.
        log = tempfile.TemporaryFile()
        self._stderr_logs.append(log)
        self._subprocesses.append(
            subprocess.Popen(command, env=env,
                             stdout=subprocess.DEVNULL, stderr=log))

    def _read_stderr(self, index: int) -> str:
        log = self._stderr_logs[index]
        log.seek(0)
        return log.read().decode(errors="replace")

    def _handshake(self, connection: socket.socket,
                   worker_id: int) -> tuple[str, int] | None:
        """Hello/Init exchange on a fresh connection; drops peers that stay
        silent or speak garbage instead of hanging or aborting the run.
        Accepted sockets do not inherit the listener's timeout, so one is
        set for the handshake and cleared for the streaming phase.
        Returns the peer's (host, pid) on success, None on a dropped peer."""
        connection.settimeout(self.HANDSHAKE_TIMEOUT)
        try:
            hello = recv_msg(connection)
            if not isinstance(hello, Hello) \
                    or hello.protocol != PROTOCOL_VERSION:
                raise ConnectionError(
                    f"bad handshake: {hello!r} (master speaks protocol"
                    f" {PROTOCOL_VERSION})")
            send_msg(connection, InitWorker(self.spec, worker_id))
        except Exception as exc:  # noqa: BLE001 - any failure drops the peer
            print(f"dropping connection that failed the worker handshake:"
                  f" {exc}", file=sys.stderr, flush=True)
            connection.close()
            return None
        connection.settimeout(None)
        return hello.host, hello.pid

    def _check_spawned_alive(self) -> None:
        for index, process in enumerate(self._subprocesses):
            if process.poll() is not None:
                raise TransportError(
                    f"spawned socket worker {index} exited with code"
                    f" {process.returncode} before connecting:\n"
                    f"{self._read_stderr(index)}")

    def _reader(self, worker_id: int, connection: socket.socket) -> None:
        # Any reader exit — clean FIN from a dying worker, a mid-frame
        # reset, an unpicklable frame from a mismatched worker — surfaces
        # as a WorkerGone event, never a silent recv() hang on the master.
        # During stop() the master closes the sockets itself and no longer
        # reads the queue, so the spurious event is harmless.
        try:
            while True:
                message = recv_msg(connection)
                if message is None or isinstance(message, Shutdown):
                    self._disconnect(worker_id,
                                     "worker closed the connection")
                    return
                self._results.put(message)
        except Exception as exc:  # noqa: BLE001 - see above
            self._disconnect(worker_id, f"connection lost: {exc!r}")

    def _disconnect(self, worker_id: int, reason: str) -> None:
        """Retire a dead worker's connection and post its death event
        (exactly once — whichever of the reader thread or ``recv`` retires
        the worker first wins).  Barrier-era deaths are retired silently:
        the accept loop sees the slot reopen and keeps waiting (or times
        out cleanly), and the scheduler never hears about a worker that
        was replaced before the search began."""
        if self._retire(worker_id) and self._started:
            self._results.put(WorkerGone(worker_id, self._enrich(reason)))

    def _retire(self, worker_id: int) -> bool:
        with self._lock:
            connection = self._connections.pop(worker_id, None)
        if connection is None:
            return False
        connection.close()
        return True

    def _enrich(self, reason: str) -> str:
        """Append the stderr of exited worker subprocesses to a death
        reason.  Worker ids are assigned in *accept* order, which need not
        match spawn order — report every exited subprocess's stderr
        instead of guessing which one backed this worker id."""
        for index, process in enumerate(self._subprocesses):
            if process.poll() is not None:
                stderr = self._read_stderr(index)
                if stderr:
                    reason += (f"\nstderr of exited worker subprocess"
                               f" {index}:\n{stderr}")
        return reason

    def submit(self, worker_id: int, message) -> None:
        connection = self._connections.get(worker_id)
        if connection is None:
            raise WorkerLost(worker_id, "connection already closed")
        try:
            send_msg(connection, message)
        except OSError as exc:
            # The reader thread will post the authoritative WorkerGone;
            # failing the submit lets the scheduler requeue this task now.
            raise WorkerLost(
                worker_id,
                f"connection lost while submitting"
                f" {type(message).__name__}: {exc}") from exc

    def recv(self, timeout: float | None = None):
        try:
            result = self._results.get(timeout=timeout)
        except queue.Empty:
            return None
        if isinstance(result, WorkerError) and result.task_id is None:
            # Startup failure inside the worker runtime: the process is
            # done for, but only the scheduler's policy decides whether
            # the *search* is.  Return the death directly so the traceback
            # is on the first event the scheduler sees for this worker.
            self._retire(result.worker_id)
            return WorkerGone(
                result.worker_id,
                self._enrich(f"failed to start:\n{result.error}"))
        return result

    def kill_worker(self, worker_id: int) -> None:
        host, pid = self._peers.get(worker_id, ("", 0))
        if pid and host == socket.gethostname():
            try:
                os.kill(pid, signal.SIGKILL)
                return
            except OSError:
                pass
        # Remote (or already-reaped) worker: sever the connection instead —
        # to the scheduler a partition and a dead process look the same.
        with self._lock:
            connection = self._connections.get(worker_id)
        if connection is not None:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()

    def worker_pid(self, worker_id: int) -> int | None:
        host, pid = self._peers.get(worker_id, ("", 0))
        if pid and host == socket.gethostname():
            return pid
        return None

    def stop(self) -> None:
        # _stopping and the pool snapshot commute under the lock with
        # _admit's registration: a connection accepted concurrently is
        # either in the snapshot (gets Shutdown below) or sees _stopping
        # and is closed by _admit.
        with self._lock:
            self._stopping = True
            connections = list(self._connections.values())
            self._connections.clear()
        if self._listener is not None:
            self._listener.close()
        for connection in connections:
            try:
                send_msg(connection, Shutdown())
            except OSError:
                pass
        for connection in connections:
            try:
                connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            connection.close()
        for process in self._subprocesses:
            try:
                process.wait(timeout=10)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait()
        for log in self._stderr_logs:
            log.close()
        self._subprocesses.clear()
        self._stderr_logs.clear()


def run_worker(address: str, retries: int = 5,
               retry_max_wait: float = 30.0) -> int:
    """Client side: connect to a master and serve tasks (``nice worker``).

    Connection refusals are retried with jittered exponential backoff
    (``retries`` connection attempts total, each delay doubling from 0.5s
    and capped at ``retry_max_wait``), so workers can be started *before*
    the master — the natural order when provisioning a fleet — instead of
    failing on the first refused connection.  Jitter keeps a batch of
    workers launched together from stampeding the listener in lockstep."""
    import random
    import time

    from repro.mc.worker import socket_worker_loop

    host, port = parse_address(address)
    attempt = 0
    while True:
        try:
            connection = socket.create_connection((host, port))
            break
        except OSError as exc:
            attempt += 1
            if attempt >= retries:
                print(f"nice worker: cannot reach a master at {host}:{port}"
                      f" after {attempt} attempt(s): {exc}",
                      file=sys.stderr)
                return 1
            delay = min(retry_max_wait, 0.5 * (2 ** (attempt - 1)))
            delay *= 0.5 + random.random() / 2
            print(f"nice worker: master at {host}:{port} not reachable"
                  f" ({exc}); retrying in {delay:.1f}s"
                  f" ({attempt}/{retries})", file=sys.stderr, flush=True)
            time.sleep(delay)
    with connection:
        socket_worker_loop(connection)
    return 0
