"""Explored-set state store + master checkpointing (DESIGN.md, "State
store and restartability").

Two concerns the search engines delegate here:

* **Membership storage** for the explored state set.  :class:`MemoryStore`
  is the plain in-memory set the engines always had (default — zero
  regression).  :class:`ShardedStore` shards digests by prefix into
  append-only files of fixed-width hash records, keeps a compact
  in-memory index (one small int per digest, ever) plus an LRU-bounded
  *resident* set, and spills cold digests to disk — the explored set of a
  NICE-style exhaustive search then scales past one process's RAM while
  the hot working set stays dictionary-fast.  Both expose one API:
  ``add(digest) -> bool`` (False = already present), ``in``, ``len``.

* **Checkpointing** the master's irreplaceable state.  A checkpoint is a
  directory ``ckpt-NNNNNNNN/`` holding the store's record files, a pickled
  ``meta`` blob (scenario spec, config, stats counters, frontier sibling
  groups, RNG state) and a ``MANIFEST.json`` with the byte size and
  blake2b checksum of every file.  Snapshots are **atomic**: everything is
  written and fsynced into a temp directory first, which is then renamed
  into place — a crash mid-write leaves only a temp directory that resume
  ignores.  :func:`load_latest_checkpoint` walks checkpoints newest-first
  and returns the first one that *validates* (manifest present, sizes and
  checksums match), so a torn or truncated snapshot silently falls back to
  the previous good one.  The frontier is stored as transport-agnostic
  ``(parent trace, [transition, ...] | None)`` sibling groups — the wire
  format of :class:`~repro.mc.wire.ExpandTask` — which is why a search
  checkpointed serially can resume on any transport and vice versa.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
import warnings
import zlib
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path

from repro.config import STORE_MEMORY, STORE_SHARDED

#: Bump when the checkpoint layout changes; resume refuses a mismatch.
CHECKPOINT_FORMAT = 1

#: Complete checkpoints kept per directory.  Two, not one: torn-write
#: recovery needs the previous snapshot to still exist when the newest
#: turns out to be corrupt.
CHECKPOINT_KEEP = 2

_CKPT_PREFIX = "ckpt-"
_TMP_PREFIX = "tmp-ckpt-"
_MANIFEST = "MANIFEST.json"
_META = "meta.pkl"


class CheckpointError(RuntimeError):
    """No usable checkpoint could be written or loaded."""


# ----------------------------------------------------------------------
# State stores
# ----------------------------------------------------------------------

class StateStore:
    """Explored-set membership storage; see module docstring."""

    #: Engine-facing name ("memory" / "sharded"), surfaced in SearchStats.
    kind = "store"

    def add(self, digest: str) -> bool:
        """Record ``digest``; False means it was already present."""
        raise NotImplementedError

    def __contains__(self, digest: str) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def digests(self):
        """Iterate every stored digest (insertion order per shard)."""
        raise NotImplementedError

    def counters(self) -> dict:
        """Spill/hit counters: ``hits`` (lookups answered from memory),
        ``spill_reads`` (lookups that had to read a shard file), and
        ``evictions`` (digests spilled out of the resident set)."""
        return {"hits": 0, "spill_reads": 0, "evictions": 0}

    def preload(self, digests) -> None:
        """Bulk-load digests (checkpoint resume) without counter noise."""
        for digest in digests:
            self.add(digest)
        self.reset_counters()

    def reset_counters(self) -> None:
        pass

    def snapshot_into(self, directory: Path) -> list[str]:
        """Write the store's contents as fixed-width record files into
        ``directory``; returns the file names written."""
        raise NotImplementedError

    def record_width(self) -> int:
        """Bytes per record (0 while empty)."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemoryStore(StateStore):
    """The engines' original explored set: one in-memory hash table."""

    kind = STORE_MEMORY

    def __init__(self):
        # A dict, not a set: insertion order survives snapshot/reload, so
        # a resumed serial DFS walks the identical frontier order.
        self._digests: dict[str, None] = {}
        self._hits = 0

    def add(self, digest: str) -> bool:
        if digest in self._digests:
            self._hits += 1
            return False
        self._digests[digest] = None
        return True

    def __contains__(self, digest: str) -> bool:
        if digest in self._digests:
            self._hits += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._digests)

    def digests(self):
        return iter(self._digests)

    def counters(self) -> dict:
        return {"hits": self._hits, "spill_reads": 0, "evictions": 0}

    def reset_counters(self) -> None:
        self._hits = 0

    def record_width(self) -> int:
        for digest in self._digests:
            return len(digest.encode("ascii"))
        return 0

    def snapshot_into(self, directory: Path) -> list[str]:
        name = "states-0000.bin"
        with open(directory / name, "wb") as handle:
            for digest in self._digests:
                handle.write(digest.encode("ascii"))
        return [name]


class ShardedStore(StateStore):
    """Digest-prefix shards, append-only record files, LRU resident set.

    Layout per shard ``i``: an append-only file of fixed-width ASCII
    digest records (record ``n`` lives at byte ``n * width``) plus an
    in-memory index mapping a 48-bit digest prefix to the slot(s) holding
    it.  Membership: the LRU *resident* dict answers hot lookups from
    memory; a prefix absent from the index is a definitive (memory-only)
    miss; a prefix hit outside the resident set seeks the shard file and
    compares full records — the spill path.  Inserts append one record
    and one index entry; when the resident set exceeds ``memory_budget``
    digests the oldest entries spill (the index entry — one small int —
    is all that remains in memory).
    """

    kind = STORE_SHARDED

    def __init__(self, shards: int = 16, memory_budget: int = 1_000_000,
                 directory: str | None = None):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if memory_budget < 1:
            raise ValueError("memory_budget must be >= 1")
        self.shards = shards
        self.memory_budget = memory_budget
        self._owns_dir = directory is None
        self.directory = Path(directory or tempfile.mkdtemp(
            prefix="nice-store-"))
        self.directory.mkdir(parents=True, exist_ok=True)
        self._files = [
            open(self.directory / self._shard_name(i), "w+b")
            for i in range(shards)
        ]
        #: Per shard: 48-bit digest prefix -> slot int (or tuple of slots
        #: on the rare prefix collision).
        self._index: list[dict[int, int | tuple]] = [{} for _ in range(shards)]
        self._slots = [0] * shards
        #: Records appended since the shard file was last flushed.
        self._unflushed = [0] * shards
        self._resident: OrderedDict[str, None] = OrderedDict()
        self._count = 0
        self._width = 0
        self._hits = 0
        self._spill_reads = 0
        self._evictions = 0

    @staticmethod
    def _shard_name(index: int) -> str:
        return f"states-{index:04d}.bin"

    @staticmethod
    def _prefix(digest: str) -> int:
        try:
            return int(digest[:12], 16)
        except ValueError:
            # Non-hex digests: any stable 32-bit hash keeps the index
            # compact and the shard choice deterministic.
            return zlib.crc32(digest.encode("utf-8", "surrogateescape"))

    def _shard_of(self, prefix: int) -> int:
        return prefix % self.shards

    def _probe_disk(self, shard: int, slots, record: bytes) -> bool:
        """Compare ``record`` against the candidate slots on disk."""
        handle = self._files[shard]
        if self._unflushed[shard]:
            handle.flush()
            self._unflushed[shard] = 0
        for slot in slots if isinstance(slots, tuple) else (slots,):
            self._spill_reads += 1
            handle.seek(slot * self._width)
            if handle.read(self._width) == record:
                return True
        return False

    def _touch(self, digest: str) -> None:
        """Enter ``digest`` into the resident LRU, spilling the coldest."""
        self._resident[digest] = None
        self._resident.move_to_end(digest)
        while len(self._resident) > self.memory_budget:
            self._resident.popitem(last=False)
            self._evictions += 1

    def __contains__(self, digest: str) -> bool:
        if digest in self._resident:
            self._hits += 1
            self._resident.move_to_end(digest)
            return True
        if not self._count:
            return False
        prefix = self._prefix(digest)
        slots = self._index[self._shard_of(prefix)].get(prefix)
        if slots is None:
            return False
        record = digest.encode("ascii")
        if len(record) != self._width:
            return False
        if self._probe_disk(self._shard_of(prefix), slots, record):
            self._touch(digest)
            return True
        return False

    def add(self, digest: str) -> bool:
        if digest in self:
            return False
        record = digest.encode("ascii")
        if self._width == 0:
            self._width = len(record)
        elif len(record) != self._width:
            raise ValueError(
                f"digest width changed mid-run: {len(record)} != "
                f"{self._width} bytes (mixed hash modes in one store?)")
        prefix = self._prefix(digest)
        shard = self._shard_of(prefix)
        handle = self._files[shard]
        handle.seek(0, io.SEEK_END)
        handle.write(record)
        self._unflushed[shard] += 1
        slot = self._slots[shard]
        self._slots[shard] = slot + 1
        index = self._index[shard]
        held = index.get(prefix)
        if held is None:
            index[prefix] = slot
        elif isinstance(held, tuple):
            index[prefix] = held + (slot,)
        else:
            index[prefix] = (held, slot)
        self._count += 1
        self._touch(digest)
        return True

    def __len__(self) -> int:
        return self._count

    def flush(self) -> None:
        for shard, handle in enumerate(self._files):
            if self._unflushed[shard]:
                handle.flush()
                self._unflushed[shard] = 0

    def digests(self):
        self.flush()
        for shard, handle in enumerate(self._files):
            if not self._slots[shard]:
                continue
            handle.seek(0)
            data = handle.read(self._slots[shard] * self._width)
            for offset in range(0, len(data), self._width):
                yield data[offset:offset + self._width].decode("ascii")

    def counters(self) -> dict:
        return {"hits": self._hits, "spill_reads": self._spill_reads,
                "evictions": self._evictions}

    def reset_counters(self) -> None:
        self._hits = self._spill_reads = self._evictions = 0

    def record_width(self) -> int:
        return self._width

    def snapshot_into(self, directory: Path) -> list[str]:
        self.flush()
        names = []
        for shard in range(self.shards):
            if not self._slots[shard]:
                continue
            name = self._shard_name(shard)
            shutil.copyfile(self.directory / name, directory / name)
            names.append(name)
        return names

    def close(self) -> None:
        for handle in self._files:
            try:
                handle.close()
            except OSError:
                pass
        if self._owns_dir:
            shutil.rmtree(self.directory, ignore_errors=True)


def create_store(config) -> StateStore:
    """The explored-set store ``config`` asks for.

    The crash-recovery harness monkeypatches this hook to plant seeded
    interruption points, so the engines must resolve it through the
    module (``store_mod.create_store``) at run time, not import time.
    """
    if config.store == STORE_SHARDED:
        return ShardedStore(config.store_shards, config.store_memory_budget)
    return MemoryStore()


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

#: SearchStats fields that describe *this* run, not accumulated results —
#: never restored from a checkpoint.
_NON_RESUMABLE = ("wall_time", "engine", "workers", "terminated",
                  "resumed_from")


@dataclass
class Checkpoint:
    """One loaded (validated) checkpoint."""

    path: Path
    spec: object            # ScenarioSpec | None (hand-built scenarios)
    config: object          # the NiceConfig the run was using
    stats: dict             # SearchStats.__dict__ snapshot
    frontier: list          # [(parent trace, [transition, ...] | None)]
    rng_state: object       # random.Random state of the frontier RNG
    states: int             # digest count across the record files
    record_width: int
    record_files: list[Path]

    def iter_digests(self):
        width = self.record_width
        if not width:
            return  # a checkpoint of an empty store holds no records
        # Chunked, record-aligned reads: resume must not buffer a whole
        # record file — for the explored sets the sharded store exists
        # for, that file can approach the RAM the store is avoiding.
        chunk_size = max(1, (1 << 20) // width) * width
        for path in self.record_files:
            with open(path, "rb") as handle:
                while True:
                    data = handle.read(chunk_size)
                    if not data:
                        break
                    for offset in range(0, len(data), width):
                        yield data[offset:offset + width].decode("ascii")

    def restore_stats(self, stats) -> None:
        """Seed a fresh SearchStats with the checkpointed counters."""
        for key, value in self.stats.items():
            if key in _NON_RESUMABLE or not hasattr(stats, key):
                continue
            setattr(stats, key, value)
        stats.resumed_from = str(self.path)


def _file_digest(path: Path) -> str:
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fsync
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _next_sequence(directory: Path) -> int:
    highest = 0
    for entry in directory.glob(f"{_CKPT_PREFIX}*"):
        try:
            highest = max(highest, int(entry.name[len(_CKPT_PREFIX):]))
        except ValueError:
            continue
    return highest + 1


def write_checkpoint(directory: str | Path, *, spec, config, stats,
                     frontier, rng_state, store: StateStore) -> Path:
    """Atomically snapshot one consistent master state; returns the new
    checkpoint's path.  See the module docstring for the protocol."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    sequence = _next_sequence(root)
    name = f"{_CKPT_PREFIX}{sequence:08d}"
    staging = root / f"{_TMP_PREFIX}{sequence:08d}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        record_files = store.snapshot_into(staging)
        meta = {
            "spec": spec,
            "config": config,
            "stats": dict(stats.__dict__),
            "frontier": list(frontier),
            "rng_state": rng_state,
        }
        with open(staging / _META, "wb") as handle:
            pickle.dump(meta, handle, protocol=pickle.HIGHEST_PROTOCOL)
        files = {}
        for file_name in [*record_files, _META]:
            path = staging / file_name
            files[file_name] = {"bytes": path.stat().st_size,
                                "blake2b": _file_digest(path)}
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "states": len(store),
            "record_width": store.record_width(),
            "record_files": record_files,
            "store": store.kind,
            "files": files,
        }
        # The manifest is written (and fsynced) last: a crash before this
        # point leaves a manifest-less temp directory resume ignores.
        (staging / _MANIFEST).write_text(json.dumps(manifest, indent=1))
        for file_name in [*files, _MANIFEST]:
            with open(staging / file_name, "rb") as handle:
                os.fsync(handle.fileno())
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    os.rename(staging, root / name)
    _fsync_dir(root)
    _prune(root)
    return root / name


def _prune(root: Path) -> None:
    complete = sorted(root.glob(f"{_CKPT_PREFIX}*"))
    for stale in complete[:-CHECKPOINT_KEEP]:
        shutil.rmtree(stale, ignore_errors=True)


def _validate(path: Path) -> Checkpoint:
    manifest = json.loads((path / _MANIFEST).read_text())
    if manifest.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"{path.name}: checkpoint format {manifest.get('format')!r} "
            f"!= {CHECKPOINT_FORMAT}")
    for file_name, expected in manifest["files"].items():
        target = path / file_name
        if not target.is_file():
            raise CheckpointError(f"{path.name}: missing {file_name}")
        if target.stat().st_size != expected["bytes"]:
            raise CheckpointError(
                f"{path.name}: {file_name} is {target.stat().st_size} "
                f"bytes, manifest says {expected['bytes']} (torn write?)")
        if _file_digest(target) != expected["blake2b"]:
            raise CheckpointError(
                f"{path.name}: {file_name} fails its checksum")
    with open(path / _META, "rb") as handle:
        meta = pickle.load(handle)
    return Checkpoint(
        path=path,
        spec=meta["spec"],
        config=meta["config"],
        stats=meta["stats"],
        frontier=meta["frontier"],
        rng_state=meta["rng_state"],
        states=manifest["states"],
        record_width=manifest["record_width"],
        record_files=[path / name for name in manifest["record_files"]],
    )


def list_checkpoints(directory: str | Path) -> list[Path]:
    """All checkpoint directories under ``directory``, oldest first."""
    return sorted(Path(directory).glob(f"{_CKPT_PREFIX}*"))


def validate_checkpoint(path: str | Path) -> Checkpoint:
    """Validate and load one checkpoint directory (manifest format, file
    sizes, blake2b checksums) — the ``nice checkpoints`` inspector's entry
    point into the same validator ``nice resume`` trusts.  Raises
    :class:`CheckpointError` on a torn or corrupt snapshot."""
    try:
        return _validate(Path(path))
    except CheckpointError:
        raise
    except (OSError, json.JSONDecodeError, pickle.UnpicklingError,
            KeyError, EOFError) as exc:
        raise CheckpointError(f"{Path(path).name}: {exc}") from exc


def load_latest_checkpoint(directory: str | Path) -> Checkpoint:
    """The newest checkpoint under ``directory`` that validates.

    Invalid snapshots (torn writes, truncations, bad checksums) are
    reported to stderr and skipped — resume falls back to the previous
    good one.  Raises :class:`CheckpointError` when none validates.
    """
    import sys

    root = Path(directory)
    candidates = sorted(root.glob(f"{_CKPT_PREFIX}*"), reverse=True)
    failures = []
    for candidate in candidates:
        try:
            return _validate(candidate)
        except (CheckpointError, OSError, json.JSONDecodeError,
                pickle.UnpicklingError, KeyError, EOFError) as exc:
            failures.append(f"{candidate.name}: {exc}")
            print(f"checkpoint {candidate} is unusable ({exc}); "
                  f"falling back to the previous one",
                  file=sys.stderr, flush=True)
    detail = "; ".join(failures) if failures else "no checkpoints found"
    raise CheckpointError(f"no usable checkpoint under {root}: {detail}")


# ----------------------------------------------------------------------
# The engines' checkpoint driver
# ----------------------------------------------------------------------

class Checkpointer:
    """Periodic + SIGTERM-triggered checkpoint writing for one run.

    Enabled iff ``config.checkpoint_dir`` is set.  ``due()`` fires every
    ``config.checkpoint_interval`` units of progress (newly explored
    states; executed transitions when state matching is off) and immediately
    after a SIGTERM (the handler only sets a flag — the engine writes the
    snapshot at its next *consistent* point: between node expansions
    serially, after draining in-flight tasks in the scheduler).
    ``install()``/``restore()`` bracket the run so the previous SIGTERM
    handler (coverage.py installs one, for instance) is always put back.
    """

    def __init__(self, config, spec, store: StateStore, stats):
        self.config = config
        self.spec = spec
        self.store = store
        self.stats = stats
        self.enabled = bool(config.checkpoint_dir)
        self.sigterm = False
        self._last_progress = self._progress()
        self._previous_handler = None
        # Store counters are deltas since this run's store came up; a
        # resumed SearchStats already carries the previous legs' totals,
        # so sync() adds the live deltas onto that base (absolute set —
        # safe to call any number of times).
        self._counter_base = (stats.store_hits, stats.store_spill_reads,
                              stats.store_evictions)
        stats.store = store.kind
        if self.enabled and spec is None:
            warnings.warn(
                "checkpointing needs a registry scenario (resume rebuilds "
                "the System by name); this hand-built scenario's "
                "checkpoints can only be resumed by passing scenario= to "
                "nice.resume()", RuntimeWarning, stacklevel=3)

    def install(self) -> None:
        """Take over SIGTERM for the duration of the run (main thread
        only — worker threads cannot install signal handlers)."""
        if self.enabled and \
                threading.current_thread() is threading.main_thread():
            self._previous_handler = signal.signal(
                signal.SIGTERM, self._on_sigterm)

    def restore(self) -> None:
        if self._previous_handler is not None:
            signal.signal(signal.SIGTERM, self._previous_handler)
            self._previous_handler = None

    def _on_sigterm(self, signum, frame) -> None:
        self.sigterm = True

    def sync(self) -> None:
        """Fold the store's live spill/hit counters into the stats."""
        counters = self.store.counters()
        self.stats.store_hits = self._counter_base[0] + counters["hits"]
        self.stats.store_spill_reads = \
            self._counter_base[1] + counters["spill_reads"]
        self.stats.store_evictions = \
            self._counter_base[2] + counters["evictions"]

    def _progress(self) -> int:
        """What ``checkpoint_interval`` counts: newly explored states —
        or, with state matching off (the store then only ever holds the
        initial digest), executed transitions, so bounded no-dedup runs
        still checkpoint."""
        if self.config.state_matching:
            return len(self.store)
        return self.stats.transitions_executed

    def due(self) -> bool:
        if not self.enabled:
            return False
        if self.sigterm:
            return True
        interval = self.config.checkpoint_interval
        return self._progress() - self._last_progress >= interval

    def write(self, frontier_groups, rng_state) -> Path:
        """Snapshot now; ``frontier_groups`` is the transport-agnostic
        ``[(trace, steps | None), ...]`` form of the pending frontier."""
        start = time.perf_counter()
        self.sync()
        # Counted before the write so the snapshot includes itself — a
        # resumed run then reports every checkpoint its lineage wrote.
        self.stats.checkpoints_written += 1
        path = write_checkpoint(
            self.config.checkpoint_dir, spec=self.spec, config=self.config,
            stats=self.stats, frontier=frontier_groups, rng_state=rng_state,
            store=self.store)
        self.stats.checkpoint_seconds += time.perf_counter() - start
        self._last_progress = self._progress()
        return path
