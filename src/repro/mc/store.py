"""Explored-set state store + master checkpointing (DESIGN.md, "State
store and restartability").

Two concerns the search engines delegate here:

* **Membership storage** for the explored state set.  :class:`MemoryStore`
  is the plain in-memory set the engines always had (default — zero
  regression).  :class:`ShardedStore` shards digests by prefix into
  append-only files of fixed-width packed records, keeps a compact
  in-memory index (one small int per digest, ever) plus an LRU-bounded
  *resident* set, and spills cold digests to disk — the explored set of a
  NICE-style exhaustive search then scales past one process's RAM while
  the hot working set stays dictionary-fast.  Both expose one API:
  ``add(digest) -> bool`` (False = already present), ``add_batch``,
  ``in``, ``len``.

  The sharded fast path (record format v2): hex digests are packed to
  raw bytes (16 B for the engines' 32-char hashes — half the ASCII
  footprint), appends land in a per-shard tail buffer flushed in 64 KiB
  runs instead of one ``write()`` per state, and a per-shard Bloom
  filter answers definite-negative membership before the index or the
  disk probe is consulted.  A Bloom positive falls through to the exact
  probe, so false positives cost time, never correctness.

* **Checkpointing** the master's irreplaceable state.  A checkpoint is a
  directory ``ckpt-NNNNNNNN/`` holding the store's record files, a pickled
  ``meta`` blob (scenario spec, config, stats counters, frontier sibling
  groups, RNG state) and a ``MANIFEST.json`` with the byte size and
  blake2b checksum of every file.  Snapshots are **atomic**: everything is
  written and fsynced into a temp directory first, which is then renamed
  into place — a crash mid-write leaves only a temp directory that resume
  ignores.  :func:`load_latest_checkpoint` walks checkpoints newest-first
  and returns the first one that *validates* (manifest present, sizes and
  checksums match), so a torn or truncated snapshot silently falls back to
  the previous good one.  The frontier is stored as transport-agnostic
  ``(parent trace, [transition, ...] | None)`` sibling groups — the wire
  format of :class:`~repro.mc.wire.ExpandTask` — which is why a search
  checkpointed serially can resume on any transport and vice versa.

  Shard files are append-only, so snapshots are **incremental**: record
  files in a checkpoint are immutable *segments*; a shard unchanged since
  the previous snapshot is hard-linked (same inode, zero bytes copied)
  and a grown shard links its old segments and writes only the byte
  range appended since — snapshot cost is O(new states), not O(all
  states).  Bloom bitsets ride along as ``bloom-NNNN.bin`` summary files
  (linked too while their shard is unchanged) so resume loads them
  instead of recomputing from a full scan.  Format-1 checkpoints (ASCII
  records, no summaries) still load; the first snapshot a resumed run
  writes is a full format-2 one.
"""

from __future__ import annotations

import hashlib
import io
import json
import os
import pickle
import shutil
import signal
import tempfile
import threading
import time
import warnings
from dataclasses import dataclass, field
from pathlib import Path

from repro.config import STORE_MEMORY, STORE_SHARDED

#: Bump when the checkpoint layout changes.  Format 2 packs hex digests
#: to raw bytes, names record files as per-shard segments, and adds
#: Bloom summary files; the loader still accepts format-1 snapshots.
CHECKPOINT_FORMAT = 2

#: Formats :func:`load_latest_checkpoint` accepts.
_READABLE_FORMATS = (1, CHECKPOINT_FORMAT)

#: Complete checkpoints kept per directory.  Two, not one: torn-write
#: recovery needs the previous snapshot to still exist when the newest
#: turns out to be corrupt.
CHECKPOINT_KEEP = 2

#: Record encodings.  ``hex``: the digest string is lowercase hex and is
#: stored packed (`bytes.fromhex`), record width = len(digest) / 2.
#: ``ascii``: the digest is stored as its ASCII bytes verbatim (format-1
#: behaviour, and the fallback for non-hex digests).
RECORD_HEX = "hex"
RECORD_ASCII = "ascii"

#: Default per-shard Bloom filter size in bits (128 KiB of bitset per
#: shard); 0 disables the filter.  Mirrored by NiceConfig.store_bloom_bits.
DEFAULT_BLOOM_BITS = 1 << 20

#: A shard's tail buffer is appended to its record file once it reaches
#: this many bytes (and always at flush/snapshot time).
_FLUSH_BYTES = 1 << 16

#: Pre-bound for the insert/lookup hot paths — skips the global + attr
#: lookup per call.
_from_bytes = int.from_bytes

_HEX_DIGITS = frozenset("0123456789abcdef")

_CKPT_PREFIX = "ckpt-"
_TMP_PREFIX = "tmp-ckpt-"
_MANIFEST = "MANIFEST.json"
_META = "meta.pkl"


class CheckpointError(RuntimeError):
    """No usable checkpoint could be written or loaded."""


def _is_hex(digest: str) -> bool:
    return (bool(digest) and len(digest) % 2 == 0
            and not set(digest) - _HEX_DIGITS)


def _encode_digest(digest: str, encoding: str) -> bytes | None:
    """``digest`` as a packed record, or None if it doesn't fit
    ``encoding`` (non-hex under RECORD_HEX, non-ASCII under RECORD_ASCII)."""
    if encoding == RECORD_HEX:
        if not _is_hex(digest):
            return None
        return bytes.fromhex(digest)
    try:
        return digest.encode("ascii")
    except UnicodeEncodeError:
        return None


def pack_digest(digest: str) -> bytes | None:
    """``digest`` packed the way every Bloom participant packs it (hex
    digests to raw bytes, anything else to its ASCII bytes), or None
    when it fits neither (None and empty included).  Callers treat an
    unpackable digest as definitely-new — which is always safe, just
    unfiltered."""
    if not digest:
        return None
    if _is_hex(digest):
        return bytes.fromhex(digest)
    try:
        return digest.encode("ascii")
    except (AttributeError, UnicodeEncodeError):
        return None


# ----------------------------------------------------------------------
# Bloom filters
# ----------------------------------------------------------------------

class BloomFilter:
    """A k=2 double-hashed bitset over packed digest records.

    Factored out of ShardedStore's per-shard bitsets so the worker-side
    dedup pre-filter (wire protocol v4) shares the exact bit layout:
    sizes round up to a power of two (each probe is a mask, not a
    modulo) and both probe positions come from record bytes ``[6:14]``
    — bytes the sharded index prefix does not use, so a prefix
    collision still gets a real second opinion.  False positives cost
    time, never correctness; a false negative is impossible for any
    record whose bits were added.
    """

    __slots__ = ("bits", "mask", "data")

    def __init__(self, bits: int, data: bytes | bytearray | None = None):
        if bits < 1:
            raise ValueError("bits must be >= 1")
        m = 1 << max(3, (bits - 1).bit_length())
        self.bits = m
        self.mask = m - 1
        if data is None:
            self.data = bytearray(m >> 3)
        else:
            if len(data) != m >> 3:
                raise ValueError(
                    f"bitset is {len(data)} bytes, want {m >> 3}")
            self.data = bytearray(data)

    def add(self, record: bytes) -> bool:
        """Set ``record``'s bits; True iff any bit actually changed —
        the dirty signal the delta broadcast keys off."""
        data = self.data
        mask = self.mask
        b = _from_bytes(record[6:14], "little")
        b1 = b & mask
        b2 = (b >> 32) & mask
        changed = False
        byte, bit = b1 >> 3, 1 << (b1 & 7)
        if not data[byte] & bit:
            data[byte] |= bit
            changed = True
        byte, bit = b2 >> 3, 1 << (b2 & 7)
        if not data[byte] & bit:
            data[byte] |= bit
            changed = True
        return changed

    def add_run(self, view: bytes, width: int) -> None:
        """Batched ``add`` over a packed run of ``width``-byte records
        (the store's flush path; no change tracking)."""
        data = self.data
        mask = self.mask
        hi = min(width, 14)
        for start in range(0, len(view), width):
            b = _from_bytes(view[start + 6:start + hi], "little")
            b1 = b & mask
            b2 = (b >> 32) & mask
            data[b1 >> 3] |= 1 << (b1 & 7)
            data[b2 >> 3] |= 1 << (b2 & 7)

    def may_hold(self, record: bytes) -> bool:
        """False means ``record`` was definitely never added."""
        data = self.data
        mask = self.mask
        b = _from_bytes(record[6:14], "little")
        b1 = b & mask
        b2 = (b >> 32) & mask
        return bool((data[b1 >> 3] >> (b1 & 7)) & 1
                    and (data[b2 >> 3] >> (b2 & 7)) & 1)


class DedupSummary:
    """Per-shard Bloom filters over *every* digest a store holds — the
    broadcastable view of the master's explored set behind the
    worker-side dedup pre-filter (DESIGN.md, "Distributed dedup").

    Sharding follows the store's record-prefix rule (first six record
    bytes, little-endian, mod ``shards``) purely to keep dirty tracking
    — and the delta broadcast built on it — per-shard.  Unlike
    ShardedStore's internal bitsets this summary also covers tail and
    resident records: it answers "might the master already have this
    digest?", not "is a disk probe worth it?".
    """

    def __init__(self, bits: int, shards: int):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        self.shards = shards
        # ``bits`` is the summary's *total* budget, split across shards:
        # unlike the store's own disk-probe bitsets (sized per shard —
        # each one gates I/O for its whole shard), the summary crosses
        # the wire to every worker, so its footprint must stay broadcast
        # -sized regardless of how finely the store shards.
        self.filters = [BloomFilter(max(bits // shards, 64))
                        for _ in range(shards)]
        #: The configured total (the wire shape identity, cf.
        #: ``WorkerRuntime.apply_summary``) vs. the actual per-shard
        #: filter size — BloomFilter rounds to a power of two.
        self.budget = bits
        self.bits = self.filters[0].bits
        self._dirty: set[int] = set()

    def add_record(self, record: bytes, prefix: int | None = None) -> None:
        if prefix is None:
            prefix = _from_bytes(record[:6], "little")
        shard = prefix % self.shards
        if self.filters[shard].add(record):
            self._dirty.add(shard)

    def add(self, digest: str) -> None:
        record = pack_digest(digest)
        if record is not None:
            self.add_record(record)

    def probably_contains(self, digest: str) -> bool:
        """True = the covered store *may* hold ``digest`` (a worker
        ships a stub); False = it definitely does not (ship in full)."""
        record = pack_digest(digest)
        if record is None:
            return False
        shard = _from_bytes(record[:6], "little") % self.shards
        return self.filters[shard].may_hold(record)

    def delta(self) -> list[tuple[int, bytes]]:
        """``(shard, bitset)`` for every shard that grew since the last
        call, clearing the dirty set."""
        dirty = sorted(self._dirty)
        self._dirty.clear()
        return [(shard, bytes(self.filters[shard].data))
                for shard in dirty]

    def apply(self, deltas) -> None:
        """Install broadcast bitset payloads (worker side): a
        ``{shard: bitset}`` mapping, ``(shard, bitset)`` pairs — the
        form :meth:`delta` emits — or ``(shard, offset, chunk)``
        triples, the size-capped slices the scheduler broadcasts (see
        ``_Scheduler._summary_for``).  Bits only ever accrete
        master-side, so wholesale replacement — or splicing a newer
        slice over an older region — is sound; even an out-of-order
        stale bitset could only make the worker ship an extra full
        child or take a hydration round-trip, never lose a state."""
        entries = deltas.items() if hasattr(deltas, "items") else deltas
        for entry in entries:
            if len(entry) == 3:
                shard, offset, chunk = entry
                if 0 <= shard < self.shards:
                    data = self.filters[shard].data
                    if 0 <= offset and offset + len(chunk) <= len(data):
                        data[offset:offset + len(chunk)] = chunk
            else:
                shard, data = entry
                if 0 <= shard < self.shards:
                    self.filters[shard] = BloomFilter(self.bits, data)


# ----------------------------------------------------------------------
# State stores
# ----------------------------------------------------------------------

class StateStore:
    """Explored-set membership storage; see module docstring."""

    #: Engine-facing name ("memory" / "sharded"), surfaced in SearchStats.
    kind = "store"

    #: Broadcastable dedup summary behind the worker-side Bloom
    #: pre-filter; None until the scheduler opts in via enable_summary().
    _summary: "DedupSummary | None" = None

    def enable_summary(self, bits: int, shards: int) -> None:
        """Maintain a :class:`DedupSummary` over every digest added from
        now on.  The scheduler calls this before any resume preload so
        checkpointed digests are covered too."""
        self._summary = DedupSummary(bits, shards)

    def bloom_delta(self) -> list[tuple[int, bytes]]:
        """``(shard, bitset bytes)`` pairs for summary shards that grew
        since the last call; ``[]`` when no summary is enabled or
        nothing changed."""
        summary = self._summary
        return [] if summary is None else summary.delta()

    def add(self, digest: str) -> bool:
        """Record ``digest``; False means it was already present."""
        raise NotImplementedError

    def add_batch(self, digests) -> list[bool]:
        """Record a batch of digests; one bool per digest, in order
        (False = already present).

        Deliberately routed through ``self.add`` for every store: the
        crash-recovery harness plants kill points by monkeypatching
        ``add`` on the store *instance*, and batching must not tunnel
        past that seam.  Stores that buffer writes (ShardedStore)
        amortise the I/O inside ``add`` itself, so this loop stays one
        dict probe per digest.
        """
        add = self.add
        return [add(digest) for digest in digests]

    def __contains__(self, digest: str) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def digests(self):
        """Iterate every stored digest (insertion order per shard)."""
        raise NotImplementedError

    def counters(self) -> dict:
        """Spill/hit counters: ``hits`` (lookups answered from memory),
        ``spill_reads`` (lookups that had to read shard records),
        ``evictions`` (digests spilled out of the resident set) and
        ``bloom_negatives`` (lookups the Bloom filter answered)."""
        return {"hits": 0, "spill_reads": 0, "evictions": 0,
                "bloom_negatives": 0}

    def preload(self, digests, summaries=None) -> None:
        """Bulk-load digests (checkpoint resume) without counter noise.

        ``summaries`` is an optional ``[(shard, path), ...]`` list of
        Bloom bitset files from the checkpoint being resumed; stores
        without shard summaries ignore it.
        """
        for digest in digests:
            self.add(digest)
        self.reset_counters()

    def reset_counters(self) -> None:
        pass

    def snapshot_into(self, directory: Path, previous: Path | None = None):
        """Write the store's contents as fixed-width record files into
        ``directory``; returns ``(record_names, summary_names, carried)``
        where ``carried`` maps file names that were hard-linked from the
        ``previous`` checkpoint directory to their known manifest info
        (``{"bytes": ..., "blake2b": ...}``) so the writer can skip
        re-hashing them."""
        raise NotImplementedError

    def note_snapshot(self, files_info: dict) -> None:
        """Called after a snapshot *committed* (renamed into place);
        ``files_info`` is the manifest's per-file info.  Stores that
        track segments promote the pending snapshot layout to the
        committed baseline here."""

    def adopt_baseline(self, checkpoint: "Checkpoint") -> bool:
        """Adopt ``checkpoint``'s record files as this store's committed
        segment baseline (so the next snapshot links instead of
        rewriting).  Returns False when the layouts are incompatible —
        the next snapshot is then a full rewrite, which is always
        correct."""
        return False

    def record_width(self) -> int:
        """Bytes per record (0 while empty)."""
        raise NotImplementedError

    def record_encoding(self) -> str:
        """How records map back to digest strings (RECORD_HEX/ASCII)."""
        raise NotImplementedError

    def close(self) -> None:
        pass


class MemoryStore(StateStore):
    """The engines' original explored set: one in-memory hash table."""

    kind = STORE_MEMORY

    def __init__(self):
        # A dict, not a set: insertion order survives snapshot/reload, so
        # a resumed serial DFS walks the identical frontier order.
        self._digests: dict[str, None] = {}
        self._hits = 0

    def add(self, digest: str) -> bool:
        if digest in self._digests:
            self._hits += 1
            return False
        self._digests[digest] = None
        if self._summary is not None:
            self._summary.add(digest)
        return True

    def __contains__(self, digest: str) -> bool:
        if digest in self._digests:
            self._hits += 1
            return True
        return False

    def __len__(self) -> int:
        return len(self._digests)

    def digests(self):
        return iter(self._digests)

    def counters(self) -> dict:
        return {"hits": self._hits, "spill_reads": 0, "evictions": 0,
                "bloom_negatives": 0}

    def reset_counters(self) -> None:
        self._hits = 0

    def record_encoding(self) -> str:
        for digest in self._digests:
            return RECORD_HEX if _is_hex(digest) else RECORD_ASCII
        return RECORD_ASCII

    def record_width(self) -> int:
        for digest in self._digests:
            if _is_hex(digest):
                return len(digest) // 2
            return len(digest.encode("ascii"))
        return 0

    def snapshot_into(self, directory: Path, previous: Path | None = None):
        name = "states-0000.bin"
        encoding = self.record_encoding()
        width = self.record_width()
        buffer = bytearray()
        with open(directory / name, "wb") as handle:
            for digest in self._digests:
                record = _encode_digest(digest, encoding)
                if record is None or len(record) != width:
                    # Mis-sliced records would corrupt every digest after
                    # the first odd one out on resume — refuse now.
                    raise ValueError(
                        f"digest width changed mid-run: {digest!r} does "
                        f"not pack to {width} {encoding} bytes (mixed "
                        f"hash modes in one store?)")
                buffer += record
                if len(buffer) >= (1 << 20):
                    handle.write(buffer)
                    buffer.clear()
            handle.write(buffer)
        return [name], [], {}


class ShardedStore(StateStore):
    """Digest-prefix shards, append-only record files, LRU resident set.

    Layout per shard ``i``: an append-only file of fixed-width packed
    records (record ``n`` lives at byte ``n * width``) behind an
    in-memory tail buffer, plus an in-memory index mapping a 48-bit
    digest prefix to the slot(s) holding it, plus a Bloom bitset over
    the shard's *flushed* (on-disk) records.  Membership: the LRU
    *resident* dict answers hot lookups from memory; a prefix absent
    from the (exact) index is a definitive memory-only miss; otherwise
    the candidate slots are compared against the tail buffer or the
    shard file — and before any disk read the Bloom bitset gets a say:
    a definite negative skips the file probe entirely.  Inserts append
    one record to the tail buffer (flushed to the file in 64 KiB runs)
    and one index entry; when the resident set exceeds
    ``memory_budget`` digests the oldest entries spill (the index entry
    — one small int — is all that remains in memory).

    Bloom maintenance is deferred to flush time — bits are set in one
    batched pass over each 64 KiB run as it goes to disk, LSM-style
    (build the summary when the data becomes immutable), which keeps
    the add() hot path free of per-record bitset arithmetic.
    """

    kind = STORE_SHARDED

    def __init__(self, shards: int = 16, memory_budget: int = 1_000_000,
                 directory: str | None = None,
                 bloom_bits: int = DEFAULT_BLOOM_BITS):
        if shards < 1:
            raise ValueError("shards must be >= 1")
        if memory_budget < 1:
            raise ValueError("memory_budget must be >= 1")
        if bloom_bits < 0:
            raise ValueError("bloom_bits must be >= 0")
        self.shards = shards
        self.memory_budget = memory_budget
        self._owns_dir = directory is None
        self.directory = Path(directory or tempfile.mkdtemp(
            prefix="nice-store-"))
        self.directory.mkdir(parents=True, exist_ok=True)
        self._files = [
            open(self.directory / self._shard_name(i), "w+b")
            for i in range(shards)
        ]
        #: Per shard: 48-bit digest prefix -> slot int (or tuple of slots
        #: on the rare prefix collision).
        self._index: list[dict[int, int | tuple]] = [{} for _ in range(shards)]
        self._slots = [0] * shards
        #: Bytes flushed to each shard file (always a record multiple).
        self._flushed = [0] * shards
        #: Records appended but not yet written to the shard file.
        self._tails = [bytearray() for _ in range(shards)]
        #: LRU resident set: a plain (insertion-ordered) dict — cheaper
        #: per insert than OrderedDict on the hot path; touches re-insert.
        self._resident: dict[str, None] = {}
        self._count = 0
        self._width = 0
        self._encoding: str | None = None
        # -1 until hex encoding is chosen: ``len(digest)`` can never be
        # negative, so add()'s single-comparison fast-path check stays
        # false both before init and in ascii mode.
        self._hexlen = -1
        if bloom_bits:
            self._bloom: list[BloomFilter] | None = [
                BloomFilter(bloom_bits) for _ in range(shards)]
            self.bloom_bits = self._bloom[0].bits
        else:
            self.bloom_bits = 0
            self._bloom = None
        #: True while preload() replays a checkpoint whose Bloom
        #: summaries were loaded verbatim — flushes skip rebuilding bits
        #: the summary already holds.
        self._bloom_precovered = False
        self._hits = 0
        self._spill_reads = 0
        self._evictions = 0
        self._bloom_negatives = 0
        #: Committed snapshot baseline, per shard: [(name, bytes, info)]
        #: segment lists matching the previous successful checkpoint.
        self._segments: list[list] = [[] for _ in range(shards)]
        self._snap_slots = [0] * shards
        #: Manifest info for committed Bloom files, by file name.
        self._bloom_info: dict[str, dict] = {}
        self._pending_segments: list[list] | None = None
        self._pending_bloom: list[str] = []

    @staticmethod
    def _shard_name(index: int) -> str:
        return f"states-{index:04d}.bin"

    def _init_encoding(self, digest: str) -> None:
        if _is_hex(digest):
            self._encoding = RECORD_HEX
            self._hexlen = len(digest)
            self._width = len(digest) // 2
        else:
            self._encoding = RECORD_ASCII
            self._width = len(digest.encode("ascii"))

    def _pack(self, digest: str) -> bytes:
        """``digest`` as this store's packed record; raises the
        mixed-hash-modes ValueError on any width/encoding mismatch —
        from lookups as well as inserts (a silent False here would let
        one run mix digest schemes and corrupt dedup).  Hex-mode records
        canonicalize to lowercase (``bytes.fromhex`` is case-blind)."""
        if self._encoding is None:
            self._init_encoding(digest)
        if self._encoding == RECORD_HEX:
            if len(digest) == self._hexlen:
                try:
                    return bytes.fromhex(digest)
                except ValueError:
                    pass
        else:
            try:
                record = digest.encode("ascii")
            except UnicodeEncodeError:
                record = None
            if record is not None and len(record) == self._width:
                return record
        raise ValueError(
            f"digest width changed mid-run: {digest!r} does not pack to "
            f"{self._width} {self._encoding} bytes (mixed hash modes in "
            f"one store?)")

    def _bloom_may_hold(self, shard: int, record: bytes) -> bool:
        """False means ``record`` is definitely not among the shard's
        flushed records (the bitset covers exactly those)."""
        bloom = self._bloom
        if bloom is None:
            return True
        return bloom[shard].may_hold(record)

    def _probe_records(self, shard: int, slots, record: bytes) -> bool:
        """Compare ``record`` against the candidate slots — in the tail
        buffer when the slot hasn't been flushed yet, else on disk.
        Disk probes cost a seek+read, so the shard's Bloom bitset is
        consulted once before the first one: a definite negative skips
        every flushed slot (tail slots are still compared — they live
        in memory and the bitset does not cover them)."""
        width = self._width
        flushed = self._flushed[shard]
        tail = self._tails[shard]
        handle = self._files[shard]
        disk_ok = None
        for slot in slots if isinstance(slots, tuple) else (slots,):
            offset = slot * width
            if offset >= flushed:
                self._spill_reads += 1
                start = offset - flushed
                if bytes(tail[start:start + width]) == record:
                    return True
            else:
                if disk_ok is None:
                    disk_ok = self._bloom_may_hold(shard, record)
                    if not disk_ok:
                        self._bloom_negatives += 1
                if disk_ok:
                    self._spill_reads += 1
                    handle.seek(offset)
                    if handle.read(width) == record:
                        return True
        return False

    def _touch(self, digest: str) -> None:
        """Enter ``digest`` into the resident LRU, spilling the coldest.
        Re-inserting moves an existing key to the back of the (insertion-
        ordered) dict, so eviction order is least-recently-touched."""
        resident = self._resident
        resident.pop(digest, None)
        resident[digest] = None
        while len(resident) > self.memory_budget:
            del resident[next(iter(resident))]
            self._evictions += 1

    def __contains__(self, digest: str) -> bool:
        resident = self._resident
        if digest in resident:
            self._hits += 1
            del resident[digest]
            resident[digest] = None
            return True
        if not self._count:
            return False
        record = self._pack(digest)
        # Small-int prefix (first six record bytes) — bigint arithmetic
        # on the full record is 2-3x the cost per operation.
        prefix = _from_bytes(record[:6], "little")
        shard = prefix % self.shards
        slots = self._index[shard].get(prefix)
        if slots is None:
            return False
        if self._probe_records(shard, slots, record):
            self._touch(digest)
            return True
        return False

    def add(self, digest: str) -> bool:
        resident = self._resident
        if digest in resident:
            self._hits += 1
            del resident[digest]
            resident[digest] = None
            return False
        # Inlined hex fast path of _pack (this is *the* hot loop of an
        # exhaustive search); everything else falls into _pack, which
        # also performs first-digest encoding setup and error reporting.
        if len(digest) == self._hexlen:
            try:
                record = bytes.fromhex(digest)
            except ValueError:
                record = self._pack(digest)
        else:
            record = self._pack(digest)
        prefix = _from_bytes(record[:6], "little")
        shard = prefix % self.shards
        slot = self._slots[shard]
        # setdefault folds the common miss-then-insert pair into one
        # dict op.  Identity is sound: it returns the exact object we
        # passed iff it inserted, and any pre-existing entry holds a
        # strictly smaller slot (or a tuple), never this one.
        held = self._index[shard].setdefault(prefix, slot)
        if held is not slot:
            if self._probe_records(shard, held, record):
                self._touch(digest)
                return False
            self._index[shard][prefix] = held + (slot,) \
                if isinstance(held, tuple) else (held, slot)
        tail = self._tails[shard]
        tail += record
        self._slots[shard] = slot + 1
        self._count += 1
        if self._summary is not None:
            self._summary.add_record(record, prefix)
        resident[digest] = None
        if len(resident) > self.memory_budget:
            del resident[next(iter(resident))]
            self._evictions += 1
        if len(tail) >= _FLUSH_BYTES:
            self._flush_shard(shard)
        return True

    def __len__(self) -> int:
        return self._count

    def _flush_shard(self, shard: int) -> None:
        tail = self._tails[shard]
        if not tail:
            return
        bloom = self._bloom
        if bloom is not None and not self._bloom_precovered:
            # Deferred Bloom maintenance: the bitset covers exactly the
            # flushed records, so the per-record arithmetic runs here in
            # one batched pass over the outgoing run — never on add().
            bloom[shard].add_run(bytes(tail), self._width)
        handle = self._files[shard]
        handle.seek(0, io.SEEK_END)
        handle.write(tail)
        self._flushed[shard] += len(tail)
        self._tails[shard] = bytearray()

    def flush(self) -> None:
        """Append every shard's tail buffer to its record file."""
        for shard in range(self.shards):
            if self._tails[shard]:
                self._flush_shard(shard)

    def digests(self):
        width = self._width
        if not width:
            return
        # Chunked, record-aligned reads: iterating the store must not
        # buffer a whole shard file — for the explored sets this store
        # exists for, that file can approach the RAM being avoided.
        chunk_size = max(1, (1 << 20) // width) * width
        hexed = self._encoding == RECORD_HEX
        for shard in range(self.shards):
            handle = self._files[shard]
            # Snapshot the flushed extent and the tail buffer *together*
            # before streaming either leg: this is a generator, and a
            # flush on another code path (a checkpoint mid-iteration)
            # both moves tail records past the flushed mark and moves
            # the shared file handle — reading "flushed then tail" live
            # would skip those records or yield them twice.  The
            # snapshot pins exactly the records present when the
            # shard's iteration began, and every read re-seeks to its
            # own offset so a concurrent append can't hijack the
            # position.
            flushed = self._flushed[shard]
            tail = bytes(self._tails[shard])
            offset = 0
            while offset < flushed:
                handle.seek(offset)
                data = handle.read(min(chunk_size, flushed - offset))
                if not data:
                    break
                offset += len(data)
                for start in range(0, len(data), width):
                    record = data[start:start + width]
                    yield record.hex() if hexed else record.decode("ascii")
            for start in range(0, len(tail), width):
                record = tail[start:start + width]
                yield record.hex() if hexed else record.decode("ascii")

    def counters(self) -> dict:
        return {"hits": self._hits, "spill_reads": self._spill_reads,
                "evictions": self._evictions,
                "bloom_negatives": self._bloom_negatives}

    def reset_counters(self) -> None:
        self._hits = self._spill_reads = self._evictions = 0
        self._bloom_negatives = 0

    def preload(self, digests, summaries=None) -> None:
        # Bloom disabled (store_bloom_bits=0) is an explicit no-op for
        # shipped summaries: a resumed bloom-less store must never load
        # a checkpoint's stale bitsets.  The inverse — bloom enabled,
        # summary-less snapshot — takes the `summaries is None` path and
        # rebuilds bitsets at flush time below.
        if summaries is not None and self._bloom is not None:
            expected = self.bloom_bits >> 3
            loaded = [BloomFilter(self.bloom_bits)
                      for _ in range(self.shards)]
            usable = True
            for shard, path in summaries:
                try:
                    data = Path(path).read_bytes()
                except OSError:
                    usable = False
                    break
                if shard >= self.shards or len(data) != expected:
                    usable = False
                    break
                loaded[shard] = BloomFilter(self.bloom_bits, data)
            if usable:
                # The shipped summaries cover every checkpointed record,
                # so the replay below skips rebuilding bits at flush
                # time — the point of serializing them.
                self._bloom = loaded
                self._bloom_precovered = True
        try:
            for digest in digests:
                self.add(digest)
            if self._bloom_precovered:
                self.flush()
        finally:
            self._bloom_precovered = False
        self.reset_counters()

    def record_width(self) -> int:
        return self._width

    def record_encoding(self) -> str:
        return self._encoding or RECORD_ASCII

    # -- snapshots ------------------------------------------------------

    @staticmethod
    def _segment_name(shard: int, segment: int) -> str:
        return f"states-{shard:04d}-{segment:04d}.bin"

    @staticmethod
    def _bloom_name(shard: int) -> str:
        return f"bloom-{shard:04d}.bin"

    def _copy_range(self, shard: int, start: int, end: int,
                    dest: Path) -> None:
        handle = self._files[shard]
        handle.seek(start)
        remaining = end - start
        with open(dest, "wb") as out:
            while remaining:
                data = handle.read(min(1 << 20, remaining))
                if not data:
                    raise CheckpointError(
                        f"shard {shard} truncated during snapshot")
                out.write(data)
                remaining -= len(data)

    def snapshot_into(self, directory: Path, previous: Path | None = None):
        self.flush()
        directory = Path(directory)
        record_names: list[str] = []
        summary_names: list[str] = []
        carried: dict[str, dict] = {}
        pending: list[list] = [[] for _ in range(self.shards)]
        pending_bloom: list[str] = []
        for shard in range(self.shards):
            size = self._flushed[shard]
            if not size:
                continue
            committed = self._segments[shard]
            base = sum(nbytes for _, nbytes, _ in committed)
            reused: list = []
            if previous is not None and committed and base <= size and \
                    all(info is not None for _, _, info in committed):
                try:
                    for name, nbytes, info in committed:
                        os.link(previous / name, directory / name)
                        reused.append((name, nbytes, info))
                except OSError:
                    # Cross-device / platform without links / pruned
                    # source: fall back to a full rewrite of this shard.
                    for name, _, _ in reused:
                        try:
                            (directory / name).unlink()
                        except OSError:
                            pass
                    reused = []
            if not reused:
                base = 0
            segments = list(reused)
            if size > base:
                seg_name = self._segment_name(shard, len(segments))
                self._copy_range(shard, base, size, directory / seg_name)
                segments.append((seg_name, size - base, None))
            pending[shard] = segments
            for name, _, info in segments:
                record_names.append(name)
                if info is not None:
                    carried[name] = info
            if self._bloom is not None:
                bloom_name = self._bloom_name(shard)
                info = self._bloom_info.get(bloom_name)
                linked = False
                if previous is not None and info is not None and \
                        self._slots[shard] == self._snap_slots[shard]:
                    try:
                        os.link(previous / bloom_name, directory / bloom_name)
                        carried[bloom_name] = info
                        linked = True
                    except OSError:
                        try:
                            (directory / bloom_name).unlink()
                        except OSError:
                            pass
                if not linked:
                    (directory / bloom_name).write_bytes(
                        bytes(self._bloom[shard].data))
                summary_names.append(bloom_name)
                pending_bloom.append(bloom_name)
        self._pending_segments = pending
        self._pending_bloom = pending_bloom
        return record_names, summary_names, carried

    def note_snapshot(self, files_info: dict) -> None:
        pending = self._pending_segments
        if pending is None:
            return
        self._segments = [
            [(name, nbytes, info if info is not None
              else files_info.get(name))
             for name, nbytes, info in segments]
            for segments in pending
        ]
        self._snap_slots = list(self._slots)
        self._bloom_info = {
            name: files_info[name]
            for name in self._pending_bloom if name in files_info
        }
        self._pending_segments = None
        self._pending_bloom = []

    @staticmethod
    def _parse_record_name(name: str):
        """``states-SSSS[-NNNN].bin`` -> (shard, segment) or None."""
        if not name.startswith("states-") or not name.endswith(".bin"):
            return None
        parts = name[len("states-"):-len(".bin")].split("-")
        if len(parts) not in (1, 2):
            return None
        try:
            shard = int(parts[0])
            segment = int(parts[1]) if len(parts) == 2 else 0
        except ValueError:
            return None
        return shard, segment

    @staticmethod
    def _parse_bloom_name(name: str):
        if not name.startswith("bloom-") or not name.endswith(".bin"):
            return None
        try:
            return int(name[len("bloom-"):-len(".bin")])
        except ValueError:
            return None

    def adopt_baseline(self, checkpoint: "Checkpoint") -> bool:
        if not self._count or checkpoint.record_encoding != self._encoding \
                or checkpoint.record_width != self._width:
            return False
        self.flush()
        grouped: dict[int, list] = {}
        for path in checkpoint.record_files:
            parsed = self._parse_record_name(path.name)
            info = checkpoint.file_info.get(path.name)
            if parsed is None or info is None or parsed[0] >= self.shards:
                return False
            grouped.setdefault(parsed[0], []).append(
                (parsed[1], path.name, info))
        segments: list[list] = [[] for _ in range(self.shards)]
        sizes = [0] * self.shards
        for shard, entries in grouped.items():
            entries.sort()
            for _, name, info in entries:
                segments[shard].append((name, info["bytes"], info))
                sizes[shard] += info["bytes"]
        # The preloaded store must hold byte-for-byte what the segments
        # hold (same shard assignment, same per-shard order) for linking
        # to be sound; the cheap proxy is an exact per-shard byte match.
        if sizes != self._flushed:
            return False
        self._segments = segments
        self._snap_slots = list(self._slots)
        self._bloom_info = {}
        if self._bloom is not None:
            for path in checkpoint.summary_files:
                shard = self._parse_bloom_name(path.name)
                info = checkpoint.file_info.get(path.name)
                if shard is None or shard >= self.shards or info is None:
                    continue
                if info["bytes"] == len(self._bloom[shard].data):
                    self._bloom_info[path.name] = info
        return True

    def close(self) -> None:
        try:
            self.flush()
        except (OSError, ValueError):
            pass
        for handle in self._files:
            try:
                handle.close()
            except OSError:
                pass
        if self._owns_dir:
            shutil.rmtree(self.directory, ignore_errors=True)


def create_store(config) -> StateStore:
    """The explored-set store ``config`` asks for.

    The crash-recovery harness monkeypatches this hook to plant seeded
    interruption points, so the engines must resolve it through the
    module (``store_mod.create_store``) at run time, not import time.
    """
    if config.store == STORE_SHARDED:
        return ShardedStore(
            config.store_shards, config.store_memory_budget,
            bloom_bits=getattr(config, "store_bloom_bits",
                               DEFAULT_BLOOM_BITS))
    return MemoryStore()


# ----------------------------------------------------------------------
# Checkpoints
# ----------------------------------------------------------------------

#: SearchStats fields that describe *this* run, not accumulated results —
#: never restored from a checkpoint.
_NON_RESUMABLE = ("wall_time", "engine", "workers", "terminated",
                  "resumed_from")


@dataclass
class Checkpoint:
    """One loaded (validated) checkpoint."""

    path: Path
    spec: object            # ScenarioSpec | None (hand-built scenarios)
    config: object          # the NiceConfig the run was using
    stats: dict             # SearchStats.__dict__ snapshot
    frontier: list          # [(parent trace, [transition, ...] | None)]
    rng_state: object       # random.Random state of the frontier RNG
    states: int             # digest count across the record files
    record_width: int
    record_files: list[Path]
    record_encoding: str = RECORD_ASCII
    summary_files: list[Path] = field(default_factory=list)
    file_info: dict = field(default_factory=dict)
    format: int = 1
    bytes_written: int | None = None

    def iter_digests(self):
        width = self.record_width
        if not width:
            return  # a checkpoint of an empty store holds no records
        hexed = self.record_encoding == RECORD_HEX
        # Chunked, record-aligned reads: resume must not buffer a whole
        # record file — for the explored sets the sharded store exists
        # for, that file can approach the RAM the store is avoiding.
        chunk_size = max(1, (1 << 20) // width) * width
        for path in self.record_files:
            with open(path, "rb") as handle:
                while True:
                    data = handle.read(chunk_size)
                    if not data:
                        break
                    for offset in range(0, len(data), width):
                        record = data[offset:offset + width]
                        yield record.hex() if hexed \
                            else record.decode("ascii")

    def restore_stats(self, stats) -> None:
        """Seed a fresh SearchStats with the checkpointed counters."""
        for key, value in self.stats.items():
            if key in _NON_RESUMABLE or not hasattr(stats, key):
                continue
            setattr(stats, key, value)
        stats.resumed_from = str(self.path)


def restore_store(store: StateStore, checkpoint: Checkpoint):
    """Rebuild ``store`` from ``checkpoint``: preload every digest (with
    the checkpoint's Bloom summaries when they fit this store's shape)
    and adopt the checkpoint's record files as the compaction baseline.
    Returns the baseline path for the next snapshot to hard-link from,
    or None when the layouts are incompatible (full rewrite instead)."""
    store.preload(checkpoint.iter_digests(),
                  summaries=_compatible_summaries(store, checkpoint))
    if store.adopt_baseline(checkpoint):
        return checkpoint.path
    return None


def _compatible_summaries(store: StateStore, checkpoint: Checkpoint):
    """The checkpoint's ``(shard, path)`` Bloom files, iff they describe
    this store's exact shard layout and bitset size — a bitset for a
    different sharding would answer false negatives, which (unlike false
    positives) would corrupt dedup.

    Both resume mismatch directions return None on purpose: a bloom-less
    snapshot resumed with bloom enabled rebuilds bitsets at flush time,
    and a bloom-carrying snapshot resumed with ``store_bloom_bits=0``
    (or any other bitset/shard shape) ignores the stale files."""
    if not checkpoint.summary_files or not isinstance(store, ShardedStore):
        return None
    if store._bloom is None:
        return None
    if getattr(checkpoint.config, "store_shards", None) != store.shards:
        return None
    expected = store.bloom_bits >> 3
    pairs = []
    for path in checkpoint.summary_files:
        shard = ShardedStore._parse_bloom_name(path.name)
        info = checkpoint.file_info.get(path.name)
        if shard is None or shard >= store.shards or info is None:
            return None
        if info["bytes"] != expected:
            return None
        pairs.append((shard, path))
    return pairs


def _file_digest(path: Path) -> str:
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_dir(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return  # platform without directory fsync
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _next_sequence(directory: Path) -> int:
    highest = 0
    for entry in directory.glob(f"{_CKPT_PREFIX}*"):
        try:
            highest = max(highest, int(entry.name[len(_CKPT_PREFIX):]))
        except ValueError:
            continue
    return highest + 1


def write_checkpoint(directory: str | Path, *, spec, config, stats,
                     frontier, rng_state, store: StateStore,
                     previous: str | Path | None = None) -> Path:
    """Atomically snapshot one consistent master state; returns the new
    checkpoint's path.  ``previous`` is the last committed checkpoint of
    this same store, if any — unchanged record segments and Bloom files
    are hard-linked from it instead of rewritten, which is what makes
    snapshot cost O(new states).  See the module docstring for the
    atomicity protocol."""
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    sequence = _next_sequence(root)
    name = f"{_CKPT_PREFIX}{sequence:08d}"
    staging = root / f"{_TMP_PREFIX}{sequence:08d}"
    if staging.exists():
        shutil.rmtree(staging)
    staging.mkdir()
    try:
        record_files, summary_files, carried = store.snapshot_into(
            staging, previous=Path(previous) if previous else None)
        meta = {
            "spec": spec,
            "config": config,
            "stats": dict(stats.__dict__),
            "frontier": list(frontier),
            "rng_state": rng_state,
        }
        with open(staging / _META, "wb") as handle:
            pickle.dump(meta, handle, protocol=pickle.HIGHEST_PROTOCOL)
        files = {}
        bytes_written = 0
        for file_name in [*record_files, *summary_files, _META]:
            info = carried.get(file_name)
            if info is None:
                path = staging / file_name
                info = {"bytes": path.stat().st_size,
                        "blake2b": _file_digest(path)}
                bytes_written += info["bytes"]
            files[file_name] = info
        manifest = {
            "format": CHECKPOINT_FORMAT,
            "states": len(store),
            "record_width": store.record_width(),
            "record_encoding": store.record_encoding(),
            "record_files": record_files,
            "summary_files": summary_files,
            "bytes_written": bytes_written,
            "store": store.kind,
            "files": files,
        }
        # The manifest is written (and fsynced) last: a crash before this
        # point leaves a manifest-less temp directory resume ignores.
        (staging / _MANIFEST).write_text(json.dumps(manifest, indent=1))
        for file_name in [*files, _MANIFEST]:
            if file_name in carried:
                continue  # hard-linked: already durable in the previous
            with open(staging / file_name, "rb") as handle:
                os.fsync(handle.fileno())
    except BaseException:
        shutil.rmtree(staging, ignore_errors=True)
        raise
    os.rename(staging, root / name)
    _fsync_dir(root)
    store.note_snapshot(files)
    _prune(root)
    return root / name


def _prune(root: Path) -> None:
    complete = sorted(root.glob(f"{_CKPT_PREFIX}*"))
    for stale in complete[:-CHECKPOINT_KEEP]:
        shutil.rmtree(stale, ignore_errors=True)


def _validate(path: Path) -> Checkpoint:
    manifest = json.loads((path / _MANIFEST).read_text())
    if manifest.get("format") not in _READABLE_FORMATS:
        raise CheckpointError(
            f"{path.name}: checkpoint format {manifest.get('format')!r} "
            f"not in {_READABLE_FORMATS}")
    for file_name, expected in manifest["files"].items():
        target = path / file_name
        if not target.is_file():
            raise CheckpointError(f"{path.name}: missing {file_name}")
        if target.stat().st_size != expected["bytes"]:
            raise CheckpointError(
                f"{path.name}: {file_name} is {target.stat().st_size} "
                f"bytes, manifest says {expected['bytes']} (torn write?)")
        if _file_digest(target) != expected["blake2b"]:
            raise CheckpointError(
                f"{path.name}: {file_name} fails its checksum")
    with open(path / _META, "rb") as handle:
        meta = pickle.load(handle)
    return Checkpoint(
        path=path,
        spec=meta["spec"],
        config=meta["config"],
        stats=meta["stats"],
        frontier=meta["frontier"],
        rng_state=meta["rng_state"],
        states=manifest["states"],
        record_width=manifest["record_width"],
        record_files=[path / name for name in manifest["record_files"]],
        # Format-1 snapshots predate packing, summaries and compaction.
        record_encoding=manifest.get("record_encoding", RECORD_ASCII),
        summary_files=[path / name
                       for name in manifest.get("summary_files", [])],
        file_info=manifest["files"],
        format=manifest["format"],
        bytes_written=manifest.get("bytes_written"),
    )


def list_checkpoints(directory: str | Path) -> list[Path]:
    """All checkpoint directories under ``directory``, oldest first."""
    return sorted(Path(directory).glob(f"{_CKPT_PREFIX}*"))


def validate_checkpoint(path: str | Path) -> Checkpoint:
    """Validate and load one checkpoint directory (manifest format, file
    sizes, blake2b checksums) — the ``nice checkpoints`` inspector's entry
    point into the same validator ``nice resume`` trusts.  Raises
    :class:`CheckpointError` on a torn or corrupt snapshot."""
    try:
        return _validate(Path(path))
    except CheckpointError:
        raise
    except (OSError, json.JSONDecodeError, pickle.UnpicklingError,
            KeyError, EOFError) as exc:
        raise CheckpointError(f"{Path(path).name}: {exc}") from exc


def load_latest_checkpoint(directory: str | Path) -> Checkpoint:
    """The newest checkpoint under ``directory`` that validates.

    Invalid snapshots (torn writes, truncations, bad checksums) are
    reported to stderr and skipped — resume falls back to the previous
    good one.  Raises :class:`CheckpointError` when none validates.
    """
    import sys

    root = Path(directory)
    candidates = sorted(root.glob(f"{_CKPT_PREFIX}*"), reverse=True)
    failures = []
    for candidate in candidates:
        try:
            return _validate(candidate)
        except (CheckpointError, OSError, json.JSONDecodeError,
                pickle.UnpicklingError, KeyError, EOFError) as exc:
            failures.append(f"{candidate.name}: {exc}")
            print(f"checkpoint {candidate} is unusable ({exc}); "
                  f"falling back to the previous one",
                  file=sys.stderr, flush=True)
    detail = "; ".join(failures) if failures else "no checkpoints found"
    raise CheckpointError(f"no usable checkpoint under {root}: {detail}")


# ----------------------------------------------------------------------
# The engines' checkpoint driver
# ----------------------------------------------------------------------

class Checkpointer:
    """Periodic + SIGTERM-triggered checkpoint writing for one run.

    Enabled iff ``config.checkpoint_dir`` is set.  ``due()`` fires every
    ``config.checkpoint_interval`` units of progress (newly explored
    states; executed transitions when state matching is off) and immediately
    after a SIGTERM (the handler only sets a flag — the engine writes the
    snapshot at its next *consistent* point: between node expansions
    serially, after draining in-flight tasks in the scheduler).
    ``install()``/``restore()`` bracket the run so the previous SIGTERM
    handler (coverage.py installs one, for instance) is always put back.

    ``previous`` seeds the incremental-snapshot chain: the checkpoint a
    resumed run loaded from (when its layout was adopted), then always
    the last snapshot this run wrote.
    """

    def __init__(self, config, spec, store: StateStore, stats,
                 previous: str | Path | None = None):
        self.config = config
        self.spec = spec
        self.store = store
        self.stats = stats
        self.enabled = bool(config.checkpoint_dir)
        self.sigterm = False
        self._last_progress = self._progress()
        self._previous_handler = None
        self._previous = Path(previous) if previous else None
        # Store counters are deltas since this run's store came up; a
        # resumed SearchStats already carries the previous legs' totals,
        # so sync() adds the live deltas onto that base (absolute set —
        # safe to call any number of times).
        self._counter_base = (stats.store_hits, stats.store_spill_reads,
                              stats.store_evictions,
                              stats.store_bloom_negatives)
        stats.store = store.kind
        if self.enabled and spec is None:
            warnings.warn(
                "checkpointing needs a registry scenario (resume rebuilds "
                "the System by name); this hand-built scenario's "
                "checkpoints can only be resumed by passing scenario= to "
                "nice.resume()", RuntimeWarning, stacklevel=3)

    def install(self) -> None:
        """Take over SIGTERM for the duration of the run (main thread
        only — worker threads cannot install signal handlers)."""
        if self.enabled and \
                threading.current_thread() is threading.main_thread():
            self._previous_handler = signal.signal(
                signal.SIGTERM, self._on_sigterm)

    def restore(self) -> None:
        if self._previous_handler is not None:
            signal.signal(signal.SIGTERM, self._previous_handler)
            self._previous_handler = None

    def _on_sigterm(self, signum, frame) -> None:
        self.sigterm = True

    def sync(self) -> None:
        """Fold the store's live spill/hit counters into the stats."""
        counters = self.store.counters()
        self.stats.store_hits = self._counter_base[0] + counters["hits"]
        self.stats.store_spill_reads = \
            self._counter_base[1] + counters["spill_reads"]
        self.stats.store_evictions = \
            self._counter_base[2] + counters["evictions"]
        self.stats.store_bloom_negatives = \
            self._counter_base[3] + counters.get("bloom_negatives", 0)

    def _progress(self) -> int:
        """What ``checkpoint_interval`` counts: newly explored states —
        or, with state matching off (the store then only ever holds the
        initial digest), executed transitions, so bounded no-dedup runs
        still checkpoint."""
        if self.config.state_matching:
            return len(self.store)
        return self.stats.transitions_executed

    def due(self) -> bool:
        if not self.enabled:
            return False
        if self.sigterm:
            return True
        interval = self.config.checkpoint_interval
        return self._progress() - self._last_progress >= interval

    def write(self, frontier_groups, rng_state) -> Path:
        """Snapshot now; ``frontier_groups`` is the transport-agnostic
        ``[(trace, steps | None), ...]`` form of the pending frontier."""
        start = time.perf_counter()
        self.sync()
        # Counted before the write so the snapshot includes itself — a
        # resumed run then reports every checkpoint its lineage wrote.
        self.stats.checkpoints_written += 1
        try:
            path = write_checkpoint(
                self.config.checkpoint_dir, spec=self.spec,
                config=self.config, stats=self.stats,
                frontier=frontier_groups, rng_state=rng_state,
                store=self.store, previous=self._previous)
        except BaseException:
            # A failed snapshot must not inflate the counter: the next
            # successful snapshot would bake the phantom write into its
            # meta and every resumed descendant would inherit it.
            self.stats.checkpoints_written -= 1
            raise
        self._previous = path
        try:
            manifest = json.loads((path / _MANIFEST).read_text())
            self.stats.checkpoint_bytes_written += \
                int(manifest.get("bytes_written") or 0)
        except (OSError, ValueError):
            pass
        self.stats.checkpoint_seconds += time.perf_counter() - start
        self._last_progress = self._progress()
        return path
