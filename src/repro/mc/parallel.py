"""Backwards-compatible façade over the parallel search stack.

PR 1 shipped the parallel engine as one fork-only module here.  It is now
layered (DESIGN.md, "Scheduler and transports"):

* :mod:`repro.mc.scheduler` — the transport-agnostic master loop
  (explored set, sibling-group frontier, pre-scheduling dedup, affinity
  routing) and :class:`ParallelSearcher`;
* :mod:`repro.mc.worker` — the worker runtime (replay LRU, expansion);
* :mod:`repro.mc.transport` — local fork/spawn pools and TCP workers;
* :mod:`repro.mc.wire` — the task/result wire format and scenario specs.

Import :class:`ParallelSearcher` from here or from
:mod:`repro.mc.scheduler` interchangeably.
"""

from __future__ import annotations

from repro.mc.scheduler import ParallelSearcher

__all__ = ["ParallelSearcher"]
