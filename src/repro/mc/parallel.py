"""Parallel state-space search: sibling-group tasks over a worker pool.

Architecture (DESIGN.md, "Search engine"):

* the **master** owns the explored-state set and a frontier of
  **sibling groups** ``(parent trace, [transitions])`` — trace-replay
  checkpoints; full :class:`System` objects never cross process
  boundaries.  Children returned by a task are deduplicated against the
  global explored set *before* they are scheduled, so every reachable
  state is expanded exactly once, exactly like the serial loop;
* a **worker** restores a group's parent by trace replay, rebuilds each
  sibling node with one clone + execute, and expands it: enumerate enabled
  transitions, clone + execute each child, check the properties, and hash.
  Results reference nodes by ``(group, sibling)`` index — the master
  rebuilds their traces from the groups it sent, so each transition
  crosses the process boundary at most twice (once discovered in a
  result, once replayed in a later task) instead of once per descendant;
* replay cost is amortized three ways: siblings share one parent replay,
  each worker keeps an LRU cache of node systems keyed by trace (restoring
  a group usually clones a cached ancestor and replays only the missing
  suffix), and long replays snapshot a spine of intermediate states back
  into the cache;
* the master merges results as they arrive — no wave barrier; completed
  tasks immediately refill the pool.

The pool uses the ``fork`` start method so workers inherit the scenario's
closures (system factories are not picklable); on platforms without
``fork``, or with ``workers <= 1``, the searcher falls back to the serial
engine.

Exactness contract: every (state, transition) pair is executed and
property-checked exactly once, so for an exhaustive search
(``stop_at_first_violation`` off, no transition cap) ``unique_states``,
``transitions_executed``, ``revisited_states`` and ``quiescent_states``
all equal the serial searcher's.  The set of *violated properties* is
likewise identical.  Individual violation records can differ from serial
DFS in their messages and traces whenever a property reads execution
*history* (packet-fate ledger, packet-in logs): state matching keeps only
the first path that reaches each state, and which path wins is a search-
order artifact — serial DFS and BFS disagree on those records the same
way.  For history-independent properties the ``(property, state hash)``
sets match exactly.  Early-stopping runs are approximate: workers in
flight when the stop condition trips may have executed extra transitions.
"""

from __future__ import annotations

import multiprocessing
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait

from repro.errors import PropertyViolation
from repro.mc.replay import replay_from
from repro.mc.search import SearchResult, Searcher, Violation, _StopSearch
from repro.mc.strategies import make_strategy

#: Per-process worker state, populated by :func:`_worker_setup` in the
#: forked child.  The parent sets :data:`_FORK_SEARCHER` before creating the
#: pool; forked children inherit it by copy-on-write.
_FORK_SEARCHER: "ParallelSearcher | None" = None
_WORKER: "_WorkerState | None" = None


class _WorkerState:
    """Everything one worker process needs, built once per process."""

    #: Maximum number of node systems kept for prefix-replay restoration.
    MAX_CACHE = 2048
    #: Snapshot stride while replaying long suffixes.
    SPINE = 8

    def __init__(self, searcher: "ParallelSearcher"):
        self.searcher = searcher
        self.initial = searcher.system_factory()
        self.strategy = (searcher._strategy
                         or make_strategy(searcher.config, self.initial.app))
        self.properties = searcher.properties
        for prop in self.properties:
            prop.reset(self.initial)
        #: trace -> System at that trace.  Entries are never mutated (they
        #: only serve as clone sources), so cache hits are safe to reuse.
        #: The initial state lives in ``self.initial``, not here, so
        #: eviction never has to special-case it.
        self.cache: OrderedDict[tuple, object] = OrderedDict()

    def base_for(self, trace, out):
        """System at ``trace``: clone the longest cached ancestor and replay
        the missing suffix (full replay from the initial state at worst),
        snapshotting every :data:`SPINE` steps so nearby groups restore
        cheaply."""
        for k in range(len(trace), -1, -1):
            system = self.cache.get(trace[:k])
            if system is None:
                continue
            self.cache.move_to_end(trace[:k])
            if k == len(trace):
                return system
            out["replayed"] += len(trace) - k
            return self._replay_with_spine(system.clone(), trace, k)
        out["replayed"] += len(trace)
        return self._replay_with_spine(self.initial.clone(), trace, 0)

    def _replay_with_spine(self, system, trace, k):
        while k < len(trace):
            segment = trace[k:k + self.SPINE]
            replay_from(system, segment, self.strategy)
            k += len(segment)
            if k < len(trace):
                self.remember(trace[:k], system.clone())
        return system

    def remember(self, trace, system) -> None:
        self.cache[trace] = system
        if len(self.cache) > self.MAX_CACHE:
            self.cache.popitem(last=False)


def _worker_setup() -> None:
    global _WORKER
    _WORKER = _WorkerState(_FORK_SEARCHER)


def _expand_task(groups):
    """Expand every node of every sibling group, one clone per child.

    Mirrors the serial loop's per-node work exactly (quiescence check,
    depth cap, one execute + property check per child); only *restoration*
    work (parent replay, sibling rebuild) is extra, and none of it is
    counted in the transition totals.  Nodes are referenced back to the
    master as ``(group index, sibling index | None)``.
    """
    worker = _WORKER
    searcher = worker.searcher
    config = searcher.config
    stats = SearchResult()  # scratch counter sink for _enabled()
    out = {
        "children": [],     # (gi, si, [(transition, digest), ...])
        "quiescent": 0,
        "violations": [],   # (property, message, hash, gi, si, transition)
        "transitions": 0,
        "replayed": 0,      # restoration transitions (not counted in totals)
        "rebuilt": 0,       # sibling-rebuild transitions (ditto)
    }
    for gi, (trace, steps) in enumerate(groups):
        base = worker.base_for(trace, out)
        if steps is None:       # the initial-state group
            nodes = [(base, trace, None)]
        else:
            nodes = []
            for si, step in enumerate(steps):
                system = base.clone()
                system.execute(step)
                worker.strategy.post_execute(system, step)
                out["rebuilt"] += 1
                nodes.append((system, trace + (step,), si))
        for system, node_trace, si in nodes:
            worker.remember(node_trace, system)
            enabled = searcher._enabled(system, worker.strategy, stats)
            if not enabled:
                out["quiescent"] += 1
                _check(worker, "check_quiescent", system, gi, si, None, out)
                if config.stop_at_first_violation and out["violations"]:
                    return _finish(out, stats)
                continue
            if (config.max_depth is not None
                    and len(node_trace) >= config.max_depth):
                continue
            kids = []
            for transition in enabled:
                child = system.clone()
                child.execute(transition)
                worker.strategy.post_execute(child, transition)
                out["transitions"] += 1
                _check(worker, "check", child, gi, si, transition, out)
                if config.stop_at_first_violation and out["violations"]:
                    return _finish(out, stats)
                # The digest feeds the master's explored-set dedup; without
                # state matching it would be discarded (the serial loop
                # skips hashing there too).
                kids.append((transition,
                             child.state_hash() if config.state_matching
                             else None))
            out["children"].append((gi, si, kids))
    return _finish(out, stats)


def _finish(out, stats: SearchResult):
    out["discover_packet_runs"] = stats.discover_packet_runs
    out["discover_stats_runs"] = stats.discover_stats_runs
    return out


def _check(worker: _WorkerState, method: str, system, gi, si, transition,
           out) -> None:
    """Run every property, appending violations as picklable tuples."""
    for prop in worker.properties:
        try:
            if method == "check":
                prop.check(system, transition)
            else:
                prop.check_quiescent(system)
        except PropertyViolation as violation:
            out["violations"].append(
                (violation.property_name, violation.message,
                 system.state_hash(), gi, si, transition)
            )


class ParallelSearcher(Searcher):
    """Figure 5's loop, sharded across ``config.workers`` processes."""

    #: Max sibling groups packed into one task.
    MAX_GROUPS = 8
    #: Max total nodes per task once the frontier is wide.
    NODE_BUDGET = 16

    def run(self) -> SearchResult:
        if self.config.workers <= 1 or not self._fork_available():
            return super().run()
        return self._run_pool()

    @staticmethod
    def _fork_available() -> bool:
        return "fork" in multiprocessing.get_all_start_methods()

    def _run_pool(self) -> SearchResult:
        global _FORK_SEARCHER
        #: Restoration overhead (replayed + sibling-rebuild transitions) —
        #: work the serial deepcopy engine does not do; exposed for
        #: benchmarks and tuning.
        self.restore_transitions = 0
        result = SearchResult()
        start = time.perf_counter()
        initial = self.system_factory()
        for prop in self.properties:
            prop.reset(initial)
        try:
            self._check_properties(initial, None, result, ())
        except _StopSearch:
            result.wall_time = time.perf_counter() - start
            return result

        explored: set[str] = {initial.state_hash()}
        #: Sibling groups: (parent trace, [transition, ...] | None).
        frontier: list[tuple] = [((), None)]
        context = multiprocessing.get_context("fork")
        _FORK_SEARCHER = self
        executor = ProcessPoolExecutor(
            max_workers=self.config.workers, mp_context=context,
            initializer=_worker_setup,
        )
        in_flight: dict = {}  # future -> the task's groups
        try:
            while frontier or in_flight:
                while frontier and len(in_flight) < 2 * self.config.workers:
                    task = self._pack(frontier, len(explored))
                    in_flight[executor.submit(_expand_task, task)] = task
                done, _ = wait(in_flight, return_when=FIRST_COMPLETED)
                for future in done:
                    groups = in_flight.pop(future)
                    self._merge(future.result(), groups, result, explored,
                                frontier)
        except _StopSearch:
            pass
        finally:
            for future in in_flight:
                future.cancel()
            executor.shutdown(wait=True, cancel_futures=True)
            _FORK_SEARCHER = None
        result.unique_states = len(explored)
        result.wall_time = time.perf_counter() - start
        return result

    def _pack(self, frontier: list, explored_count: int) -> list:
        """Pop up to MAX_GROUPS groups (NODE_BUDGET nodes) into one task.

        While the explored set is small a task carries a single node, so
        the search fans out across the pool instead of running serially
        inside one worker.
        """
        budget = (1 if explored_count < 4 * self.config.workers
                  else self.NODE_BUDGET)
        groups, nodes = [], 0
        while frontier and len(groups) < self.MAX_GROUPS and nodes < budget:
            trace, steps = self._pop(frontier)
            take = len(steps) if steps is not None else 1
            if steps is not None and nodes + take > budget and groups:
                # Split an oversized group rather than overshooting.
                frontier.append((trace, steps))
                break
            groups.append((trace, steps))
            nodes += take
        return groups

    @staticmethod
    def _node_trace(groups, gi, si) -> tuple:
        trace, steps = groups[gi]
        return trace if si is None else trace + (steps[si],)

    def _merge(self, out, groups, result: SearchResult, explored: set,
               frontier: list) -> None:
        """Fold one task's results into the master state."""
        result.discover_packet_runs += out["discover_packet_runs"]
        result.discover_stats_runs += out["discover_stats_runs"]
        result.transitions_executed += out["transitions"]
        result.quiescent_states += out["quiescent"]
        self.restore_transitions += out["replayed"] + out["rebuilt"]
        for property_name, message, digest, gi, si, transition in \
                out["violations"]:
            trace = self._node_trace(groups, gi, si)
            if transition is not None:
                trace = trace + (transition,)
            result.violations.append(
                Violation(property_name, message, trace, digest,
                          result.transitions_executed)
            )
            if self.config.stop_at_first_violation:
                result.terminated = "first_violation"
                raise _StopSearch()
        if (self.config.max_transitions is not None
                and result.transitions_executed
                >= self.config.max_transitions):
            result.terminated = "max_transitions"
            raise _StopSearch()
        for gi, si, kids in out["children"]:
            fresh = []
            for transition, digest in kids:
                if self.config.state_matching:
                    if digest in explored:
                        result.revisited_states += 1
                        continue
                    explored.add(digest)
                fresh.append(transition)
            if fresh:
                frontier.append((self._node_trace(groups, gi, si), fresh))
