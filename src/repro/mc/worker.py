"""Worker-side runtime of the parallel search.

A worker — forked, spawned, or connected over TCP — runs the same code:
build a :class:`WorkerRuntime`, then expand :class:`~repro.mc.wire.ExpandTask`
sibling groups until told to stop.  Expansion mirrors the serial loop's
per-node work exactly (enumerate enabled transitions, one clone + execute +
property check per child, hash); only *restoration* work (parent replay,
sibling rebuild) is extra, and none of it is counted in the transition
totals.

Restoration cost is amortized by an LRU cache of node systems keyed by
trace (``NiceConfig.worker_cache_size`` entries): restoring a group clones
the longest cached ancestor and replays only the missing suffix, and long
replays snapshot a spine of intermediates back into the cache
(:func:`~repro.mc.replay.replay_with_spine`).  The cache is also what the
scheduler's affinity routing exploits — a child group sent to the worker
that expanded its parent finds the parent trace cached and replays a
one-transition suffix.  ``cache_hits`` / ``cache_misses`` count ancestor
restorations vs. full replays from the initial state — every restoration
increments exactly one of the two — and are reported to the master with
every result.

Workers also run the sending half of the v4 dedup pre-filter (DESIGN.md,
"Distributed dedup"): the scheduler broadcasts Bloom summaries of the
master's explored set, and a child whose digest hits the summary (or
whose transition this task already ships) crosses the wire as a
digest-only stub while the full transition is parked in a bounded
per-worker cache, ready for a :class:`~repro.mc.wire.FetchChildren`
hydration round-trip should the hit turn out to be a false positive.
"""

from __future__ import annotations

import gc
import os
import pickle
import threading
import traceback
from collections import OrderedDict

from repro.errors import NiceError, PropertyViolation
from repro.mc.replay import replay_with_spine
from repro.mc.search import MODEL_ERROR_PROPERTY
from repro.mc.store import DedupSummary
from repro.mc.strategies import make_strategy
from repro.mc.wire import (
    BloomSummary,
    ChildData,
    ExpandTask,
    FetchChildren,
    Heartbeat,
    Hello,
    InitWorker,
    Shutdown,
    TaskResult,
    WorkerError,
    recv_msg,
    searcher_from_spec,
    send_msg,
)

#: Set by the fork local transport in the parent just before forking, so
#: workers inherit the live searcher (closures included) by copy-on-write.
#: Spawned and socket workers rebuild theirs from a ScenarioSpec instead.
_INHERITED_SEARCHER = None


class WorkerRuntime:
    """Everything one worker process needs, built once per process."""

    #: Snapshot stride while replaying long suffixes.
    SPINE = 8

    def __init__(self, searcher):
        self.searcher = searcher
        self.config = searcher.config
        self.max_cache = self.config.worker_cache_size
        self.initial = searcher.system_factory()
        self.strategy = (searcher._strategy
                         or make_strategy(self.config, self.initial.app))
        self.properties = searcher.properties
        for prop in self.properties:
            prop.reset(self.initial)
        #: trace -> System at that trace.  Entries are never mutated (they
        #: only serve as clone sources), so cache hits are safe to reuse.
        #: The initial state lives in ``self.initial``, not here, so
        #: eviction never has to special-case it.
        self.cache: OrderedDict[tuple, object] = OrderedDict()
        #: The master's broadcast dedup summary; None until the first
        #: BloomSummary arrives (and always None with --no-worker-bloom,
        #: which disables the pre-filter entirely).
        self.summary: DedupSummary | None = None
        #: task_id -> parked stub transitions, in stub-ordinal order,
        #: awaiting a possible FetchChildren hydration request.
        self.parked: OrderedDict[int, list] = OrderedDict()

    # ------------------------------------------------------------------
    # Restoration
    # ------------------------------------------------------------------

    def base_for(self, trace, out):
        """System at ``trace``: clone the longest cached ancestor and replay
        the missing suffix (full replay from the initial state at worst).

        Counter contract (module docstring / DESIGN.md): every restoration
        increments exactly one of ``cache_hits`` / ``cache_misses`` — a
        hit whenever *any* cached entry (exact, proper ancestor, or the
        root entry ``()``) provided the starting point, a miss only for
        the fall-through full replay from ``self.initial``.  Root-trace
        restorations count like any other, so hits + misses always equals
        the number of restorations performed.
        """
        for k in range(len(trace), -1, -1):
            system = self.cache.get(trace[:k])
            if system is None:
                continue
            self.cache.move_to_end(trace[:k])
            out["cache_hits"] += 1
            if k == len(trace):
                return system
            out["replayed"] += len(trace) - k
            return self._replay(system.clone(), trace, k)
        out["cache_misses"] += 1
        out["replayed"] += len(trace)
        return self._replay(self.initial.clone(), trace, 0)

    def _replay(self, system, trace, k):
        return replay_with_spine(system, trace, k, self.strategy,
                                 snapshot=self.remember, stride=self.SPINE)

    def remember(self, trace, system) -> None:
        self.cache[trace] = system
        if len(self.cache) > self.max_cache:
            self.cache.popitem(last=False)

    # ------------------------------------------------------------------
    # Expansion
    # ------------------------------------------------------------------

    def expand(self, groups, task_id=None) -> dict:
        """Expand every node of every sibling group, one clone per child.

        Nodes are referenced back to the master as
        ``(group index, sibling index | None)`` so only transitions and
        digests cross the process boundary, never System objects.

        With a broadcast summary installed, a child whose digest the
        summary may hold — or whose transition this very result already
        ships — becomes a ``(None, digest)`` stub and its transition is
        parked under ``task_id`` for a possible hydration fetch.
        """
        searcher = self.searcher
        config = self.config
        stats_sink = _StatsSink()  # scratch counter sink for _enabled()
        summary = self.summary
        #: Digests this result already ships a full transition for; a
        #: repeat within one task is a *certain* master-side revisit, so
        #: it is stubbed without even consulting the Bloom summary.
        shipped: set = set()
        parked: list = []
        # Every system this worker touches descends from self.initial by
        # clone, so one shared HashStats accumulates the hot-path counters;
        # each result carries this task's delta back to the master.
        self._hash_before = self.initial._hash_stats.snapshot()
        out = {
            "children": [],     # (gi, si, [(transition, digest), ...])
            "quiescent": 0,
            "violations": [],   # (property, message, hash, gi, si, transition)
            "transitions": 0,
            "replayed": 0,      # restoration transitions (not in totals)
            "rebuilt": 0,       # sibling-rebuild transitions (ditto)
            "cache_hits": 0,
            "cache_misses": 0,
            "prefilter_stubs": 0,
            "prefilter_bytes_saved": 0,
        }
        for gi, (trace, steps) in enumerate(groups):
            base = self.base_for(trace, out)
            if steps is None:       # the initial-state group
                nodes = [(base, trace, None)]
            else:
                nodes = []
                for si, step in enumerate(steps):
                    system = base.clone()
                    system.execute(step)
                    self.strategy.post_execute(system, step)
                    out["rebuilt"] += 1
                    nodes.append((system, trace + (step,), si))
            for system, node_trace, si in nodes:
                self.remember(node_trace, system)
                enabled = searcher._enabled(system, self.strategy, stats_sink)
                if not enabled:
                    out["quiescent"] += 1
                    self._check(
                        "check_quiescent", system, gi, si, None, out)
                    if config.stop_at_first_violation and out["violations"]:
                        return self._finish(out, stats_sink, parked, task_id)
                    continue
                if (config.max_depth is not None
                        and len(node_trace) >= config.max_depth):
                    continue
                kids = []
                for transition in enabled:
                    child = system.clone()
                    try:
                        child.execute(transition)
                        self.strategy.post_execute(child, transition)
                    except Exception as exc:
                        # Mirror of the serial loop's containment: a model-
                        # handler exception becomes a ModelError violation
                        # tuple and the crashed child is discarded.  Engine
                        # errors (NiceError: replay divergence, transition
                        # bugs) still escape as WorkerError — fail_fast
                        # additionally forwards model exceptions there.
                        if isinstance(exc, NiceError) or config.fail_fast:
                            raise
                        out["transitions"] += 1
                        out["violations"].append(
                            (MODEL_ERROR_PROPERTY,
                             f"{type(exc).__name__}: {exc}", "",
                             gi, si, transition, traceback.format_exc())
                        )
                        if config.stop_at_first_violation:
                            return self._finish(out, stats_sink, parked,
                                                task_id)
                        continue
                    out["transitions"] += 1
                    self._check("check", child, gi, si, transition, out)
                    if config.stop_at_first_violation and out["violations"]:
                        return self._finish(out, stats_sink, parked, task_id)
                    # The digest feeds the master's explored-set dedup;
                    # without state matching it would be discarded (the
                    # serial loop skips hashing there too).
                    digest = (child.state_hash() if config.state_matching
                              else None)
                    if summary is not None and digest is not None and (
                            digest in shipped
                            or summary.probably_contains(digest)):
                        parked.append(transition)
                        kids.append((None, digest))
                    else:
                        if summary is not None and digest is not None:
                            shipped.add(digest)
                            # Seed the local summary too: by the time a
                            # later task's result merges, this worker's
                            # earlier results have merged first (results
                            # are FIFO per worker), so the digest is in
                            # the store — and if a requeue broke that
                            # order, the stub verification walk catches
                            # it and hydrates.  Either way exact; this
                            # just closes the broadcast staleness window
                            # for same-worker resends.
                            summary.add(digest)
                        kids.append((transition, digest))
                out["children"].append((gi, si, kids))
        return self._finish(out, stats_sink, parked, task_id)

    def _finish(self, out, stats_sink, parked=None, task_id=None) -> dict:
        out["discover_packet_runs"] = stats_sink.discover_packet_runs
        out["discover_stats_runs"] = stats_sink.discover_stats_runs
        after = self.initial._hash_stats.snapshot()
        out["hash_stats"] = tuple(
            now - before for now, before in zip(after, self._hash_before)
        )
        if parked:
            # What the stubs kept off the wire: the parked transitions'
            # pickled size (each stub still ships its digest).  Parked in
            # emission order, so stub ordinal == list index — including
            # on the early-return paths above, where any not-yet-visible
            # stubs of a half-expanded node sit strictly after every
            # visible one.
            out["prefilter_stubs"] = len(parked)
            out["prefilter_bytes_saved"] = len(
                pickle.dumps(parked, protocol=pickle.HIGHEST_PROTOCOL))
            if task_id is not None:
                self.park(task_id, parked)
        if self.summary is not None:
            # The v4 result encoding rides with the pre-filter: digests
            # move out of the kid tuples into one packed blob.  Without a
            # summary (--no-worker-bloom, quarantine sandboxes) results
            # keep the v3 inline layout.
            self._compact_digests(out)
        # Measured (not estimated) children payload — the per-child part
        # of the result, the bytes the pre-filter exists to shrink (the
        # rest of ``out`` is a fixed-size stats envelope independent of
        # how many children shipped).  The packed digest blob is part of
        # that payload, so it is counted too; the master adds any
        # hydration-fetched bytes on top.  The benchmark's bytes-shipped
        # assertion and SearchStats.result_payload_bytes both read this.
        out["result_bytes"] = len(pickle.dumps(
            (out["children"], out.get("kid_digests")),
            protocol=pickle.HIGHEST_PROTOCOL))
        return out

    # ------------------------------------------------------------------
    # Dedup pre-filter (protocol v4)
    # ------------------------------------------------------------------

    #: Parked-task cache bound, in tasks.  The scheduler keeps at most
    #: PER_WORKER_INFLIGHT (2) tasks outstanding per worker, so 16 is
    #: slack for requeue/hydration races, not a working-set knob; an
    #: eviction is answered with ``ChildData(missing=True)`` and costs a
    #: task re-expansion, never a lost state.
    MAX_PARKED = 16

    def apply_summary(self, message: BloomSummary) -> None:
        """Install a broadcast summary delta, resizing if the shape
        changed (it only would across a resume with different knobs)."""
        summary = self.summary
        if (summary is None or summary.shards != message.shards
                or summary.budget != message.bits):
            summary = DedupSummary(message.bits, message.shards)
            self.summary = summary
        summary.apply(message.deltas)

    @staticmethod
    def _compact_digests(out) -> None:
        """Move every kid digest out of its ``(transition, digest)``
        tuple into one packed blob (``out["kid_digests"]``, blob order ==
        kid order): a pickled digest string costs ~40 B per kid while its
        packed record is the raw width (16 B for the hex digests
        ``state_hash`` emits) — for a digest-only stub that difference is
        most of its wire cost.  Packing only happens when every digest
        round-trips losslessly at one uniform width and encoding;
        anything else ships the digests inline, which is always
        correct.  Compacted kid slots are ``(transition, None)`` for a
        full child and a bare ``None`` for a stub (one pickle byte
        instead of an empty pair)."""
        width = encoding = None
        blob = bytearray()
        for _, _, kids in out["children"]:
            for _, digest in kids:
                record = kind = None
                try:
                    packed = bytes.fromhex(digest)
                    if packed and packed.hex() == digest:
                        record, kind = packed, "hex"
                except (ValueError, TypeError):
                    pass
                if record is None:
                    try:
                        record, kind = digest.encode("ascii"), "ascii"
                    except (AttributeError, UnicodeEncodeError):
                        return
                if not record:
                    return
                if width is None:
                    width, encoding = len(record), kind
                elif len(record) != width or kind != encoding:
                    return
                blob += record
        if width is None:
            return
        out["kid_digests"] = (encoding, width, bytes(blob))
        for _, _, kids in out["children"]:
            for j, (transition, _) in enumerate(kids):
                kids[j] = None if transition is None else (transition, None)

    def park(self, task_id, transitions) -> None:
        self.parked[task_id] = transitions
        while len(self.parked) > self.MAX_PARKED:
            self.parked.popitem(last=False)

    def fetch_children(self, task_id, ordinals):
        """The parked transitions for these stub ordinals, keyed by
        ordinal — or None when the task left the bounded cache."""
        held = self.parked.pop(task_id, None)
        if held is None:
            return None
        try:
            return {ordinal: held[ordinal] for ordinal in ordinals}
        except IndexError:
            return None

    def _check(self, method, system, gi, si, transition, out) -> None:
        """Run every property, appending violations as picklable tuples."""
        for prop in self.properties:
            try:
                if method == "check":
                    prop.check(system, transition)
                else:
                    prop.check_quiescent(system)
            except PropertyViolation as violation:
                out["violations"].append(
                    (violation.property_name, violation.message,
                     system.state_hash(), gi, si, transition)
                )

    # ------------------------------------------------------------------
    # Memory watchdog
    # ------------------------------------------------------------------

    def should_recycle(self, worker_id: int) -> bool:
        """Memory watchdog (``worker_memory_limit``), called between tasks.

        Over the limit, shed the replay cache first — it is the one
        unbounded-value structure a worker owns, and losing it only costs
        restoration replays.  Still over after a collection, ask to be
        recycled: the caller returns, the channel EOFs, and the master's
        respawn path replaces the process.  Checked *after* a result is
        sent, so even a worker whose base RSS exceeds the limit makes
        forward progress (one task per incarnation)."""
        limit = self.config.worker_memory_limit
        if not limit:
            return False
        rss = _rss_bytes()
        if rss is None or rss <= limit:
            return False
        import sys

        print(f"search worker {worker_id}: rss {rss} B over"
              f" worker_memory_limit {limit} B; shedding replay cache"
              f" ({len(self.cache)} entries)", file=sys.stderr, flush=True)
        self.cache.clear()
        gc.collect()
        rss = _rss_bytes()
        if rss is None or rss <= limit:
            return False
        print(f"search worker {worker_id}: rss {rss} B still over limit;"
              f" recycling", file=sys.stderr, flush=True)
        return True


def _rss_bytes() -> int | None:
    """Resident set size of this process, or None if unmeasurable."""
    try:
        with open("/proc/self/statm") as statm:
            pages = int(statm.read().split()[1])
        return pages * os.sysconf("SC_PAGESIZE")
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        return kb * 1024  # high-water mark: conservative fallback
    except Exception:  # noqa: BLE001 - no resource module on this platform
        return None


class _StatsSink:
    """Just the counters ``Searcher._enabled`` increments."""

    def __init__(self):
        self.discover_packet_runs = 0
        self.discover_stats_runs = 0


# ----------------------------------------------------------------------
# Heartbeats
# ----------------------------------------------------------------------

class _HeartbeatThread:
    """Daemon thread beating :class:`~repro.mc.wire.Heartbeat` every
    ``interval`` seconds through ``send`` (which must serialize against the
    main loop's result sends).  Because the beat runs on its own thread, a
    handler spinning in a pure-Python loop still beats (the GIL preempts) —
    the beat proves the *process* and its channel are alive, while the
    task deadline catches the stuck task.  It also keeps the master's
    timed ``recv`` loop fed, so deadline checks fire on schedule."""

    def __init__(self, send, worker_id: int, interval: float):
        self._send = send
        self._worker_id = worker_id
        self._interval = interval
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"heartbeat-{worker_id}", daemon=True)
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send(Heartbeat(self._worker_id))
            except Exception:  # noqa: BLE001 - channel gone: search is over
                return

    def stop(self) -> None:
        self._stop.set()


def _start_heartbeat(send, worker_id: int, interval: float):
    if not interval or interval <= 0:
        return None
    return _HeartbeatThread(send, worker_id, interval)


# ----------------------------------------------------------------------
# Process entry points
# ----------------------------------------------------------------------

def local_worker_main(worker_id: int, task_queue, result_conn, spec) -> None:
    """Entry point of a local-transport worker process.

    ``spec`` is None under ``fork`` (the searcher is inherited via
    :data:`_INHERITED_SEARCHER`); under ``spawn`` it is the pickled
    :class:`~repro.mc.wire.ScenarioSpec` to rebuild from.  ``result_conn``
    is this worker's private result pipe — per-worker channels are what
    lets the master survive a worker killed mid-write (see
    ``repro/mc/transport/local.py``).
    """
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            result_conn.send(message)

    try:
        searcher = (_INHERITED_SEARCHER if spec is None
                    else searcher_from_spec(spec))
        runtime = WorkerRuntime(searcher)
    except Exception:  # noqa: BLE001 - report startup failure to the master
        result_conn.send(WorkerError(None, worker_id, traceback.format_exc()))
        return
    beat = _start_heartbeat(send, worker_id,
                            runtime.config.heartbeat_interval)
    try:
        while True:
            message = task_queue.get()
            if message is None or isinstance(message, Shutdown):
                return
            if isinstance(message, BloomSummary):
                # Standalone summary push (the local transports normally
                # piggy-back on ExpandTask instead; accepted for parity
                # with the socket loop).
                runtime.apply_summary(message)
                continue
            if isinstance(message, FetchChildren):
                fetched = runtime.fetch_children(message.task_id,
                                                 message.ordinals)
                reply = ChildData(message.task_id, worker_id,
                                  fetched or {}, missing=fetched is None)
            else:
                if message.summary is not None:
                    runtime.apply_summary(message.summary)
                try:
                    out = runtime.expand(message.groups,
                                         task_id=message.task_id)
                    reply = TaskResult(message.task_id, worker_id, out)
                except Exception:  # noqa: BLE001 - surface the traceback
                    reply = WorkerError(message.task_id, worker_id,
                                        traceback.format_exc())
            try:
                send(reply)
            except OSError:
                # The master stopped reading (early stop, or it gave up on
                # the pool): its search is over, so are we.
                return
            if runtime.should_recycle(worker_id):
                # Exit cleanly; EOF surfaces as WorkerGone and the respawn
                # path replaces us with a fresh-memory sibling.
                return
    finally:
        if beat is not None:
            beat.stop()


#: Seconds a connecting worker waits for the master's InitWorker reply —
#: pointed at a non-master port (an HTTP server, say) it must error out,
#: not hang forever on a frame header that never arrives.
INIT_TIMEOUT = 30.0


def socket_worker_loop(sock) -> None:
    """Serve one master over a connected socket until Shutdown/EOF."""
    import socket as socket_mod

    sock.settimeout(INIT_TIMEOUT)
    send_msg(sock, Hello(host=socket_mod.gethostname(), pid=os.getpid()))
    init = recv_msg(sock)
    if not isinstance(init, InitWorker):
        raise ConnectionError(f"expected InitWorker, got {init!r}")
    sock.settimeout(None)
    worker_id = init.worker_id
    try:
        runtime = WorkerRuntime(searcher_from_spec(init.spec))
    except Exception:  # noqa: BLE001 - report startup failure to the master
        send_msg(sock, WorkerError(None, worker_id, traceback.format_exc()))
        return
    send_lock = threading.Lock()

    def send(message) -> None:
        with send_lock:
            send_msg(sock, message)

    beat = _start_heartbeat(send, worker_id,
                            runtime.config.heartbeat_interval)
    try:
        while True:
            try:
                message = recv_msg(sock)
            except (OSError, ConnectionError):
                return  # master hung up (early stop) — a clean shutdown
            if message is None or isinstance(message, Shutdown):
                return
            if isinstance(message, BloomSummary):
                # Socket masters push summary deltas standalone, FIFO
                # before the dispatch they cover.
                runtime.apply_summary(message)
                continue
            if isinstance(message, FetchChildren):
                fetched = runtime.fetch_children(message.task_id,
                                                 message.ordinals)
                reply = ChildData(message.task_id, worker_id,
                                  fetched or {}, missing=fetched is None)
            elif isinstance(message, ExpandTask):
                if message.summary is not None:
                    runtime.apply_summary(message.summary)
                try:
                    out = runtime.expand(message.groups,
                                         task_id=message.task_id)
                    reply = TaskResult(message.task_id, worker_id, out)
                except Exception:  # noqa: BLE001 - surface the traceback
                    reply = WorkerError(message.task_id, worker_id,
                                        traceback.format_exc())
            else:
                raise ConnectionError(f"unexpected message {message!r}")
            try:
                send(reply)
            except (OSError, ConnectionError):
                # The master stopped reading mid-task (first violation
                # found, transition cap hit): its search is over, so are
                # we.
                return
            if runtime.should_recycle(worker_id):
                # Close the connection; the master sees EOF -> WorkerGone
                # and respawns (or elastically re-admits) a replacement.
                return
    finally:
        if beat is not None:
            beat.stop()


# ----------------------------------------------------------------------
# Quarantine sandbox
# ----------------------------------------------------------------------

def quarantine_worker_main(result_conn, spec, groups, limits: dict) -> None:
    """One-shot sandboxed expansion of a poison sibling group.

    Runs in a dedicated subprocess with rlimits applied (CPU to contain
    hangs, address space to contain memory bombs, no core dumps), expands
    ``groups`` exactly as a pool worker would — so a success merges with
    bit-identity to serial — and sends a single
    :class:`~repro.mc.wire.TaskResult` or :class:`~repro.mc.wire.WorkerError`
    back.  ``spec`` is None when the searcher is inherited by fork."""
    # Advertise the sandbox to the model under test: the hostile test apps
    # (repro/apps/hostile.py) read this to behave on the isolated retry,
    # modelling a task that was poisonous to the fleet but is salvageable.
    os.environ["NICE_QUARANTINE"] = "1"
    _apply_rlimits(limits)
    try:
        searcher = (_INHERITED_SEARCHER if spec is None
                    else searcher_from_spec(spec))
        runtime = WorkerRuntime(searcher)
        out = runtime.expand(groups)
        reply = TaskResult(0, -1, out)
    except Exception:  # noqa: BLE001 - the whole point is to catch anything
        reply = WorkerError(0, -1, traceback.format_exc())
    try:
        result_conn.send(reply)
    except OSError:
        pass


def _apply_rlimits(limits: dict) -> None:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX platform
        return
    for key, which in (("cpu", "RLIMIT_CPU"),
                       ("address_space", "RLIMIT_AS")):
        value = limits.get(key)
        if not value:
            continue
        try:
            resource.setrlimit(getattr(resource, which),
                               (int(value), int(value)))
        except (OSError, ValueError):  # pragma: no cover - host forbids it
            pass
    try:
        resource.setrlimit(resource.RLIMIT_CORE, (0, 0))
    except (OSError, ValueError):  # pragma: no cover
        pass
