"""Wire format for the parallel search (DESIGN.md, "Scheduler and
transports").

Everything a worker exchanges with the scheduler is defined here, so the
``fork``/``spawn`` local pools and the TCP socket transport speak one
protocol:

* :class:`ScenarioSpec` — a *by-name* description of a scenario (registry
  name, builder keyword arguments, final :class:`~repro.config.NiceConfig`)
  that a worker in a fresh interpreter resolves through the scenario
  registry (``repro/scenarios.py``) instead of inheriting unpicklable
  closures from a forked parent;
* task/result messages — :class:`Hello`, :class:`InitWorker`,
  :class:`ExpandTask`, :class:`TaskResult`, :class:`WorkerError`,
  :class:`Shutdown`, plus the v4 dedup pre-filter trio:
  :class:`BloomSummary` (explored-set summary broadcast),
  :class:`FetchChildren` / :class:`ChildData` (stub hydration);
* pool-membership events — :class:`WorkerGone` and :class:`WorkerJoined`.
  Transports translate their own failure signals (a dead child process,
  a socket EOF, a connection reset) into :class:`WorkerGone` so the
  scheduler sees one churn vocabulary regardless of transport; an elastic
  socket worker connecting mid-search surfaces as :class:`WorkerJoined`.
  The scheduler reacts by requeueing the dead worker's in-flight sibling
  groups (or feeding the joiner) — see DESIGN.md, "Fault tolerance and
  elasticity";
* length-prefixed pickle framing (:func:`send_msg` / :func:`recv_msg`) for
  the socket transport.  Pickle is the serializer because tasks and results
  are trees of pure-data model objects (:class:`~repro.mc.transitions.Transition`,
  packets, stats dicts) already required to be picklable by the spawn pool;
  the trust model is the same as ``multiprocessing``'s — workers are
  processes *you* started on hosts you control, not an open service.
"""

from __future__ import annotations

import pickle
import struct
from dataclasses import dataclass, field

from repro.config import NiceConfig

#: Bump when the task/result layout changes; Hello carries it so a stale
#: remote worker fails fast instead of mis-decoding tasks.
#: v2: Hello carries host/pid (elastic joins + fault-injection hooks).
#: v3: workers emit :class:`Heartbeat` liveness beats on the result channel.
#: v4: worker-side Bloom dedup pre-filter — :class:`BloomSummary`
#:     broadcasts (piggy-backed on :class:`ExpandTask` for local pipes,
#:     pushed standalone on the socket transport), digest-only child
#:     stubs in results, and the :class:`FetchChildren` /
#:     :class:`ChildData` hydration round-trip for Bloom false positives.
PROTOCOL_VERSION = 4

_HEADER = struct.Struct("!I")


# ----------------------------------------------------------------------
# Scenario specs: rebuild a System by name in a fresh interpreter
# ----------------------------------------------------------------------

@dataclass
class ScenarioSpec:
    """A scenario by registry name + builder kwargs + final config.

    ``kwargs`` are the keyword arguments the builder was originally called
    with; ``config`` is the scenario's *final* config (builders adjust
    bounds), applied verbatim after rebuilding so master and workers agree
    on every knob.
    """

    name: str
    kwargs: dict = field(default_factory=dict)
    config: NiceConfig = field(default_factory=NiceConfig)

    def build(self):
        """Resolve the registry and rebuild the scenario."""
        from repro import scenarios  # deferred: scenarios imports this module

        builder = scenarios.REGISTRY.get(self.name)
        if builder is None:
            raise KeyError(
                f"scenario {self.name!r} is not in the registry; known:"
                f" {sorted(scenarios.REGISTRY)}"
            )
        scenario = builder(**self.kwargs)
        scenario.config = self.config
        scenario.spec = self
        return scenario


def spec_is_portable(spec: ScenarioSpec | None) -> bool:
    """Whether ``spec`` can cross a process boundary: present and
    picklable (a builder kwarg that is a lambda/closure is not)."""
    if spec is None:
        return False
    try:
        pickle.dumps(spec)
    except Exception:  # noqa: BLE001 - any pickling failure disqualifies
        return False
    return True


def searcher_from_spec(spec: ScenarioSpec):
    """A *serial* :class:`~repro.mc.search.Searcher` for worker-side
    expansion — workers never recurse into the parallel engine."""
    from repro.mc.search import Searcher
    from repro.mc.strategies import make_strategy

    scenario = spec.build()
    config = scenario.config
    discoverer = None
    if config.use_symbolic_execution:
        from repro.sym.engine import ConcolicEngine

        discoverer = ConcolicEngine(max_paths=config.max_paths)
    return Searcher(
        scenario.system_factory, scenario.properties, config,
        strategy=make_strategy(config, scenario.app_factory()),
        discoverer=discoverer,
    )


# ----------------------------------------------------------------------
# Messages
# ----------------------------------------------------------------------

@dataclass
class Hello:
    """Worker -> master, first message after connecting.

    ``host``/``pid`` identify the worker process: they are logged when an
    elastic worker joins a live run, and ``pid`` is what lets the master
    kill a co-located worker (the fault-injection hook
    ``Transport.kill_worker`` used by the chaos tests).
    """

    protocol: int = PROTOCOL_VERSION
    host: str = ""
    pid: int = 0


@dataclass
class InitWorker:
    """Master -> worker: build your scenario and await tasks."""

    spec: ScenarioSpec
    worker_id: int = 0


@dataclass
class BloomSummary:
    """Master -> worker: a dirty-shard delta of the explored set's
    dedup Bloom summary (protocol v4; DESIGN.md, "Distributed dedup").

    ``deltas`` carries ``(shard, offset, chunk)`` bitset slices for
    shards that grew since this worker's last sync (a fresh or elastic
    worker gets every shard), capped per message at the scheduler's
    SUMMARY_BUDGET so no transport write can outgrow a pipe buffer and
    block the master against a dead worker; a ``{shard: bitset}``
    mapping of whole bitsets is also accepted
    (:meth:`~repro.mc.store.DedupSummary.apply` handles both).
    ``shards``/``bits`` (the configured *total* bit budget) let the
    worker size its :class:`~repro.mc.store.DedupSummary` identically
    to the master's.  Summaries are advisory and may be stale: a
    missing bit only makes the worker ship a child in full (the master
    dedups as always), a stale-set bit only costs a stub that the
    master then verifies — never a lost state.
    """

    shards: int
    bits: int
    deltas: tuple | dict


@dataclass
class ExpandTask:
    """Master -> worker: expand these sibling groups.

    ``groups`` is a list of ``(parent trace, [transition, ...] | None)``
    pairs — ``None`` marks the initial-state group.  ``summary`` is an
    optional piggy-backed :class:`BloomSummary` delta (the local pipe
    transports ride the dispatch; the socket transport pushes summaries
    as standalone messages instead).
    """

    task_id: int
    groups: list
    summary: BloomSummary | None = None


@dataclass
class TaskResult:
    """Worker -> master: the expansion of one :class:`ExpandTask`.

    Under protocol v4, children whose digest hit the worker's Bloom
    summary ship as digest-only *stubs* — ``(None, digest)`` kid
    entries — while the withheld transitions stay parked worker-side
    (bounded cache) until the master either confirms the duplicate
    against the authoritative store or hydrates the rare false positive
    via :class:`FetchChildren`.
    """

    task_id: int
    worker_id: int
    out: dict


@dataclass
class FetchChildren:
    """Master -> worker: send the parked transitions for these stub
    ordinals of ``task_id`` (a stub's ordinal is its 0-based position
    among the task's stubs, in result order).  Only sent for Bloom
    false positives — stubs the authoritative store does not hold."""

    task_id: int
    ordinals: list


@dataclass
class ChildData:
    """Worker -> master: the :class:`FetchChildren` reply.

    ``children`` maps stub ordinal -> the parked transition.  ``missing``
    is True when the worker no longer holds the task's parked children
    (bounded-cache eviction); the master then requeues the whole task —
    re-expansion plus master-side dedup keeps the result bit-identical.
    """

    task_id: int
    worker_id: int
    children: dict
    missing: bool = False


@dataclass
class WorkerError:
    """Worker -> master: the task raised; carries the formatted traceback."""

    task_id: int | None
    worker_id: int
    error: str


@dataclass
class Shutdown:
    """Master -> worker: exit cleanly."""


@dataclass
class Heartbeat:
    """Worker -> master: periodic liveness beat (protocol v3).

    Sent by a daemon thread every ``heartbeat_interval`` seconds on the
    same channel as results.  A beat proves the worker *process* is alive
    and its channel healthy — it does not prove the current task is making
    progress (a handler spinning in a pure-Python loop still lets the beat
    thread run), which is why hang detection keys off the per-task
    deadline, with beat staleness reported as corroborating evidence."""

    worker_id: int


@dataclass
class WorkerGone:
    """Transport -> scheduler: a worker died (process exit, socket EOF,
    reset, or startup failure).  Not fatal by itself — the scheduler
    requeues the worker's in-flight groups and applies the
    ``min_workers``/``max_worker_failures`` policy."""

    worker_id: int
    reason: str


@dataclass
class WorkerJoined:
    """Transport -> scheduler: an elastic worker connected mid-search and
    completed the Hello/Init handshake; it is ready for tasks."""

    worker_id: int
    host: str = ""
    pid: int = 0


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------

def send_msg(sock, message) -> None:
    """Write one length-prefixed pickled message to a socket."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_msg(sock):
    """Read one framed message; returns None on clean EOF at a frame
    boundary."""
    header = _recv_exact(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock, count: int, allow_eof: bool = False):
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            if allow_eof and remaining == count:
                return None
            raise ConnectionError(
                f"socket closed mid-frame ({count - remaining}/{count} bytes)")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)
