"""Transition descriptors.

A :class:`Transition` names one atomic step of the system: which component
acts and with what argument.  Descriptors are *pure data* — hashable,
comparable, deep-copyable — so a trace (a list of descriptors) replayed from
the initial state deterministically reconstructs any state (the paper's
memory-saving checkpoint strategy, Section 6).

Kinds:

========================  ====================================================
``process_pkt``           switch processes the head packet of every channel
``process_of``            switch applies one OpenFlow message
``ctrl_handle``           controller dispatches one message from a switch
``ctrl_stats``            controller consumes a stats reply, with
                          symbolically-discovered representative values
``ctrl_event``            an external controller event (e.g. an operator
                          policy change) fires
``host_send``             host injects a packet (scripted, queued reply, or
                          symbolically discovered)
``host_recv``             host consumes one packet from its inbox
``host_move``             mobile host moves to its next location
``expire_rule``           a rule with a hard timeout expires
``channel_fault``         fault-model operation on a packet channel
========================  ====================================================
"""

from __future__ import annotations

from repro.mc.canonical import canonicalize

PROCESS_PKT = "process_pkt"
PROCESS_OF = "process_of"
CTRL_HANDLE = "ctrl_handle"
CTRL_STATS = "ctrl_stats"
CTRL_EVENT = "ctrl_event"
HOST_SEND = "host_send"
HOST_RECV = "host_recv"
HOST_MOVE = "host_move"
EXPIRE_RULE = "expire_rule"
CHANNEL_FAULT = "channel_fault"


class Transition:
    """One enabled step: ``(kind, actor, arg)``.

    ``actor`` is a switch or host name; ``arg`` depends on the kind (a send
    descriptor, a move target, a fault op...).  ``payload`` optionally
    carries a non-hashable companion object (e.g. the concrete
    :class:`~repro.openflow.packet.Packet` of a symbolic send or a discovered
    stats dict); equality and hashing use only the canonical key, with the
    payload's canonical form folded into ``arg`` by the constructor caller.
    """

    __slots__ = ("kind", "actor", "arg", "payload")

    def __init__(self, kind: str, actor: str, arg=None, payload=None):
        self.kind = kind
        self.actor = actor
        self.arg = arg
        self.payload = payload

    def key(self) -> tuple:
        return (self.kind, self.actor, canonicalize(self.arg))

    def __eq__(self, other):
        if not isinstance(other, Transition):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def canonical(self) -> tuple:
        return self.key()

    def __repr__(self):
        if self.arg is None:
            return f"{self.kind}({self.actor})"
        return f"{self.kind}({self.actor}, {self.arg!r})"
