"""The state-space search algorithm of Figure 5.

The searcher extends the basic model-checking loop with the two "discover"
mechanisms: on reaching a state whose *controller* state has not been seen
by a given client, it concolically executes the ``packet_in`` handler to
find the relevant packets for that client (one per handler code path) and
enables a ``send`` transition for each; likewise, a pending statistics reply
triggers concolic execution of the statistics handler to find representative
stats values (``discover_stats``).

Implementation note (documented in DESIGN.md): discovery runs *eagerly* when
a state is expanded rather than as an explicit stack transition.  The two
formulations explore the same reachable states — a discover transition
changes no system state, so as a stack entry it would only introduce
self-loop bookkeeping — and the eager form keeps the explored-state set free
of duplicate entries.  Discovery results are cached by (client, controller
state hash), exactly the ``client.packets[state(ctrl)]`` map of Figure 5.

Checkpointing is configurable (DESIGN.md, "Search engine"): ``deepcopy``
keeps a full :class:`~repro.mc.system.System` copy per frontier entry (the
seed behavior), while ``trace`` stores only the transition path and restores
a popped node by deterministically replaying it from the initial state — the
same mechanism the paper uses to reproduce violations (Section 6), and the
representation cheap enough to ship between the worker processes of
:class:`~repro.mc.parallel.ParallelSearcher`.  State hashing is memoized per
component (see ``NiceConfig.hash_memoization``), so expanding a state only
re-canonicalizes the switches/hosts the transition actually touched.

The explored set lives behind a :class:`~repro.mc.store.StateStore`
(``NiceConfig.store`` — in-memory by default, or sharded with disk
spill), and with ``checkpoint_dir`` set the loop snapshots store +
frontier + stats between expansions (and on SIGTERM) so a killed search
resumes mid-flight via ``nice resume``, bit-identical to an
uninterrupted run — DESIGN.md, "State store and restartability".
"""

from __future__ import annotations

import random
import time
import traceback
from collections import deque

from repro.config import (
    CHECKPOINT_TRACE,
    NiceConfig,
    ORDER_BFS,
    ORDER_DFS,
    ORDER_RANDOM,
)
from repro.errors import NiceError, PropertyViolation, SearchError
from repro.mc import store as store_mod
from repro.mc import transitions as tk
from repro.mc.replay import replay_from
from repro.mc.strategies import Strategy, make_strategy
from repro.mc.system import System
from repro.mc.transitions import Transition
from repro.openflow.messages import StatsReply


class Violation:
    """One property violation plus the trace that deterministically
    reproduces it from the initial state."""

    def __init__(self, property_name: str, message: str,
                 trace: tuple[Transition, ...], state_hash: str,
                 transitions_at_detection: int):
        self.property_name = property_name
        self.message = message
        self.trace = trace
        self.state_hash = state_hash
        self.transitions_at_detection = transitions_at_detection

    def __repr__(self):
        return (f"Violation({self.property_name}: {self.message!r},"
                f" trace length {len(self.trace)})")


#: Property name under which contained model exceptions are recorded.
MODEL_ERROR_PROPERTY = "ModelError"


class ModelError(Violation):
    """An exception that escaped a controller/host handler, recorded as a
    replayable counterexample (DESIGN.md, "Failure containment").

    The model under test is *expected* to be buggy — that is the point of
    model checking it — so an unhandled exception in its handlers is
    evidence about the model, not about the engine.  The trace replays the
    crash deterministically (``nice.replay`` re-raises the original
    exception at the final transition); ``details`` carries the formatted
    traceback from wherever the transition actually executed.  Engine
    errors (:class:`~repro.errors.NiceError`) are never contained, and
    ``fail_fast=True`` restores abort-on-exception for model code too."""

    def __init__(self, property_name, message, trace, state_hash,
                 transitions_at_detection, details: str = ""):
        super().__init__(property_name, message, trace, state_hash,
                         transitions_at_detection)
        self.details = details

    def __repr__(self):
        return (f"ModelError({self.message!r},"
                f" trace length {len(self.trace)})")


class QuarantinedTask:
    """Structured diagnostic for a poison sibling group the search gave up
    executing (DESIGN.md, "Failure containment").

    Recorded when a group implicated in ``max_task_retries`` worker deaths
    *also* fails in the quarantine sandbox (or quarantine is disabled):
    the search degrades gracefully — every other branch of the state space
    is still explored — and this object preserves what was abandoned:
    the parent ``trace``, the sibling transitions (``siblings`` is None
    for an initial-state group), how many ``attempts`` were made, and the
    ``reason`` the last one failed (signal name, exit code, or timeout)."""

    def __init__(self, trace, siblings, attempts: int, reason: str):
        self.trace = trace
        self.siblings = siblings
        self.attempts = attempts
        self.reason = reason

    def __repr__(self):
        fanout = len(self.siblings) if self.siblings is not None else 1
        return (f"QuarantinedTask(trace length {len(self.trace)},"
                f" {fanout} sibling(s), {self.attempts} attempt(s):"
                f" {self.reason})")


class SearchStats:
    """Everything a search run measured.

    ``engine`` describes how the search actually ran — ``"serial"``, or
    ``"<transport>-<start method>"`` / ``"socket"`` for the parallel
    scheduler — so a caller (and ``nice run``) can see whether a
    ``workers=N`` request was honored.  The restoration counters
    (``cache_hits`` / ``cache_misses`` / ``replayed_transitions`` /
    ``rebuilt_transitions``) and the routing counters (``affinity_hits`` /
    ``affinity_misses``) are zero for serial runs; they measure work the
    serial engine does not do and are never counted in
    ``transitions_executed``.

    The churn counters (PR 4, DESIGN.md "Fault tolerance and
    elasticity") are likewise parallel-only: ``worker_failures`` counts
    workers that died mid-search, ``tasks_retried`` the in-flight tasks
    requeued because their worker died, ``groups_reassigned`` the sibling
    groups that lost their affinity owner (requeued in-flight work plus
    orphaned affinity queues), and ``elastic_joins`` the workers that
    connected mid-search.  ``worker_tasks`` maps worker id -> tasks
    merged from that worker; its values sum to every task the run merged,
    so per-worker shares (and whether an elastic joiner measurably
    received work) are auditable after the fact.
    """

    def __init__(self):
        self.violations: list[Violation] = []
        self.transitions_executed = 0
        self.unique_states = 0
        self.revisited_states = 0
        self.quiescent_states = 0
        self.discover_packet_runs = 0
        self.discover_stats_runs = 0
        self.wall_time = 0.0
        self.terminated = "exhausted"
        #: How the search ran: "serial", "local-fork", "local-spawn",
        #: "socket".
        self.engine = "serial"
        #: Worker processes actually used (0 for serial).
        self.workers = 0
        #: Per-worker replay-cache counters, summed across workers.
        self.cache_hits = 0
        self.cache_misses = 0
        #: Restoration overhead: transitions re-executed to restore parent
        #: states, and to rebuild siblings from a restored parent.
        self.replayed_transitions = 0
        self.rebuilt_transitions = 0
        #: Scheduler routing: groups that ran on the worker whose cache
        #: holds their parent trace vs. groups routed elsewhere.
        self.affinity_hits = 0
        self.affinity_misses = 0
        #: Worker churn (see class docstring).
        self.worker_failures = 0
        self.tasks_retried = 0
        self.groups_reassigned = 0
        self.elastic_joins = 0
        #: worker id -> tasks merged from that worker.
        self.worker_tasks: dict[int, int] = {}
        #: Per-state hot path (DESIGN.md): component-digest cache hits and
        #: recomputes, bytes of canonical rendering actually hashed, and
        #: components lazily copied by copy-on-write clones.  Summed across
        #: workers for parallel runs.
        self.hash_hits = 0
        self.hash_misses = 0
        self.bytes_hashed = 0
        self.cow_copied = 0
        #: Explored-set state store (DESIGN.md, "State store and
        #: restartability"): which store served the run, lookups answered
        #: from memory, lookups that read a spilled shard file, and
        #: digests evicted from the resident set.
        self.store = "memory"
        self.store_hits = 0
        self.store_spill_reads = 0
        self.store_evictions = 0
        #: Lookups the sharded store's per-shard Bloom filters answered
        #: (definite negatives that skipped the index/disk probe).
        self.store_bloom_negatives = 0
        #: Worker-side Bloom dedup pre-filter (DESIGN.md, "Distributed
        #: dedup"): children shipped as digest-only stubs instead of full
        #: transitions, stubs that turned out to be Bloom false positives
        #: (hydrated with a fetch round-trip), net result-payload bytes
        #: the stubs kept off the wire, and the pickled size of every
        #: merged task result's children payload — the per-child part of
        #: results, the benchmark's bytes-shipped measure.
        self.bloom_prefilter_drops = 0
        self.bloom_prefilter_fp = 0
        self.result_bytes_saved = 0
        self.result_payload_bytes = 0
        #: Master checkpointing: snapshots written (and the wall time they
        #: took), bytes actually written (hard-linked segments excluded —
        #: the incremental-snapshot savings), and — on a resumed run — the
        #: checkpoint the run started from.
        self.checkpoints_written = 0
        self.checkpoint_seconds = 0.0
        self.checkpoint_bytes_written = 0
        self.resumed_from: str | None = None
        #: Autoscaler (``respawn_workers``): replacements requested for
        #: dead workers.
        self.workers_respawned = 0
        #: Failure containment (DESIGN.md, "Failure containment").
        #: ``workers_hung`` counts workers declared hung via the per-task
        #: deadline; ``deadline_kills`` the kills that followed (they can
        #: differ if a kill fails); ``tasks_quarantined`` the poison groups
        #: sent to the sandbox; ``model_errors`` the handler exceptions
        #: contained as replayable counterexamples (serial and parallel).
        self.workers_hung = 0
        self.deadline_kills = 0
        self.tasks_quarantined = 0
        self.model_errors = 0
        #: Poison groups abandoned after the sandbox also failed.
        self.quarantined_tasks: list[QuarantinedTask] = []

    def add_hash_stats(self, snapshot: tuple[int, int, int, int]) -> None:
        """Fold one ``HashStats.snapshot()`` (or a delta) into the totals."""
        hits, misses, bytes_hashed, cow_copied = snapshot
        self.hash_hits += hits
        self.hash_misses += misses
        self.bytes_hashed += bytes_hashed
        self.cow_copied += cow_copied

    @property
    def found_violation(self) -> bool:
        return bool(self.violations)

    def summary(self) -> str:
        lines = [
            f"engine               : {self.engine}"
            + (f" ({self.workers} workers)" if self.workers else ""),
            f"transitions executed : {self.transitions_executed}",
            f"unique states        : {self.unique_states}",
            f"revisited states     : {self.revisited_states}",
            f"quiescent states     : {self.quiescent_states}",
            f"discover_packets runs: {self.discover_packet_runs}",
            f"discover_stats runs  : {self.discover_stats_runs}",
            f"hot path             : {self.hash_hits} digest hits /"
            f" {self.hash_misses} misses, {self.bytes_hashed} B hashed,"
            f" {self.cow_copied} CoW copies",
            f"wall time            : {self.wall_time:.2f}s",
            f"terminated           : {self.terminated}",
            f"violations           : {len(self.violations)}",
        ]
        if self.store != "memory":
            lines.insert(-1, (
                f"state store          : {self.store},"
                f" {self.store_hits} memory hit(s),"
                f" {self.store_spill_reads} spill read(s),"
                f" {self.store_evictions} eviction(s),"
                f" {self.store_bloom_negatives} bloom negative(s)"
            ))
        if self.resumed_from:
            lines.insert(-1, f"resumed from         : {self.resumed_from}")
        if self.checkpoints_written:
            lines.insert(-1, (
                f"checkpoints          : {self.checkpoints_written}"
                f" written ({self.checkpoint_seconds:.2f}s,"
                f" {self.checkpoint_bytes_written} B)"
            ))
        if self.workers:
            lines.insert(-1, (
                f"restoration          : {self.replayed_transitions} replayed"
                f" + {self.rebuilt_transitions} rebuilt"
                f" (cache {self.cache_hits} hits / {self.cache_misses} misses,"
                f" affinity {self.affinity_hits}/"
                f"{self.affinity_hits + self.affinity_misses})"
            ))
            if self.bloom_prefilter_drops or self.result_payload_bytes:
                lines.insert(-1, (
                    f"dedup pre-filter     : {self.bloom_prefilter_drops}"
                    f" stub(s), {self.bloom_prefilter_fp} false"
                    f" positive(s) hydrated,"
                    f" {self.result_bytes_saved} B saved"
                    f" ({self.result_payload_bytes} B shipped)"
                ))
            lines.insert(-1, (
                f"fault tolerance      : {self.worker_failures} worker"
                f" failure(s), {self.tasks_retried} task(s) retried,"
                f" {self.groups_reassigned} group(s) reassigned,"
                f" {self.elastic_joins} elastic join(s),"
                f" {self.workers_respawned} respawned"
            ))
            if self.workers_hung or self.tasks_quarantined:
                lines.insert(-1, (
                    f"containment          : {self.workers_hung} worker(s)"
                    f" hung ({self.deadline_kills} deadline kill(s)),"
                    f" {self.tasks_quarantined} task(s) quarantined,"
                    f" {len(self.quarantined_tasks)} abandoned"
                ))
        if self.model_errors:
            lines.insert(-1,
                         f"model errors         : {self.model_errors}"
                         f" handler exception(s) contained")
        for diagnostic in self.quarantined_tasks[:5]:
            lines.append(f"  - quarantined: {diagnostic!r}")
        for violation in self.violations[:5]:
            lines.append(f"  - {violation.property_name}: {violation.message}")
        return "\n".join(lines)

    def __repr__(self):
        return (f"SearchStats(transitions={self.transitions_executed},"
                f" unique={self.unique_states},"
                f" violations={len(self.violations)})")


#: Backwards-compatible alias — PR 1 shipped the class as ``SearchResult``.
SearchResult = SearchStats


class Searcher:
    """Figure 5's model-checking loop."""

    def __init__(self, system_factory, properties: list, config: NiceConfig,
                 strategy: Strategy | None = None, discoverer=None,
                 scenario_spec=None):
        """``system_factory`` builds and boots a fresh initial System;
        ``discoverer`` provides concolic discovery (None disables symbolic
        execution regardless of config); ``scenario_spec`` (a
        :class:`~repro.mc.wire.ScenarioSpec` or None) is the scenario's
        portable identity, stored into checkpoints so ``nice resume`` can
        rebuild the System by registry name."""
        self.system_factory = system_factory
        self.properties = list(properties)
        self.config = config
        self.discoverer = discoverer
        self.scenario_spec = scenario_spec
        #: A loaded :class:`~repro.mc.store.Checkpoint` to continue from
        #: (set by ``nice.resume``), or None for a fresh search.
        self._resume = None
        self._use_se = bool(config.use_symbolic_execution and discoverer)
        self._strategy = strategy
        #: client.packets map of Figure 5: (host, ctrl_hash) -> [Packet].
        self._packet_cache: dict[tuple[str, str], list] = {}
        #: discover_stats cache: (switch, ctrl_hash) -> [stats dict].
        self._stats_cache: dict[tuple[str, str], list] = {}
        self._rng = random.Random(config.seed)
        self._trace_checkpoints = config.checkpoint_mode == CHECKPOINT_TRACE
        #: Pristine initial state kept for trace-replay restoration.
        self._initial: System | None = None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SearchStats:
        result = SearchStats()
        resume = self._resume
        start = time.perf_counter()
        initial = self.system_factory()
        self._initial = initial
        strategy = self._strategy or make_strategy(self.config, initial.app)
        for prop in self.properties:
            prop.reset(initial)
        if resume is None:
            try:
                self._check_properties(initial, None, result, ())
            except _StopSearch:
                result.wall_time = time.perf_counter() - start
                result.add_hash_stats(initial._hash_stats.snapshot())
                return result

        explored = store_mod.create_store(self.config)
        # Frontier entries are (system | None, trace): in trace-checkpoint
        # mode the system slot is None and the node is restored by replay.
        # DFS pops the tail and BFS the head, both O(1) on a deque; the
        # random order needs positional pops, so it keeps a plain list.
        frontier_type = (list if self.config.search_order == ORDER_RANDOM
                         else deque)
        baseline = None
        if resume is not None:
            resume.restore_stats(result)
            # Preload the explored set (with the checkpoint's Bloom
            # summaries when compatible); when the checkpoint's record
            # layout matches the store's, its path becomes the baseline
            # the next snapshot hard-links unchanged segments from.
            baseline = store_mod.restore_store(explored, resume)
            if resume.rng_state is not None:
                self._rng.setstate(resume.rng_state)
            # Restored nodes carry no live system — they are rebuilt by
            # trace replay on pop, whatever the checkpoint_mode (the same
            # restoration path ``trace`` mode always uses).
            frontier = frontier_type(self._resume_nodes(resume.frontier))
        else:
            explored.add(initial.state_hash())
            frontier = frontier_type(
                [(None if self._trace_checkpoints else initial, ())]
            )
        checkpointer = store_mod.Checkpointer(
            self.config, self.scenario_spec, explored, result,
            previous=baseline)
        checkpointer.install()
        try:
            while frontier:
                if checkpointer.due():
                    # Between node expansions every structure is
                    # consistent: snapshot the frontier as single-node
                    # sibling groups (the scheduler's wire form, so a
                    # serial checkpoint resumes on any transport).
                    checkpointer.write(
                        [(trace, None) for _, trace in frontier],
                        self._rng.getstate())
                    if checkpointer.sigterm:
                        result.terminated = "sigterm"
                        raise _StopSearch()
                system, trace = self._pop(frontier)
                if system is None:
                    system = self._restore(trace, strategy)
                enabled = self._enabled(system, strategy, result)
                if not enabled:
                    result.quiescent_states += 1
                    self._check_quiescent(system, result, trace)
                    continue
                if (self.config.max_depth is not None
                        and len(trace) >= self.config.max_depth):
                    continue
                # One expansion = one batched store append: children are
                # collected (digests computed at the same per-child point
                # as before) and committed through add_batch in a finally,
                # so the children executed before a mid-expansion stop
                # still land exactly as per-child adds did.
                batch: list = []
                try:
                    for transition in enabled:
                        child = system.clone()
                        child_trace = trace + (transition,)
                        try:
                            child.execute(transition)
                            strategy.post_execute(child, transition)
                        except Exception as exc:
                            # Engine errors always propagate; model-handler
                            # exceptions become counterexamples unless
                            # fail_fast restores abort-on-exception.
                            if isinstance(exc, NiceError) \
                                    or self.config.fail_fast:
                                raise
                            result.transitions_executed += 1
                            self._record_model_error(exc, child_trace, result)
                            continue
                        result.transitions_executed += 1
                        self._check_properties(child, transition, result,
                                               child_trace)
                        if (self.config.max_transitions is not None
                                and result.transitions_executed
                                >= self.config.max_transitions):
                            result.terminated = "max_transitions"
                            raise _StopSearch()
                        batch.append(
                            (None if self._trace_checkpoints else child,
                             child_trace,
                             child.state_hash()
                             if self.config.state_matching else None)
                        )
                finally:
                    self._commit_batch(batch, explored, frontier, result)
        except _StopSearch:
            pass
        finally:
            checkpointer.restore()
            checkpointer.sync()
            result.unique_states = len(explored)
            explored.close()
        result.wall_time = time.perf_counter() - start
        # Every system in a serial run descends from `initial` by clone, so
        # the shared HashStats object holds the whole run's counters.
        result.add_hash_stats(initial._hash_stats.snapshot())
        return result

    def _commit_batch(self, batch, explored, frontier, result) -> None:
        """Deduplicate one expansion's children against the explored set
        as a single batched append; frontier order and revisit counts are
        identical to the per-child form (add_batch preserves order and
        in-batch duplicate semantics)."""
        if not batch:
            return
        if not self.config.state_matching:
            for node, child_trace, _ in batch:
                frontier.append((node, child_trace))
            return
        for new, (node, child_trace, _) in zip(
                explored.add_batch([digest for _, _, digest in batch]),
                batch):
            if new:
                frontier.append((node, child_trace))
            else:
                result.revisited_states += 1

    @staticmethod
    def _resume_nodes(groups):
        """Checkpointed sibling groups -> serial frontier nodes, in
        checkpoint order.  ``(trace, None)`` is the single node *at*
        ``trace``; ``(trace, steps)`` fans out one node per sibling —
        the same expansion :meth:`WorkerRuntime.expand` applies, so a
        checkpoint written by the parallel scheduler resumes serially."""
        for trace, steps in groups:
            if steps is None:
                yield (None, trace)
            else:
                for step in steps:
                    yield (None, trace + (step,))

    def _restore(self, trace, strategy: Strategy) -> System:
        """Trace-replay checkpoint restoration (Section 6): clone the initial
        state and deterministically re-execute the node's transition path."""
        return replay_from(self._initial.clone(), trace, strategy)

    def _pop(self, frontier):
        if self.config.search_order == ORDER_DFS:
            return frontier.pop()
        if self.config.search_order == ORDER_BFS:
            # O(1) on the deque frontier; list.pop(0) was O(n) per pop.
            return frontier.popleft()
        if self.config.search_order == ORDER_RANDOM:
            index = self._rng.randrange(len(frontier))
            return frontier.pop(index)
        raise SearchError(f"unknown search order {self.config.search_order!r}")

    # ------------------------------------------------------------------
    # Enabled transitions (base + discovery)
    # ------------------------------------------------------------------

    def _enabled(self, system: System, strategy: Strategy,
                 result: SearchStats) -> list[Transition]:
        enabled = system.enabled_transitions()
        if self._use_se:
            enabled = self._add_symbolic_sends(system, enabled, result)
            enabled = self._substitute_stats(system, enabled, result)
        return strategy.filter(system, enabled)

    def _add_symbolic_sends(self, system, enabled, result):
        ctrl_hash = system.controller_state_hash()
        extra: list[Transition] = []
        for name in sorted(system.hosts):
            host = system.hosts[name]
            if not getattr(host, "symbolic_client", False):
                continue
            if not host.can_send_more(self.config.max_pkt_sequence):
                continue
            key = (name, ctrl_hash)
            if key not in self._packet_cache:
                switch_id, port = system.host_locations[name]
                packets = self.discoverer.discover_packets(
                    system.app, switch_id, port, system.topo, host
                )
                self._packet_cache[key] = packets
                result.discover_packet_runs += 1
            for packet in self._packet_cache[key]:
                extra.append(
                    Transition(tk.HOST_SEND, name,
                               ("sym", packet.header_tuple()),
                               payload=packet)
                )
        return enabled + extra

    def _substitute_stats(self, system, enabled, result):
        """Replace plain delivery of a pending StatsReply with transitions
        carrying symbolically-discovered representative values."""
        ctrl_hash = system.controller_state_hash()
        out: list[Transition] = []
        for transition in enabled:
            if transition.kind != tk.CTRL_HANDLE:
                out.append(transition)
                continue
            switch = system.switches[transition.actor]
            if not switch.ofp_out or not isinstance(switch.ofp_out.peek(),
                                                    StatsReply):
                out.append(transition)
                continue
            key = (transition.actor, ctrl_hash)
            if key not in self._stats_cache:
                reply = switch.ofp_out.peek()
                variants = self.discoverer.discover_stats(
                    system.app, transition.actor, reply.stats
                )
                self._stats_cache[key] = variants
                result.discover_stats_runs += 1
            variants = self._stats_cache[key]
            if not variants:
                out.append(transition)
                continue
            for index, stats in enumerate(variants):
                out.append(
                    Transition(tk.CTRL_STATS, transition.actor,
                               ("stats", index), payload=stats)
                )
        return out

    # ------------------------------------------------------------------
    # Property checking
    # ------------------------------------------------------------------

    def _check_properties(self, system, transition, result, trace) -> None:
        for prop in self.properties:
            try:
                prop.check(system, transition)
            except PropertyViolation as violation:
                self._record(violation, system, result, trace)

    def _check_quiescent(self, system, result, trace) -> None:
        for prop in self.properties:
            try:
                prop.check_quiescent(system)
            except PropertyViolation as violation:
                self._record(violation, system, result, trace)

    def _record(self, violation: PropertyViolation, system, result, trace):
        result.violations.append(
            Violation(violation.property_name, violation.message, trace,
                      system.state_hash(), result.transitions_executed)
        )
        if self.config.stop_at_first_violation:
            result.terminated = "first_violation"
            raise _StopSearch()

    def _record_model_error(self, exc: Exception, trace, result) -> None:
        """Contain an exception that escaped a model handler: record it as
        a replayable :class:`ModelError` counterexample (the crashed child
        state is discarded — it is not a state of the model).  The message
        is ``type: str(exc)`` — identical however the transition executed,
        so serial and every transport agree on the recorded violation; the
        engine-specific traceback goes into ``details``."""
        result.model_errors += 1
        result.violations.append(
            ModelError(MODEL_ERROR_PROPERTY,
                       f"{type(exc).__name__}: {exc}", trace, "",
                       result.transitions_executed,
                       details=traceback.format_exc())
        )
        if self.config.stop_at_first_violation:
            result.terminated = "first_violation"
            raise _StopSearch()


class _StopSearch(Exception):
    """Internal: unwind the search loop."""
