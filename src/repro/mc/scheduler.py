"""Transport-agnostic parallel search scheduler (DESIGN.md, "Scheduler
and transports").

The master owns the explored-state set and a frontier of **sibling
groups** ``(parent trace, [transitions])`` — trace-replay checkpoints;
full :class:`~repro.mc.system.System` objects never cross a process or
socket boundary.  Children returned by a task are deduplicated against
the global explored set *before* they are scheduled, so every reachable
state is expanded exactly once, exactly like the serial loop.  Workers
(:mod:`repro.mc.worker`) restore a group's parent by trace replay and
expand every sibling; the scheduler merges results as they arrive — no
wave barrier; completed tasks immediately refill the workers.

**Affinity routing** (``NiceConfig.affinity``, default on): every group
discovered by worker *w* has its parent trace sitting in *w*'s replay
LRU, so the scheduler keeps a per-worker frontier queue and prefers
handing a worker its own groups — the restore is then one cache hit plus
a one-transition suffix.  An idle worker with an empty queue *steals*
from the longest other queue, so affinity never serializes the search.
``affinity_hits`` / ``affinity_misses`` in :class:`SearchStats` count
groups that ran on their owner vs. stolen/rerouted ones; with affinity
off, routing is round-robin and every group counts as a miss.  Affinity
composes with the default ``dfs`` order only: ``bfs`` and ``random``
frontiers pop from one global queue in frontier order (the policy
``Searcher._pop`` applies serially) and route round-robin.

Exactness contract (unchanged from PR 1): every (state, transition) pair
is executed and property-checked exactly once, so for an exhaustive
search ``unique_states``, ``transitions_executed``, ``revisited_states``
and ``quiescent_states`` all equal the serial searcher's — on every
transport and start method.  The set of *violated properties* is likewise
identical.  Individual violation records can differ from serial DFS in
their messages and traces whenever a property reads execution *history*
(packet-fate ledger, packet-in logs): state matching keeps only the first
path that reaches each state, and which path wins is a search-order
artifact — serial DFS and BFS disagree on those records the same way.
Early-stopping runs are approximate: workers in flight when the stop
condition trips may have executed extra transitions.
"""

from __future__ import annotations

import time
from collections import deque

from repro.config import ORDER_BFS, ORDER_DFS
from repro.mc.search import Searcher, SearchStats, Violation, _StopSearch
from repro.mc.transport import TransportError, create_transport
from repro.mc.wire import ExpandTask, TaskResult, WorkerError


class ParallelSearcher(Searcher):
    """Figure 5's loop, sharded across ``config.workers`` workers.

    ``scenario_spec`` (a :class:`~repro.mc.wire.ScenarioSpec` or None) is
    what spawn/socket transports ship to workers so they can rebuild the
    initial System by registry name; without it only ``fork`` workers —
    which inherit the closures — are possible.
    """

    def __init__(self, system_factory, properties, config, strategy=None,
                 discoverer=None, scenario_spec=None):
        super().__init__(system_factory, properties, config,
                         strategy=strategy, discoverer=discoverer)
        self.scenario_spec = scenario_spec

    def run(self) -> SearchStats:
        if self.config.workers <= 1:
            return super().run()
        transport = create_transport(self.config, self.scenario_spec)
        if transport is None:
            # create_transport already warned about why.
            return super().run()
        return _Scheduler(self, transport).run()


class _Scheduler:
    """One search run: a frontier of sibling groups routed to workers."""

    #: Tasks kept in flight per worker (>1 hides result latency).
    PER_WORKER_INFLIGHT = 2

    def __init__(self, searcher: ParallelSearcher, transport):
        self.searcher = searcher
        self.config = searcher.config
        self.transport = transport
        #: Affinity routing only composes with DFS pops: BFS and random
        #: orders need one global queue popped in frontier order, exactly
        #: like PR 1's engine (which had no affinity on any order).
        self._affine = (self.config.affinity
                        and self.config.search_order == ORDER_DFS)
        #: owner worker id (or None) -> queue of (trace, steps) groups.
        #: With affinity off everything lives under None.  Deques: BFS pops
        #: the head and defers oversized groups back to it, both O(1).
        self._queues: dict[int | None, deque] = {None: deque()}
        self._pending_groups = 0
        self._explored: set = set()
        self._in_flight: dict[int, tuple[int, list]] = {}  # task_id -> (wid, groups)
        self._load = [0] * transport.workers
        self._next_task_id = 0
        self._next_round_robin = 0
        self.stats = SearchStats()

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SearchStats:
        searcher, stats = self.searcher, self.stats
        stats.engine = self.transport.name
        stats.workers = self.transport.workers
        start = time.perf_counter()
        initial = searcher.system_factory()
        for prop in searcher.properties:
            prop.reset(initial)
        try:
            searcher._check_properties(initial, None, stats, ())
        except _StopSearch:
            stats.wall_time = time.perf_counter() - start
            return stats

        self._explored.add(initial.state_hash())
        self._push(None, ((), None))
        # start() is inside the try: a transport that fails to come up
        # (accept deadline, dead spawn) must still have stop() run so no
        # listener or half-started worker outlives the search.
        try:
            self.transport.start(searcher)
            while self._pending_groups or self._in_flight:
                self._dispatch()
                self._merge(self._receive())
        except _StopSearch:
            pass
        finally:
            self.transport.stop()
        stats.unique_states = len(self._explored)
        stats.wall_time = time.perf_counter() - start
        # Worker deltas were merged per task; add the master's own hashing
        # (the initial state) on top.
        stats.add_hash_stats(initial._hash_stats.snapshot())
        return stats

    def _receive(self) -> TaskResult:
        message = self.transport.recv()
        if isinstance(message, WorkerError):
            raise TransportError(
                f"worker {message.worker_id} failed on task"
                f" {message.task_id}:\n{message.error}")
        return message

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _push(self, owner: int | None, group: tuple) -> None:
        if not self._affine:
            owner = None
        self._queues.setdefault(owner, deque()).append(group)
        self._pending_groups += 1

    def _pop_group(self, queue: deque) -> tuple:
        """Pop per ``config.search_order`` — dfs from the end, bfs from the
        front, random via the searcher's seeded RNG (the same policy
        ``Searcher._pop`` applies to the serial frontier)."""
        order = self.config.search_order
        if order == ORDER_DFS:
            return queue.pop()
        if order == ORDER_BFS:
            return queue.popleft()
        index = self.searcher._rng.randrange(len(queue))
        queue.rotate(-index)
        group = queue.popleft()
        queue.rotate(index)
        return group

    def _dispatch(self) -> None:
        """Hand groups to every worker with spare capacity."""
        while self._pending_groups:
            worker_id = self._pick_worker()
            if worker_id is None:
                return
            groups = self._pack(worker_id)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._in_flight[task_id] = (worker_id, groups)
            self._load[worker_id] += 1
            self.transport.submit(worker_id, ExpandTask(task_id, groups))

    def _pick_worker(self) -> int | None:
        """Next worker to feed: affine work first, then the least loaded
        (round-robin tie-break keeps spawn-order bias out)."""
        spare = [w for w in range(len(self._load))
                 if self._load[w] < self.PER_WORKER_INFLIGHT]
        if not spare:
            return None
        if self._affine:
            affine = [w for w in spare if self._queues.get(w)]
            if affine:
                return min(affine, key=lambda w: self._load[w])
        choice = min(
            spare,
            key=lambda w: (self._load[w],
                           (w - self._next_round_robin) % len(self._load)),
        )
        self._next_round_robin = (choice + 1) % len(self._load)
        return choice

    def _pack(self, worker_id: int) -> list:
        """Pop up to ``batch_groups`` groups (``batch_nodes`` nodes) for one
        task (``NiceConfig`` fields; groundwork for adaptive batch sizing).

        While the explored set is small a task carries a single node, so
        the search fans out across the pool instead of running serially
        inside one worker.  Groups owned by ``worker_id`` are taken first
        (affinity hits); an empty own queue steals from the longest other
        queue (affinity misses).
        """
        budget = (1 if len(self._explored) < 4 * self.transport.workers
                  else self.config.batch_nodes)
        groups: list = []
        nodes = 0
        while self._pending_groups and len(groups) < self.config.batch_groups \
                and nodes < budget:
            queue, owned = self._source_queue(worker_id)
            trace, steps = self._pop_group(queue)
            take = len(steps) if steps is not None else 1
            if steps is not None and nodes + take > budget and groups:
                # Defer an oversized group rather than overshooting,
                # putting it back where the order's next pop finds it.
                if self.config.search_order == ORDER_BFS:
                    queue.appendleft((trace, steps))
                else:
                    queue.append((trace, steps))
                break
            self._pending_groups -= 1
            if owned and self._affine:
                self.stats.affinity_hits += 1
            else:
                self.stats.affinity_misses += 1
            groups.append((trace, steps))
            nodes += take
        return groups

    def _source_queue(self, worker_id: int) -> tuple[list, bool]:
        own = self._queues.get(worker_id)
        if own:
            return own, True
        longest = max((q for q in self._queues.values() if q), key=len)
        return longest, False

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @staticmethod
    def _node_trace(groups, gi, si) -> tuple:
        trace, steps = groups[gi]
        return trace if si is None else trace + (steps[si],)

    def _merge(self, result: TaskResult) -> None:
        """Fold one task's output into the master state."""
        worker_id, groups = self._in_flight.pop(result.task_id)
        self._load[worker_id] -= 1
        out = result.out
        stats = self.stats
        stats.discover_packet_runs += out["discover_packet_runs"]
        stats.discover_stats_runs += out["discover_stats_runs"]
        stats.transitions_executed += out["transitions"]
        stats.quiescent_states += out["quiescent"]
        stats.replayed_transitions += out["replayed"]
        stats.rebuilt_transitions += out["rebuilt"]
        stats.cache_hits += out["cache_hits"]
        stats.cache_misses += out["cache_misses"]
        stats.add_hash_stats(out["hash_stats"])
        for property_name, message, digest, gi, si, transition in \
                out["violations"]:
            trace = self._node_trace(groups, gi, si)
            if transition is not None:
                trace = trace + (transition,)
            stats.violations.append(
                Violation(property_name, message, trace, digest,
                          stats.transitions_executed)
            )
            if self.config.stop_at_first_violation:
                stats.terminated = "first_violation"
                raise _StopSearch()
        if (self.config.max_transitions is not None
                and stats.transitions_executed
                >= self.config.max_transitions):
            stats.terminated = "max_transitions"
            raise _StopSearch()
        for gi, si, kids in out["children"]:
            fresh = []
            for transition, digest in kids:
                if self.config.state_matching:
                    if digest in self._explored:
                        stats.revisited_states += 1
                        continue
                    self._explored.add(digest)
                fresh.append(transition)
            if fresh:
                # The worker that expanded this node holds its trace in
                # its replay LRU — route the children back to it.
                self._push(worker_id,
                           (self._node_trace(groups, gi, si), fresh))
