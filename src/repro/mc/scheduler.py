"""Transport-agnostic parallel search scheduler (DESIGN.md, "Scheduler
and transports" and "Fault tolerance and elasticity").

The master owns the explored-state set and a frontier of **sibling
groups** ``(parent trace, [transitions])`` — trace-replay checkpoints;
full :class:`~repro.mc.system.System` objects never cross a process or
socket boundary.  Children returned by a task are deduplicated against
the global explored set *before* they are scheduled, so every reachable
state is expanded exactly once, exactly like the serial loop.  Workers
(:mod:`repro.mc.worker`) restore a group's parent by trace replay and
expand every sibling; the scheduler merges results as they arrive — no
wave barrier; completed tasks immediately refill the workers.

**Affinity routing** (``NiceConfig.affinity``, default on): every group
discovered by worker *w* has its parent trace sitting in *w*'s replay
LRU, so the scheduler keeps a per-worker frontier queue and prefers
handing a worker its own groups — the restore is then one cache hit plus
a one-transition suffix.  An idle worker with an empty queue *steals*
from the longest other queue, so affinity never serializes the search.
``affinity_hits`` / ``affinity_misses`` in :class:`SearchStats` count
groups that ran on their owner vs. stolen/rerouted ones; with affinity
off, routing is round-robin and every group counts as a miss.  Affinity
composes with the default ``dfs`` order only: ``bfs`` and ``random``
frontiers pop from one global queue in frontier order (the policy
``Searcher._pop`` applies serially) and route round-robin.

**Worker churn** (PR 4): the pool membership is dynamic.  A worker death
(process exit, socket EOF — delivered by the transport as a
:class:`~repro.mc.wire.WorkerGone` event, or discovered at submit time as
a :class:`~repro.mc.transport.WorkerLost`) requeues the dead worker's
in-flight sibling groups onto the global queue and folds its affinity
queue back in; because a group is merged at most once (stale results of
requeued tasks are dropped by task id), the explored state space stays
bit-identical to serial under any failure schedule.  The run only aborts
— with a clean :class:`~repro.mc.transport.TransportError` — when the
live pool shrinks below ``min_workers`` or more than
``max_worker_failures`` deaths accumulate.  Symmetrically, an elastic
socket worker connecting mid-search (:class:`~repro.mc.wire.WorkerJoined`)
enters the routing tables and receives work on the next dispatch.

**Adaptive batch sizing** (``adaptive_batching``, default on): the
per-task node/group budgets start from ``batch_nodes``/``batch_groups``
and adapt per worker from observed task round-trip times — fast round
trips grow the batch geometrically (amortizing per-task overhead, the
regime high-RTT socket workers live in), slow ones shrink it back toward
fine-grained load balancing (which also caps how much work a dying worker
can strand).  Batch sizing never affects *what* is explored, only how it
is packed.

**Checkpointing** (PR 5): with ``checkpoint_dir`` set the scheduler
periodically snapshots the explored-set store, the queued sibling
groups, the stats and the config (DESIGN.md, "State store and
restartability").  A snapshot is only written at a **consistent cut**:
dispatching pauses and every in-flight task is drained (merged) first,
so no unit of work can be half-counted; ``nice resume`` then continues
the search — on any transport — with a final explored state space
bit-identical to an uninterrupted run.

Exactness contract (unchanged from PR 1): every (state, transition) pair
is executed and property-checked exactly once, so for an exhaustive
search ``unique_states``, ``transitions_executed``, ``revisited_states``
and ``quiescent_states`` all equal the serial searcher's — on every
transport and start method, and under any worker failure/join schedule
the policy survives.  The set of *violated properties* is likewise
identical.  Individual violation records can differ from serial DFS in
their messages and traces whenever a property reads execution *history*
(packet-fate ledger, packet-in logs): state matching keeps only the first
path that reaches each state, and which path wins is a search-order
artifact — serial DFS and BFS disagree on those records the same way.
Early-stopping runs are approximate: workers in flight when the stop
condition trips may have executed extra transitions.
"""

from __future__ import annotations

import hashlib
import pickle
import sys
import time
from collections import deque

from repro.config import ORDER_BFS, ORDER_DFS
from repro.mc import store as store_mod
from repro.mc.search import (
    MODEL_ERROR_PROPERTY,
    ModelError,
    QuarantinedTask,
    Searcher,
    SearchStats,
    Violation,
    _StopSearch,
)
from repro.mc.transport import TransportError, WorkerLost, create_transport
from repro.mc.wire import (
    BloomSummary,
    ChildData,
    ExpandTask,
    FetchChildren,
    Heartbeat,
    TaskResult,
    WorkerError,
    WorkerGone,
    WorkerJoined,
)


class ParallelSearcher(Searcher):
    """Figure 5's loop, sharded across ``config.workers`` workers.

    ``scenario_spec`` (a :class:`~repro.mc.wire.ScenarioSpec` or None) is
    what spawn/socket transports ship to workers so they can rebuild the
    initial System by registry name; without it only ``fork`` workers —
    which inherit the closures — are possible.
    """

    def __init__(self, system_factory, properties, config, strategy=None,
                 discoverer=None, scenario_spec=None):
        super().__init__(system_factory, properties, config,
                         strategy=strategy, discoverer=discoverer,
                         scenario_spec=scenario_spec)

    def run(self) -> SearchStats:
        if self.config.workers <= 1:
            return super().run()
        transport = create_transport(self.config, self.scenario_spec)
        if transport is None:
            # create_transport already warned about why.
            return super().run()
        return _Scheduler(self, transport).run()


class _Scheduler:
    """One search run: a frontier of sibling groups routed to workers."""

    #: Tasks kept in flight per worker (>1 hides result latency).
    PER_WORKER_INFLIGHT = 2

    #: Adaptive batching (``NiceConfig.adaptive_batching``): grow a
    #: worker's batch while its task round trips finish under RTT_LOW
    #: seconds, shrink while they exceed RTT_HIGH.  The asymmetric step
    #: (gentle growth, halving shrink) converges without oscillating.
    RTT_LOW = 0.010
    RTT_HIGH = 0.100
    BATCH_GROW = 1.5
    BATCH_SHRINK = 0.5
    MAX_BATCH_NODES = 512

    #: Hang detection (DESIGN.md, "Failure containment").  A task's hard
    #: deadline derives from the worker's EWMA task round-trip time:
    #: ``DEADLINE_RTT_FACTOR x rtt x PER_WORKER_INFLIGHT`` (the depth
    #: factor because a task can wait behind the others in the worker's
    #: queue), floored at DEADLINE_FLOOR seconds so early noisy samples
    #: never declare a healthy worker hung.  ``task_deadline`` pins the
    #: deadline instead; ``0`` disables detection.
    DEADLINE_FLOOR = 30.0
    DEADLINE_RTT_FACTOR = 50.0
    #: EWMA weight of a new RTT sample in the deadline estimator.
    RTT_EWMA = 0.3
    #: Fallback wall-clock allowance for one quarantine sandbox run when
    #: no explicit ``task_deadline`` is configured.
    QUARANTINE_DEADLINE = 30.0
    #: Seconds an asynchronously respawned worker (socket transport) gets
    #: to complete its elastic join before it stops counting toward the
    #: ``min_workers`` floor.
    RESPAWN_GRACE = 60.0

    #: Bitset bytes a single summary broadcast may carry.  The local
    #: transport's task queues write into a pipe whose buffer is the
    #: *only* slack a submit has: a message bigger than the unread
    #: capacity blocks the master until the worker drains it — forever,
    #: if that worker just died (SIGKILL lands between the submit-time
    #: liveness check and the write).  Keeping every message well under
    #: the classic 64 KiB pipe buffer preserves the transport's design
    #: invariant that submits never block and a dead worker is always
    #: detected at recv() (pipe EOF).  Shards whose delta does not fit
    #: ride the next dispatch; a partially synced worker just drops
    #: fewer duplicates until then (staleness is always safe).
    SUMMARY_BUDGET = 24 << 10

    def __init__(self, searcher: ParallelSearcher, transport):
        self.searcher = searcher
        self.config = searcher.config
        self.transport = transport
        #: Affinity routing only composes with DFS pops: BFS and random
        #: orders need one global queue popped in frontier order, exactly
        #: like PR 1's engine (which had no affinity on any order).
        self._affine = (self.config.affinity
                        and self.config.search_order == ORDER_DFS)
        #: owner worker id (or None) -> queue of (trace, steps) groups.
        #: With affinity off everything lives under None.  Deques: BFS pops
        #: the head and defers oversized groups back to it, both O(1).
        self._queues: dict[int | None, deque] = {None: deque()}
        self._pending_groups = 0
        self._explored = store_mod.create_store(self.config)
        #: Worker-side Bloom dedup pre-filter (wire protocol v4;
        #: DESIGN.md, "Distributed dedup"): broadcast the explored set's
        #: Bloom summary so workers stop shipping known-duplicate
        #: children.  Pointless without state matching (nothing is
        #: deduplicated) or with the Bloom sized to zero.
        self._summary_bits = getattr(self.config, "store_bloom_bits", 0)
        self._summary_shards = self.config.store_shards
        # getattr: a resumed checkpoint may carry a config pickled before
        # this knob existed (same guard create_store uses for bloom bits).
        self._worker_bloom = (
            getattr(self.config, "store_bloom_broadcast", True)
            and self.config.state_matching
            and self._summary_bits > 0)
        if self._worker_bloom:
            # Before any add — run() preloads a resumed checkpoint through
            # store.add, so checkpointed digests are covered too.
            self._explored.enable_summary(self._summary_bits,
                                          self._summary_shards)
        #: Latest summary broadcast state: shard -> monotonically bumped
        #: version, and shard -> that version's full bitset bytes.
        self._summary_versions: dict[int, int] = {}
        self._summary_payload: dict[int, bytes] = {}
        #: worker id -> {shard: version} it has been sent (a fresh or
        #: elastic worker starts empty and gets every shard).
        self._worker_synced: dict[int, dict[int, int]] = {}
        #: worker id -> {shard: (version, offset)} mid-broadcast cursor:
        #: shards whose bitset exceeded one message's SUMMARY_BUDGET
        #: continue from ``offset`` on the next dispatch.
        self._worker_pending: dict[int, dict[int, tuple[int, int]]] = {}
        #: task id -> parked TaskResult ``out`` awaiting stub hydration
        #: (the task stays in ``_in_flight`` until the fetch completes,
        #: so drains and deadlines keep covering it).
        self._awaiting: dict[int, dict] = {}
        self._in_flight: dict[int, tuple[int, list]] = {}  # task_id -> (wid, groups)
        #: Live pool membership; filled from ``transport.worker_ids()``
        #: once the transport is up — deaths remove ids, elastic joins add
        #: them.
        self._live: set[int] = set()
        #: Deaths already processed, for deduplication: a submit-time
        #: WorkerLost and the transport's own WorkerGone can both report
        #: the same worker.
        self._dead: set[int] = set()
        self._load: dict[int, int] = {}
        #: Per-worker adaptive node budget (float so growth compounds).
        self._batch: dict[int, float] = {}
        #: task id -> (submit timestamp, pipelining depth at submit).
        self._submit_times: dict[int, tuple[float, int]] = {}
        #: Per-worker EWMA of per-task service time, feeding the deadline
        #: derivation (kept separately from ``_batch`` so hang detection
        #: works with adaptive batching off).
        self._rtt: dict[int, float] = {}
        #: task id -> absolute monotonic deadline (only tasks with hang
        #: detection enabled appear here).
        self._deadlines: dict[int, float] = {}
        #: worker id -> monotonic timestamp of its last heartbeat.
        self._last_beat: dict[int, float] = {}
        #: Poison attribution: content key of a sibling group -> number of
        #: worker deaths that group was in flight for.
        self._poison: dict[bytes, int] = {}
        #: Replacements requested from an *asynchronous* spawn_worker (the
        #: socket transport): they count toward the ``min_workers`` floor
        #: until they join or ``_respawn_deadline`` expires.
        self._pending_respawns = 0
        self._respawn_deadline: float | None = None
        self._next_task_id = 0
        self._next_round_robin = 0
        self.stats = SearchStats()
        if transport.workers < self.config.min_workers:
            # An availability floor above the pool size would otherwise be
            # silently violated for the whole run and only noticed if a
            # worker happened to die.
            raise TransportError(
                f"min_workers={self.config.min_workers} exceeds the"
                f" configured pool of {transport.workers} worker(s)")

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------

    def run(self) -> SearchStats:
        searcher, stats = self.searcher, self.stats
        stats.engine = self.transport.name
        stats.workers = self.transport.workers
        resume = searcher._resume
        baseline = None
        start = time.perf_counter()
        initial = searcher.system_factory()
        for prop in searcher.properties:
            prop.reset(initial)
        if resume is None:
            try:
                searcher._check_properties(initial, None, stats, ())
            except _StopSearch:
                # The search ends before the transport comes up, but the
                # store from __init__ is live: close it (a sharded store
                # holds open shard files and a temp spill directory).
                stats.store = self._explored.kind
                stats.unique_states = len(self._explored)
                self._explored.close()
                stats.wall_time = time.perf_counter() - start
                return stats
            self._explored.add(initial.state_hash())
            self._push(None, ((), None))
        else:
            resume.restore_stats(stats)
            # Preload the explored set (with the checkpoint's Bloom
            # summaries when compatible); a layout-compatible checkpoint
            # becomes the baseline the next snapshot hard-links from.
            baseline = store_mod.restore_store(self._explored, resume)
            if resume.rng_state is not None:
                searcher._rng.setstate(resume.rng_state)
            # The old owners' replay caches died with the previous run:
            # every checkpointed group restarts unowned.
            for group in resume.frontier:
                self._push(None, group)
        checkpointer = store_mod.Checkpointer(
            self.config, searcher.scenario_spec, self._explored, stats,
            previous=baseline)
        checkpointer.install()
        # start() is inside the try: a transport that fails to come up
        # (accept deadline, dead spawn) must still have stop() run so no
        # listener or half-started worker outlives the search.
        try:
            self.transport.start(searcher)
            # Enroll the pool the transport *actually* brought up: the
            # socket accept barrier can burn ids on workers that die
            # mid-handshake, so the live ids need not be 0..workers-1.
            for worker_id in self.transport.worker_ids():
                self._enroll(worker_id)
            while self._pending_groups or self._in_flight:
                if checkpointer.due():
                    # Drain first: a snapshot must capture a consistent
                    # cut (every dispatched task merged, nothing in
                    # flight), or resumed counters would double-count.
                    self._drain()
                    checkpointer.write(self._frontier_groups(),
                                       searcher._rng.getstate())
                    if checkpointer.sigterm:
                        stats.terminated = "sigterm"
                        raise _StopSearch()
                    continue  # the drain may have emptied the frontier
                self._dispatch()
                message = self.transport.recv(timeout=self._recv_timeout())
                if message is not None:
                    self._handle(message)
                self._check_deadlines()
        except _StopSearch:
            pass
        finally:
            # Nested so an exception out of stop() (a transport teardown
            # bug, a signal mid-close) can never skip restoring the
            # previous SIGTERM handler — leaking the checkpointer's
            # flag-setting handler past the search would swallow real
            # SIGTERMs for the rest of the process.
            try:
                self.transport.stop()
            finally:
                checkpointer.restore()
                checkpointer.sync()
                stats.unique_states = len(self._explored)
                self._explored.close()
        stats.wall_time = time.perf_counter() - start
        # Worker deltas were merged per task; add the master's own hashing
        # (the initial state) on top.
        stats.add_hash_stats(initial._hash_stats.snapshot())
        return stats

    def _drain(self) -> None:
        """Absorb every in-flight result (worker churn included) so the
        master state is a consistent cut of the search.  Deadlines keep
        ticking here too — a worker that hangs while a checkpoint drains
        would otherwise stall the snapshot forever."""
        while self._in_flight:
            message = self.transport.recv(timeout=self._recv_timeout())
            if message is not None:
                self._handle(message)
            self._check_deadlines()

    def _frontier_groups(self) -> list:
        """Every queued sibling group, global queue first then per-owner
        queues in worker-id order — the checkpoint's frontier."""
        groups = list(self._queues.get(None, ()))
        for owner in sorted(w for w in self._queues if w is not None):
            groups.extend(self._queues[owner])
        return groups

    def _handle(self, message) -> None:
        if isinstance(message, TaskResult):
            self._merge(message)
        elif isinstance(message, ChildData):
            self._on_child_data(message)
        elif isinstance(message, Heartbeat):
            self._last_beat[message.worker_id] = time.monotonic()
        elif isinstance(message, WorkerGone):
            self._on_worker_gone(message.worker_id, message.reason)
        elif isinstance(message, WorkerJoined):
            self._on_worker_joined(message.worker_id)
        elif isinstance(message, WorkerError):
            # A task that *raised* inside the worker is a deterministic
            # bug, not churn: retrying it elsewhere would raise the same
            # way, so surface the traceback instead of looping forever.
            # Model-handler exceptions never arrive here unless fail_fast
            # asked for exactly this abort — workers contain them as
            # ModelError counterexamples (see WorkerRuntime.expand).
            raise TransportError(
                f"worker {message.worker_id} failed on task"
                f" {message.task_id}:\n{message.error}")
        else:
            raise TransportError(f"unexpected transport message {message!r}")

    # ------------------------------------------------------------------
    # Worker churn
    # ------------------------------------------------------------------

    def _on_worker_gone(self, worker_id: int, reason: str) -> None:
        """Requeue a dead worker's work, repair affinity state, and apply
        the ``min_workers`` / ``max_worker_failures`` policy."""
        if worker_id in self._dead:
            return  # duplicate notice (submit failure + transport event)
        # Deliberately NOT gated on _live membership: a worker that died
        # in the window between the transport's start() and the
        # enrollment snapshot was never enrolled, but its death still
        # shrank the pool and must hit the policy below — otherwise a
        # 1-worker run whose worker dies in that window would hang in
        # recv() forever instead of failing cleanly.
        self._dead.add(worker_id)
        self._live.discard(worker_id)
        self._load.pop(worker_id, None)
        self._batch.pop(worker_id, None)
        self._rtt.pop(worker_id, None)
        self._last_beat.pop(worker_id, None)
        self._worker_synced.pop(worker_id, None)
        self._worker_pending.pop(worker_id, None)
        stats = self.stats
        stats.worker_failures += 1
        # A tolerated death must still be *visible*: the reason can carry a
        # startup traceback or a connection error an operator needs even
        # when the policy lets the search continue.
        print(f"search worker {worker_id} died"
              f" ({len(self._live)} worker(s) left); requeueing its work:"
              f" {reason}", file=sys.stderr, flush=True)
        # Requeue in-flight sibling groups.  The old task ids are simply
        # forgotten: a stale result still in the pipe when the death was
        # detected no longer matches ``_in_flight`` and is dropped —
        # whether the death was organic or a deadline kill — so every
        # group is merged exactly once: the bit-identical-state-space
        # guarantee under churn.  Each group is charged one death toward
        # poison attribution; past ``max_task_retries`` it goes to
        # quarantine instead of back to the fleet.
        poisoned: list[tuple[tuple, int]] = []
        for task_id in [t for t, (w, _) in self._in_flight.items()
                        if w == worker_id]:
            _, groups = self._in_flight.pop(task_id)
            self._awaiting.pop(task_id, None)
            self._submit_times.pop(task_id, None)
            self._deadlines.pop(task_id, None)
            stats.tasks_retried += 1
            for group in groups:
                stats.groups_reassigned += 1
                attempts = self._poison.get(self._group_key(group), 0) + 1
                self._poison[self._group_key(group)] = attempts
                if attempts > self.config.max_task_retries:
                    poisoned.append((group, attempts))
                else:
                    self._push(None, group)
        # Affinity repair: the dead worker's replay cache is gone, so its
        # queued groups lose their owner and rejoin the global queue (the
        # next dispatch re-counts them as affinity misses).
        orphaned = self._queues.pop(worker_id, None)
        if orphaned:
            stats.groups_reassigned += len(orphaned)
            self._queues[None].extend(orphaned)
        if self.config.respawn_workers:
            # Autoscaler: replace the dead worker *before* the policy
            # check, so a synchronously respawned local worker keeps the
            # pool at its ``min_workers`` floor.  Deaths still count
            # toward ``max_worker_failures``.
            self._respawn(worker_id)
        failures_allowed = self.config.max_worker_failures
        if failures_allowed is not None \
                and stats.worker_failures > failures_allowed:
            raise TransportError(
                f"giving up after {stats.worker_failures} worker"
                f" failures (max_worker_failures={failures_allowed});"
                f" last failure: worker {worker_id}: {reason}")
        if (len(self._live) + self._pending_respawns
                < self.config.min_workers):
            raise TransportError(
                f"worker pool shrank to {len(self._live)} live worker(s),"
                f" below min_workers={self.config.min_workers}"
                f" ({stats.worker_failures} failure(s) total);"
                f" last failure: worker {worker_id}: {reason}")
        # Quarantine last, after the pool is repaired and the policy has
        # passed: the sandbox can merge results (possibly stopping the
        # search) and must not run if the fleet is aborting anyway.
        for group, attempts in poisoned:
            self._quarantine(group, attempts)

    @staticmethod
    def _group_key(group) -> bytes:
        """Content identity of a sibling group, stable across requeues and
        re-batching (the same group object round-trips through the
        scheduler, so its pickled form is stable within a run)."""
        payload = pickle.dumps(group, protocol=pickle.HIGHEST_PROTOCOL)
        return hashlib.blake2b(payload, digest_size=16).digest()

    # ------------------------------------------------------------------
    # Poison-task quarantine
    # ------------------------------------------------------------------

    def _quarantine(self, group, attempts: int) -> None:
        """A group has now been in flight for ``attempts`` worker deaths:
        stop feeding it to the fleet.  With quarantine enabled it gets one
        last run in a sandboxed one-shot subprocess (rlimits contain what
        killed the pool workers); a sandbox success merges normally —
        bit-identity to serial is preserved.  Any sandbox failure — or
        quarantine disabled — degrades gracefully: the group is abandoned
        and a :class:`~repro.mc.search.QuarantinedTask` diagnostic records
        what was given up, instead of the whole search aborting."""
        stats = self.stats
        trace, steps = group
        if self.config.quarantine:
            stats.tasks_quarantined += 1
            print(f"sibling group at trace length {len(trace)} survived"
                  f" {attempts} worker death(s); quarantining it in a"
                  f" sandboxed subprocess", file=sys.stderr, flush=True)
            out, failure = self._sandbox_expand(group)
            if out is not None:
                print("quarantined group completed in the sandbox;"
                      " merging its result", file=sys.stderr, flush=True)
                self._absorb(out, [group], None)
                return
        else:
            failure = "quarantine disabled (NiceConfig.quarantine=False)"
        stats.quarantined_tasks.append(
            QuarantinedTask(trace, steps, attempts, failure))
        print(f"abandoning poison sibling group after {attempts}"
              f" attempt(s): {failure}\nthe rest of the state space is"
              f" still being explored", file=sys.stderr, flush=True)

    def _sandbox_expand(self, group):
        """Run one group through ``quarantine_worker_main`` in a fresh
        subprocess.  Returns ``(out, "")`` on success or ``(None, why)``
        on any failure."""
        import multiprocessing
        import signal
        import threading

        from repro.mc import worker as worker_mod
        from repro.mc.wire import spec_is_portable

        spec = self.searcher.scenario_spec
        if "fork" in multiprocessing.get_all_start_methods():
            # Fork even under spawn/socket transports: it inherits the
            # live searcher, so hand-built scenarios stay quarantinable.
            context = multiprocessing.get_context("fork")
            use_spec = None
        elif spec_is_portable(spec):
            context = multiprocessing.get_context("spawn")
            use_spec = spec
        else:
            return None, ("no sandbox available: the platform lacks 'fork'"
                          " and the scenario has no portable spec")
        allowance = self.config.task_deadline or self.QUARANTINE_DEADLINE
        limits = {"cpu": int(allowance) + 1,
                  "address_space": self.config.worker_memory_limit}
        recv_end, send_end = context.Pipe(duplex=False)
        inherit = use_spec is None
        if inherit:
            worker_mod._INHERITED_SEARCHER = self.searcher
        try:
            process = context.Process(
                target=worker_mod.quarantine_worker_main,
                args=(send_end, use_spec, [group], limits), daemon=True)
            # Same SIGTERM bracket as the local transport's _launch: the
            # sandbox must not inherit the checkpointer's flag handler.
            previous = None
            if threading.current_thread() is threading.main_thread():
                previous = signal.signal(signal.SIGTERM, signal.SIG_DFL)
            try:
                process.start()
            finally:
                if previous is not None:
                    signal.signal(signal.SIGTERM, previous)
        finally:
            if inherit:
                worker_mod._INHERITED_SEARCHER = None
        send_end.close()
        reply = None
        timed_out = False
        try:
            if recv_end.poll(allowance + 5.0):
                reply = recv_end.recv()
            else:
                timed_out = True
        except (EOFError, OSError):
            reply = None  # died mid-write; exit status tells the story
        try:
            if reply is None:
                if timed_out and process.is_alive():
                    process.kill()
                    process.join(5.0)
                    return None, (f"sandbox run exceeded its"
                                  f" {allowance:.0f}s allowance")
                # A pipe EOF races process teardown: the kernel closes the
                # child's fds a beat before it becomes reapable, so join
                # *before* reading the exit code or a self-inflicted
                # SIGKILL gets misread as a hang.
                process.join(5.0)
                if process.is_alive():
                    process.kill()
                    process.join(5.0)
                    return None, (f"sandbox run exceeded its"
                                  f" {allowance:.0f}s allowance")
                return None, (f"sandbox run died"
                              f" ({_describe_exit(process.exitcode)})")
            if isinstance(reply, TaskResult):
                return reply.out, ""
            if isinstance(reply, WorkerError):
                return None, f"sandbox run raised:\n{reply.error}"
            return None, f"sandbox sent an unexpected {reply!r}"
        finally:
            if process.is_alive():
                process.kill()
            process.join(5.0)
            recv_end.close()

    def _respawn(self, dead_worker_id: int) -> None:
        """Ask the transport for a replacement worker (``respawn_workers``).

        Local pools return the fresh worker id synchronously and it is
        enrolled immediately; the socket transport spawns a subprocess
        that joins through the elastic accept path and surfaces later as
        a :class:`~repro.mc.wire.WorkerJoined` event.  A transport that
        cannot spawn (or a spawn that fails) logs and moves on — the
        ordinary failure policy then decides whether the shrunken pool
        survives."""
        try:
            new_id = self.transport.spawn_worker()
        except Exception as exc:  # noqa: BLE001 - any failure, policy decides
            print(f"could not respawn a replacement for dead worker"
                  f" {dead_worker_id}: {exc}", file=sys.stderr, flush=True)
            return
        self.stats.workers_respawned += 1
        if new_id is not None and new_id not in self._live:
            self._enroll(new_id)
            self.stats.workers += 1
            print(f"respawned worker {new_id} to replace dead worker"
                  f" {dead_worker_id}", file=sys.stderr, flush=True)
        elif new_id is None:
            # Asynchronous join (socket): the replacement holds a seat in
            # the min_workers accounting until it arrives — or until the
            # grace deadline declares it lost.
            self._pending_respawns += 1
            self._respawn_deadline = time.monotonic() + self.RESPAWN_GRACE
            print(f"respawning a replacement for dead worker"
                  f" {dead_worker_id} (joins asynchronously)",
                  file=sys.stderr, flush=True)

    def _enroll(self, worker_id: int) -> None:
        """Enter a worker into the routing tables."""
        self._live.add(worker_id)
        self._load[worker_id] = 0
        self._batch[worker_id] = float(self.config.batch_nodes)
        self.stats.worker_tasks.setdefault(worker_id, 0)

    def _on_worker_joined(self, worker_id: int) -> None:
        """Enter an elastic joiner into the routing tables; the next
        ``_dispatch`` feeds it (an idle joiner steals immediately)."""
        if worker_id in self._live or worker_id in self._dead:
            return
        if self._pending_respawns:
            self._pending_respawns -= 1
            if not self._pending_respawns:
                self._respawn_deadline = None
        self._enroll(worker_id)
        self.stats.elastic_joins += 1
        self.stats.workers += 1

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _push(self, owner: int | None, group: tuple) -> None:
        if not self._affine or (owner is not None
                                and owner not in self._live):
            owner = None
        self._queues.setdefault(owner, deque()).append(group)
        self._pending_groups += 1

    def _pop_group(self, queue: deque) -> tuple:
        """Pop per ``config.search_order`` — dfs from the end, bfs from the
        front, random via the searcher's seeded RNG (the same policy
        ``Searcher._pop`` applies to the serial frontier)."""
        order = self.config.search_order
        if order == ORDER_DFS:
            return queue.pop()
        if order == ORDER_BFS:
            return queue.popleft()
        index = self.searcher._rng.randrange(len(queue))
        queue.rotate(-index)
        group = queue.popleft()
        queue.rotate(index)
        return group

    def _dispatch(self) -> None:
        """Hand groups to every worker with spare capacity."""
        if self._worker_bloom and self._pending_groups:
            self._refresh_summary()
        while self._pending_groups:
            worker_id = self._pick_worker()
            if worker_id is None:
                return
            groups = self._pack(worker_id)
            task_id = self._next_task_id
            self._next_task_id += 1
            self._in_flight[task_id] = (worker_id, groups)
            self._load[worker_id] += 1
            # The pipelining depth at submit time rides along so the RTT
            # sample can be normalized to per-task service time: a task
            # submitted behind another in-flight task waits its turn, and
            # counting that queueing as service time would stop batch
            # growth at half the intended threshold.
            now = time.monotonic()
            self._submit_times[task_id] = (now, self._load[worker_id])
            allowance = self._task_deadline(worker_id)
            if allowance:
                self._deadlines[task_id] = now + allowance
            summary = (self._summary_for(worker_id)
                       if self._worker_bloom else None)
            try:
                if summary is not None and self.transport.summary_push:
                    # Socket transport: a standalone push ahead of the
                    # task (FIFO channel — the worker installs it before
                    # expanding) keeps summaries out of the task frame.
                    self.transport.submit(worker_id, summary)
                    summary = None
                self.transport.submit(
                    worker_id, ExpandTask(task_id, groups, summary))
            except WorkerLost as lost:
                # The task is registered in-flight, so the death handler
                # requeues it along with anything else the worker held.
                self._on_worker_gone(worker_id, lost.reason)

    def _refresh_summary(self) -> None:
        """Pull the store's dirty-shard Bloom deltas into the broadcast
        state, bumping each grown shard's version so per-worker sync
        tracking knows who is stale."""
        for shard, data in self._explored.bloom_delta():
            self._summary_versions[shard] = \
                self._summary_versions.get(shard, 0) + 1
            self._summary_payload[shard] = data

    def _summary_for(self, worker_id: int) -> BloomSummary | None:
        """The next SUMMARY_BUDGET bytes of delta bringing ``worker_id``
        toward the latest summary — ``(shard, offset, chunk)`` slices of
        the shards it has not seen at their current version — or None
        when it is already in sync.

        A shard is marked synced at the version its broadcast *started*
        with: if the shard grew mid-broadcast, the next refresh sees the
        version mismatch and re-ships it from the top.  A chunk always
        slices the current payload, so a suffix can carry newer bits
        than its prefix — harmless, bits only ever accrete."""
        synced = self._worker_synced.setdefault(worker_id, {})
        pending = self._worker_pending.setdefault(worker_id, {})
        for shard, version in self._summary_versions.items():
            if synced.get(shard) != version and shard not in pending:
                pending[shard] = (version, 0)
        if not pending:
            return None
        budget = self.SUMMARY_BUDGET
        slices = []
        for shard in sorted(pending):
            if budget <= 0:
                break
            version, offset = pending[shard]
            data = self._summary_payload[shard]
            chunk = bytes(data[offset:offset + budget])
            slices.append((shard, offset, chunk))
            budget -= len(chunk)
            offset += len(chunk)
            if offset >= len(data):
                synced[shard] = version
                del pending[shard]
            else:
                pending[shard] = (version, offset)
        return BloomSummary(self._summary_shards, self._summary_bits,
                            tuple(slices))

    def _pick_worker(self) -> int | None:
        """Next worker to feed: affine work first, then the least loaded
        (round-robin tie-break keeps spawn-order bias out)."""
        spare = [w for w in sorted(self._live)
                 if self._load[w] < self.PER_WORKER_INFLIGHT]
        if not spare:
            return None
        if self._affine:
            affine = [w for w in spare if self._queues.get(w)]
            if affine:
                return min(affine, key=lambda w: self._load[w])
        modulus = max(self._live) + 1
        choice = min(
            spare,
            key=lambda w: (self._load[w],
                           (w - self._next_round_robin) % modulus),
        )
        self._next_round_robin = (choice + 1) % modulus
        return choice

    def _node_budget(self, worker_id: int) -> int:
        """Nodes to pack into one task for this worker.

        While the explored set is small a task carries a single node, so
        the search fans out across the pool instead of running serially
        inside one worker.  After that, either the static
        ``batch_nodes`` (adaptive batching off — the measurable baseline)
        or the worker's RTT-adapted budget applies.
        """
        if len(self._explored) < 4 * max(len(self._live), 1):
            return 1
        if not self.config.adaptive_batching:
            return self.config.batch_nodes
        adapted = max(1, int(self._batch[worker_id]))
        # Fair-share guard: an RTT-*grown* batch must never swallow so
        # much of the frontier that the rest of the pool idles — cap each
        # task at this worker's share of the pending work (group count as
        # a proxy for nodes).  The cap never bites below the configured
        # ``batch_nodes`` seed: up to there the static baseline is the
        # contract, and throttling it would just add per-task overhead.
        fair = self._pending_groups // (max(len(self._live), 1)
                                        * self.PER_WORKER_INFLIGHT)
        return max(1, min(adapted, max(self.config.batch_nodes, fair)))

    def _group_budget(self, worker_id: int, node_budget: int) -> int:
        """Groups per task: the static cap, or — adaptive — the static
        groups:nodes ratio applied to the adapted node budget."""
        if not self.config.adaptive_batching:
            return self.config.batch_groups
        ratio = self.config.batch_groups / self.config.batch_nodes
        return max(1, round(node_budget * ratio))

    def _observe_rtt(self, worker_id: int, rtt: float) -> None:
        # The deadline estimator smooths every sample, independent of
        # whether batch adaptation is on — hang detection must not change
        # its trigger when the batching baseline is being measured.
        previous = self._rtt.get(worker_id)
        self._rtt[worker_id] = (rtt if previous is None else
                                (1 - self.RTT_EWMA) * previous
                                + self.RTT_EWMA * rtt)
        if not self.config.adaptive_batching \
                or worker_id not in self._batch:
            return
        budget = self._batch[worker_id]
        if rtt < self.RTT_LOW:
            # The growth ceiling never sits below a larger configured
            # seed: a fast round trip must not *shrink* --batch-nodes.
            ceiling = max(float(self.MAX_BATCH_NODES),
                          float(self.config.batch_nodes))
            budget = min(budget * self.BATCH_GROW, ceiling)
        elif rtt > self.RTT_HIGH:
            budget = max(budget * self.BATCH_SHRINK, 1.0)
        self._batch[worker_id] = budget

    def _pack(self, worker_id: int) -> list:
        """Pop up to the worker's group budget (node-budget bounded) for
        one task.  Groups owned by ``worker_id`` are taken first (affinity
        hits); an empty own queue steals from the longest other queue
        (affinity misses)."""
        budget = self._node_budget(worker_id)
        group_budget = self._group_budget(worker_id, budget)
        groups: list = []
        nodes = 0
        while self._pending_groups and len(groups) < group_budget \
                and nodes < budget:
            queue, owned = self._source_queue(worker_id)
            trace, steps = self._pop_group(queue)
            take = len(steps) if steps is not None else 1
            if steps is not None and nodes + take > budget and groups:
                # Defer an oversized group rather than overshooting,
                # putting it back where the order's next pop finds it.
                if self.config.search_order == ORDER_BFS:
                    queue.appendleft((trace, steps))
                else:
                    queue.append((trace, steps))
                break
            self._pending_groups -= 1
            if owned and self._affine:
                self.stats.affinity_hits += 1
            else:
                self.stats.affinity_misses += 1
            groups.append((trace, steps))
            nodes += take
        return groups

    def _source_queue(self, worker_id: int) -> tuple[list, bool]:
        own = self._queues.get(worker_id)
        if own:
            return own, True
        longest = max((q for q in self._queues.values() if q), key=len)
        return longest, False

    # ------------------------------------------------------------------
    # Hang detection
    # ------------------------------------------------------------------

    def _task_deadline(self, worker_id: int) -> float:
        """Seconds a freshly submitted task gets before its worker is
        declared hung; 0 disables (see the class constants)."""
        if self.config.task_deadline is not None:
            return self.config.task_deadline
        rtt = self._rtt.get(worker_id)
        if rtt is None:
            return self.DEADLINE_FLOOR
        return max(self.DEADLINE_FLOOR,
                   self.DEADLINE_RTT_FACTOR * rtt * self.PER_WORKER_INFLIGHT)

    def _recv_timeout(self) -> float | None:
        """How long ``recv`` may block: until the nearest task deadline or
        the respawn-grace deadline, or forever when neither is armed."""
        armed = list(self._deadlines.values())
        if self._respawn_deadline is not None:
            armed.append(self._respawn_deadline)
        if not armed:
            return None
        return max(0.05, min(armed) - time.monotonic())

    def _check_deadlines(self) -> None:
        """Declare workers with expired tasks hung: kill and requeue.

        Runs after every ``recv`` wakeup (results, heartbeats, and
        timeouts alike).  The kill routes the worker through the ordinary
        death path — requeue, poison attribution, respawn, policy — and
        the transport's own later WorkerGone for the killed process is
        deduplicated by ``_dead``.  Results already in the pipe from the
        killed worker no longer match ``_in_flight`` and are dropped, the
        same stale-result rule any death relies on."""
        now = time.monotonic()
        if (self._respawn_deadline is not None
                and now >= self._respawn_deadline):
            # Replacement worker(s) never joined: their seats in the
            # min_workers accounting are forfeit.  Re-apply the floor so
            # a fleet waiting on ghosts aborts instead of hanging.
            lost = self._pending_respawns
            self._pending_respawns = 0
            self._respawn_deadline = None
            if len(self._live) < self.config.min_workers:
                raise TransportError(
                    f"{lost} respawned replacement worker(s) never joined"
                    f" within {self.RESPAWN_GRACE:.0f}s and the pool"
                    f" ({len(self._live)} live) is below"
                    f" min_workers={self.config.min_workers}")
        if not self._deadlines:
            return
        expired = [task_id for task_id, deadline in self._deadlines.items()
                   if deadline <= now]
        for task_id in expired:
            held = self._in_flight.get(task_id)
            if held is None:
                self._deadlines.pop(task_id, None)
                continue
            worker_id = held[0]
            if worker_id in self._dead:
                continue  # its death is already being processed
            beat = self._last_beat.get(worker_id)
            liveness = ("no heartbeat received" if beat is None
                        else f"last heartbeat {now - beat:.1f}s ago")
            self.stats.workers_hung += 1
            print(f"search worker {worker_id} declared hung: task"
                  f" {task_id} missed its deadline ({liveness});"
                  f" killing it", file=sys.stderr, flush=True)
            try:
                self.transport.kill_worker(worker_id)
                self.stats.deadline_kills += 1
            except Exception as exc:  # noqa: BLE001 - still requeue its work
                print(f"could not kill hung worker {worker_id}: {exc}",
                      file=sys.stderr, flush=True)
            self._on_worker_gone(
                worker_id,
                f"hung: task {task_id} exceeded its deadline ({liveness})")

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    @staticmethod
    def _node_trace(groups, gi, si) -> tuple:
        trace, steps = groups[gi]
        return trace if si is None else trace + (steps[si],)

    def _merge(self, result: TaskResult) -> None:
        """Fold one task's output into the master state — or, when it
        carries digest-only stubs the authoritative store does not hold
        (Bloom false positives), park it and fetch the withheld
        transitions first."""
        if result.task_id not in self._in_flight:
            # A result that outraced its worker's death notice — organic
            # or a deadline kill: the task was already requeued, and
            # merging both copies would double-count — drop the stale one.
            return
        out = result.out
        self._inflate_digests(out)
        needed = self._stubs_needing_hydration(out)
        if not needed:
            self._finish_task(result.task_id, out)
            return
        worker_id = self._in_flight[result.task_id][0]
        self.stats.bloom_prefilter_fp += len(needed)
        # The task stays in _in_flight while the fetch round-trips, so a
        # checkpoint drain waits for it and a worker death requeues it;
        # re-arm its deadline so a worker that dies without a WorkerGone
        # (or never answers) is still caught by hang detection.
        self._awaiting[result.task_id] = out
        allowance = self._task_deadline(worker_id)
        if allowance:
            self._deadlines[result.task_id] = time.monotonic() + allowance
        try:
            self.transport.submit(
                worker_id, FetchChildren(result.task_id, needed))
        except WorkerLost as lost:
            self._on_worker_gone(worker_id, lost.reason)

    @staticmethod
    def _inflate_digests(out: dict) -> None:
        """Restore every kid's digest from the worker's packed blob (see
        ``WorkerRuntime._compact_digests``; blob order == kid order,
        bare ``None`` slots are stubs) so every kid is a plain
        ``(transition | None, digest)`` pair again before any merge
        logic looks at it."""
        packed = out.pop("kid_digests", None)
        if not packed:
            return
        encoding, width, blob = packed
        offset = 0
        for _, _, kids in out["children"]:
            for j, slot in enumerate(kids):
                record = blob[offset:offset + width]
                offset += width
                digest = (record.hex() if encoding == "hex"
                          else record.decode("ascii"))
                kids[j] = (None if slot is None else slot[0], digest)

    def _stubs_needing_hydration(self, out: dict) -> list:
        """Stub ordinals whose digest the store does *not* hold — Bloom
        false positives that must be fetched before the result can merge.

        The walk visits digests in exactly the order ``_absorb``'s
        ``add_batch`` will, and ``seen`` mirrors in-batch duplicate
        semantics: a stub whose digest appeared earlier in this same
        result is a certain revisit even when the store misses it.  Both
        predictions are stable until the merge — store membership only
        grows, so a predicted revisit can never turn fresh."""
        if not out.get("prefilter_stubs"):
            return []
        needed: list = []
        ordinal = 0
        seen: set = set()
        for _, _, kids in out["children"]:
            for transition, digest in kids:
                if transition is None:
                    if digest not in seen and digest not in self._explored:
                        needed.append(ordinal)
                    ordinal += 1
                seen.add(digest)
        return needed

    def _finish_task(self, task_id: int, out: dict) -> None:
        """Retire one completed task's bookkeeping and fold its output
        into the search state — shared by direct merges and hydration
        completions (the RTT sample of a hydrated task includes its
        fetch round-trip; it was part of the task's service time)."""
        worker_id, groups = self._in_flight.pop(task_id)
        self._awaiting.pop(task_id, None)
        self._deadlines.pop(task_id, None)
        self._load[worker_id] -= 1
        submitted = self._submit_times.pop(task_id, None)
        if submitted is not None:
            sent_at, depth = submitted
            self._observe_rtt(
                worker_id, (time.monotonic() - sent_at) / max(depth, 1))
        self.stats.worker_tasks[worker_id] = \
            self.stats.worker_tasks.get(worker_id, 0) + 1
        self._absorb(out, groups, worker_id)

    def _on_child_data(self, message: ChildData) -> None:
        """Complete (or requeue) a task parked for stub hydration."""
        out = self._awaiting.pop(message.task_id, None)
        if out is None or message.task_id not in self._in_flight:
            return  # stale: the task was already requeued (churn/deadline)
        if message.missing:
            # The worker evicted the parked children (bounded cache):
            # requeue the whole task — re-expansion plus master-side
            # dedup keeps the explored set bit-identical.
            self._requeue_task(message.task_id)
            return
        self._hydrate(out, message.children)
        self._finish_task(message.task_id, out)

    @staticmethod
    def _hydrate(out: dict, fetched: dict) -> None:
        """Patch fetched transitions into their stub slots (ordinal *i*
        is the i-th ``(None, digest)`` kid, mirroring the worker's stub
        emission order), and charge the fetched bytes back against the
        task's claimed wire savings — and onto its shipped payload: they
        crossed the wire like any other child data."""
        hydrated = len(pickle.dumps(list(fetched.values()),
                                    protocol=pickle.HIGHEST_PROTOCOL))
        out["prefilter_bytes_saved"] = max(
            0, out.get("prefilter_bytes_saved", 0) - hydrated)
        out["result_bytes"] = out.get("result_bytes", 0) + hydrated
        ordinal = 0
        for _, _, kids in out["children"]:
            for j, (transition, digest) in enumerate(kids):
                if transition is None:
                    if ordinal in fetched:
                        kids[j] = (fetched[ordinal], digest)
                    ordinal += 1

    def _requeue_task(self, task_id: int) -> None:
        """Forget a live task and push its groups back to their owner
        (its replay cache is intact — only the parked children are gone);
        the old task id's late messages then drop as stale."""
        worker_id, groups = self._in_flight.pop(task_id)
        self._awaiting.pop(task_id, None)
        self._submit_times.pop(task_id, None)
        self._deadlines.pop(task_id, None)
        self._load[worker_id] -= 1
        self.stats.tasks_retried += 1
        for group in groups:
            self.stats.groups_reassigned += 1
            self._push(worker_id, group)

    def _absorb(self, out: dict, groups, worker_id: int | None) -> None:
        """Fold one expansion output into the search state — the shared
        back half of merging, used by pool task results and quarantine
        sandbox successes alike (``worker_id`` None for the sandbox: its
        one-shot process has no replay cache to route children back to)."""
        stats = self.stats
        stats.discover_packet_runs += out["discover_packet_runs"]
        stats.discover_stats_runs += out["discover_stats_runs"]
        stats.transitions_executed += out["transitions"]
        stats.quiescent_states += out["quiescent"]
        stats.replayed_transitions += out["replayed"]
        stats.rebuilt_transitions += out["rebuilt"]
        stats.cache_hits += out["cache_hits"]
        stats.cache_misses += out["cache_misses"]
        # .get: results from pre-v4 checkpoint replays or hand-built
        # sandbox outs may lack the pre-filter keys.
        stats.bloom_prefilter_drops += out.get("prefilter_stubs", 0)
        stats.result_bytes_saved += out.get("prefilter_bytes_saved", 0)
        stats.result_payload_bytes += out.get("result_bytes", 0)
        stats.add_hash_stats(out["hash_stats"])
        for record in out["violations"]:
            # Plain violations are 6-tuples; contained model exceptions
            # carry a 7th element, the worker-side traceback.
            property_name, message, digest, gi, si, transition = record[:6]
            trace = self._node_trace(groups, gi, si)
            if transition is not None:
                trace = trace + (transition,)
            if property_name == MODEL_ERROR_PROPERTY and len(record) > 6:
                stats.model_errors += 1
                stats.violations.append(
                    ModelError(property_name, message, trace, digest,
                               stats.transitions_executed,
                               details=record[6])
                )
            else:
                stats.violations.append(
                    Violation(property_name, message, trace, digest,
                              stats.transitions_executed)
                )
            if self.config.stop_at_first_violation:
                stats.terminated = "first_violation"
                raise _StopSearch()
        if (self.config.max_transitions is not None
                and stats.transitions_executed
                >= self.config.max_transitions):
            stats.terminated = "max_transitions"
            raise _StopSearch()
        children = out["children"]
        if self.config.state_matching and children:
            # One batched store append per merged task result; add_batch
            # preserves order (and in-batch duplicate semantics), so the
            # frontier matches what per-child adds would have built.
            flags = iter(self._explored.add_batch(
                [digest for _, _, kids in children for _, digest in kids]))
            for gi, si, kids in children:
                fresh = []
                for transition, _ in kids:
                    if next(flags):
                        if transition is None:
                            # A still-stubbed kid can only be a predicted
                            # revisit; a fresh flag here means the
                            # prediction walk and the store disagree.
                            raise TransportError(
                                "dedup pre-filter invariant violated: a"
                                " fresh child arrived as a digest-only"
                                " stub")
                        fresh.append(transition)
                    else:
                        stats.revisited_states += 1
                if fresh:
                    # The worker that expanded this node holds its trace
                    # in its replay LRU — route the children back to it.
                    self._push(worker_id,
                               (self._node_trace(groups, gi, si), fresh))
        else:
            for gi, si, kids in children:
                if kids:
                    self._push(worker_id,
                               (self._node_trace(groups, gi, si),
                                [transition for transition, _ in kids]))


def _describe_exit(exitcode: int | None) -> str:
    """Human-readable subprocess exit status (signal names included)."""
    if exitcode is None:
        return "still running"
    if exitcode < 0:
        import signal

        try:
            return f"killed by {signal.Signals(-exitcode).name}"
        except ValueError:
            return f"killed by signal {-exitcode}"
    return f"exit code {exitcode}"
