"""Explicit-state model checking of the whole OpenFlow system (Section 2).

The model checker composes the controller program, the simplified switches,
and the end hosts into one :class:`~repro.mc.system.System`, explores its
transition graph with the Figure 5 search loop, matches states via canonical
serialization + hashing (Section 6), and applies the OpenFlow-specific
search strategies of Section 4.
"""

from repro.mc.canonical import canonicalize, state_hash
from repro.mc.search import Searcher, SearchResult, SearchStats, Violation
from repro.mc.strategies import make_strategy
from repro.mc.system import System
from repro.mc.transitions import Transition

__all__ = [
    "SearchResult",
    "SearchStats",
    "Searcher",
    "System",
    "Transition",
    "Violation",
    "canonicalize",
    "make_strategy",
    "state_hash",
]
