"""OpenFlow-specific search strategies (Section 4).

PKT-SEQ is always active as a bound (it lives in
:class:`~repro.config.NiceConfig` and the hosts' burst counters); the three
heuristics here prune or reshape the space of event *orderings*:

* **NO-DELAY** — controller<->switch communication is atomic: after every
  transition the control plane drains to quiescence, so rule installations
  are never interleaved with anything.  Finds basic design errors; by
  construction it misses race-condition bugs (the paper reports it misses
  BUG-V, BUG-X and BUG-XI).
* **UNUSUAL** — only explores control-message deliveries in *reverse* issue
  order: if a handler installed rules at switches 1, 2, 3, the search lets
  switch 3 apply its rule first.  Targets exactly the Figure 1 race.
* **FLOW-IR** — flow-independence reduction: when several enabled
  transitions each concern exactly one flow group (per the user-supplied
  ``is_same_flow``), only the minimal group's transitions are explored,
  fixing one relative ordering between independent groups.
"""

from __future__ import annotations

from repro.config import (
    NiceConfig,
    STRATEGY_FLOW_IR,
    STRATEGY_NO_DELAY,
    STRATEGY_PKT_SEQ,
    STRATEGY_UNUSUAL,
)
from repro.mc import transitions as tk
from repro.mc.transitions import Transition
from repro.openflow.messages import PacketIn


def default_is_same_flow(packet_a, packet_b) -> bool:
    """Default grouping: microflow identity (the OpenFlow tuple)."""
    return packet_a.flow_key() == packet_b.flow_key()


class Strategy:
    """Base strategy: no pruning (plain PKT-SEQ-bounded search)."""

    name = STRATEGY_PKT_SEQ

    def filter(self, system, enabled: list[Transition]) -> list[Transition]:
        return enabled

    def post_execute(self, system, transition: Transition) -> None:
        """Hook invoked right after every transition executes."""


class NoDelayStrategy(Strategy):
    """Instantaneous rule updates.

    "Each communication between a switch and the controller is a single
    atomic action":

    * a switch-to-controller message is handled the moment it is generated
      (the handler runs inside the generating transition, never delayed);
    * a ``process_of`` transition applies the switch's *entire* pending
      batch of controller messages at once — rule updates are
      instantaneous, so intra-switch update windows (BUG-V's
      remove-then-install gap) cannot exist.

    Different switches' control channels still interleave with data-plane
    transitions, so cross-switch installation races (BUG-IX) remain
    observable — matching the paper's Table 2, where NO-DELAY misses only
    BUG-V, BUG-X and BUG-XI.  (X and XI disappear because statistics
    replies are consumed immediately with the model's real counter values,
    so the high-load handler paths that symbolic statistics would uncover
    are never explored.)
    """

    name = STRATEGY_NO_DELAY

    def filter(self, system, enabled):
        # Switch->controller messages never wait, so no ctrl_handle /
        # ctrl_stats transitions should survive; filter defensively.
        return [t for t in enabled
                if t.kind not in (tk.CTRL_HANDLE, tk.CTRL_STATS)]

    def post_execute(self, system, transition):
        # Re-index the switch on every iteration: pumping may replace the
        # object (copy-on-write materialization), and a stale reference
        # would see the pre-copy queue forever.
        if transition.kind == tk.PROCESS_OF:
            while system.switches[transition.actor].can_process_of():
                system.pump_process_of(transition.actor)
        self._handle_pending(system)

    @staticmethod
    def _handle_pending(system):
        progress = True
        while progress:
            progress = False
            for sw_id in sorted(system.switches):
                while system.runtime.can_handle(system.switches[sw_id]):
                    system.handle_ctrl_message(system.switches[sw_id])
                    progress = True


class UnusualStrategy(Strategy):
    """Uncommon delays and reorderings of rule installations.

    When several switches hold pending controller messages, only the two
    *extreme* relative orders survive: the natural order (the oldest issued
    message first) and the fully reversed order (the newest first — the
    Figure 1 scenario where switch 3 installs before switches 2 and 1).
    Intermediate permutations are pruned, which is where the state-space
    reduction comes from; keeping the natural order alongside the reversed
    one is what lets UNUSUAL still find every bug the default search finds
    (Table 2 shows no UNUSUAL misses).

    The returned list is also *ordered* so a depth-first search tries the
    unusual interleavings first — data-plane movement ahead of rule
    installations, reversed installations ahead of natural ones — which is
    why UNUSUAL reaches BUG-VII's race an order of magnitude sooner.
    """

    name = STRATEGY_UNUSUAL

    def filter(self, system, enabled):
        def head_seq(transition):
            switch = system.switches[transition.actor]
            message = switch.ofp_in.peek()
            return getattr(message, "seq", None) or 0

        process_of = [t for t in enabled if t.kind == tk.PROCESS_OF]
        keep = set()
        if process_of:
            keep.add(min(process_of, key=head_seq))
            keep.add(max(process_of, key=head_seq))
        rest = [t for t in enabled if t.kind != tk.PROCESS_OF]

        # DFS pops from the tail, so the tail is explored first: put the
        # data-plane transitions last (explored first) and the natural-order
        # installation first (explored last).
        ordered = sorted(keep, key=head_seq)  # natural first, reversed last
        handlers = [t for t in rest
                    if t.kind in (tk.CTRL_HANDLE, tk.CTRL_STATS)]
        data = [t for t in rest
                if t.kind not in (tk.CTRL_HANDLE, tk.CTRL_STATS)]
        return ordered + handlers + data


class FlowIRStrategy(Strategy):
    """Flow-independence reduction via the user's ``is_same_flow``.

    Two complementary reductions, both fixing "one relative ordering
    between the events affecting each group" (Section 4):

    1. **Send serialization** — when a host could either *continue* an
       established flow (send a packet that ``is_same_flow`` with one
       already injected) or *initiate* a new one, only the continuations
       are explored; new flows start only once no continuation is
       available.  This is what makes FLOW-IR miss BUG-VII: the duplicate
       SYN is, per the load balancer's own ``is_same_flow``, an independent
       new flow, so it is never interleaved into the ongoing connection.
    2. **Processing order** — among enabled non-send transitions that each
       act on packets of exactly one group, only the minimal group's
       transitions are explored; these consume their packets, so no group
       starves.
    """

    name = STRATEGY_FLOW_IR

    def __init__(self, is_same_flow=None):
        self.is_same_flow = is_same_flow or default_is_same_flow

    def filter(self, system, enabled):
        enabled = self._serialize_sends(system, enabled)
        return self._reduce_processing(system, enabled)

    # -- reduction 1: send serialization --------------------------------

    def _serialize_sends(self, system, enabled):
        sends = [t for t in enabled if t.kind == tk.HOST_SEND]
        if not sends:
            return enabled
        history = system.ledger.history
        if not history:
            return enabled

        def is_continuation(transition) -> bool:
            packets = self._packets_of(system, transition)
            return any(
                self.is_same_flow(packet, old)
                for packet in packets for old in history
            )

        continuations = [t for t in sends if is_continuation(t)]
        if continuations:
            # Ongoing flows first; new flows wait.
            keep = set(map(id, continuations))
            return [t for t in enabled
                    if t.kind != tk.HOST_SEND or id(t) in keep]
        # No continuations: new flows may start, but only once no *other*
        # group's packets are still in flight — this fixes the single
        # relative ordering between independent groups.
        in_flight = list(self._in_flight_packets(system))

        def blocked(transition) -> bool:
            packets = self._packets_of(system, transition)
            return any(
                not self.is_same_flow(candidate, flying)
                for candidate in packets for flying in in_flight
            )

        return [t for t in enabled
                if t.kind != tk.HOST_SEND or not blocked(t)]

    @staticmethod
    def _in_flight_packets(system):
        """Packets inside the fabric (switch channels and buffers).

        Packets already delivered to a host's inbox or queued as replies do
        not block new groups — only the fabric must be quiet, which keeps
        the reduction at the "one relative ordering" level rather than a
        full serialization of entire exchanges.
        """
        for switch in system.switches.values():
            for port in switch.ports:
                yield from switch.port_in[port].items()
            for packet, _port in switch.buffers.values():
                yield packet

    # -- reduction 2: one processing order between groups ---------------

    def _reduce_processing(self, system, enabled):
        representatives: list = []

        def group_of(packet) -> int:
            for index, representative in enumerate(representatives):
                if self.is_same_flow(packet, representative):
                    return index
            representatives.append(packet)
            return len(representatives) - 1

        transition_group: dict[int, int | None] = {}
        for position, transition in enumerate(enabled):
            if transition.kind == tk.HOST_SEND:
                transition_group[position] = None
                continue
            packets = self._packets_of(system, transition)
            if not packets:
                transition_group[position] = None
                continue
            groups = {group_of(p) for p in packets}
            transition_group[position] = groups.pop() if len(groups) == 1 else None
        present = {g for g in transition_group.values() if g is not None}
        if len(present) <= 1:
            return enabled
        minimal = min(present)
        return [
            transition for position, transition in enumerate(enabled)
            if transition_group[position] in (None, minimal)
        ]

    def _packets_of(self, system, transition: Transition) -> list:
        """The packets a transition would act on (for grouping)."""
        kind = transition.kind
        if kind == tk.HOST_SEND:
            host = system.hosts[transition.actor]
            descriptor = transition.arg
            if descriptor[0] == "sym":
                return [transition.payload] if transition.payload else []
            if descriptor[0] == "script":
                return [host.script[descriptor[1]]]
            if descriptor[0] == "pending" and host.pending:
                return [host.pending[0]]
            return []
        if kind == tk.HOST_RECV:
            host = system.hosts[transition.actor]
            return [host.inbox[0]] if host.inbox else []
        if kind == tk.PROCESS_PKT:
            switch = system.switches[transition.actor]
            return [switch.port_in[p].peek() for p in switch.ports
                    if len(switch.port_in[p]) > 0]
        if kind == tk.CTRL_HANDLE:
            switch = system.switches[transition.actor]
            if switch.ofp_out and isinstance(switch.ofp_out.peek(), PacketIn):
                return [switch.ofp_out.peek().packet]
            return []
        return []


def make_strategy(config: NiceConfig, app=None) -> Strategy:
    """Build the strategy object selected by ``config.strategy``.

    FLOW-IR picks up the application's ``is_same_flow`` hook when present
    (Section 4: "the programmer provides isSameFlow").
    """
    if config.strategy == STRATEGY_PKT_SEQ:
        return Strategy()
    if config.strategy == STRATEGY_NO_DELAY:
        return NoDelayStrategy()
    if config.strategy == STRATEGY_UNUSUAL:
        return UnusualStrategy()
    if config.strategy == STRATEGY_FLOW_IR:
        hook = getattr(app, "is_same_flow", None) if app is not None else None
        is_same_flow = None
        if hook is not None:
            # Allow both bound methods and plain two-argument functions.
            is_same_flow = hook
        if is_same_flow is None:
            is_same_flow = config.extra.get("is_same_flow")
        return FlowIRStrategy(is_same_flow)
    raise ValueError(f"unknown strategy {config.strategy!r}")
