"""First-in first-out communication channels.

Section 2.2.2: each channel is a FIFO buffer.  Packet channels have an
optionally-enabled fault model that can drop, duplicate, or reorder packets,
or fail the link; the channel to the controller is reliable and in-order.

The fault model is expressed as *fault operations* that the model checker
turns into transitions when ``channel_faults`` is enabled, so that faults
participate in the systematic exploration instead of being random.
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import ChannelError


class Channel:
    """A FIFO buffer of items (packets or OpenFlow messages)."""

    __slots__ = ("name", "reliable", "failed", "_items")

    def __init__(self, name: str, reliable: bool = True):
        self.name = name
        #: Reliable channels (the OpenFlow control channel) never expose
        #: fault operations.
        self.reliable = reliable
        #: A failed link silently discards enqueues and never dequeues.
        self.failed = False
        self._items: list = []

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:  # truthiness == non-empty, handy in guards
        return bool(self._items)

    def enqueue(self, item) -> None:
        if self.failed:
            return
        self._items.append(item)

    def extend(self, items: Iterable) -> None:
        for item in items:
            self.enqueue(item)

    def peek(self):
        if not self._items:
            raise ChannelError(f"peek on empty channel {self.name}")
        return self._items[0]

    def dequeue(self):
        if not self._items:
            raise ChannelError(f"dequeue on empty channel {self.name}")
        return self._items.pop(0)

    def items(self) -> list:
        """A snapshot copy of the queued items (head first)."""
        return list(self._items)

    def clone(self, packet_memo: dict | None = None) -> "Channel":
        """Checkpoint copy (``System.clone``).

        With ``packet_memo`` the items are data-plane packets, which the
        switch mutates in place as they traverse it (hop recording), so
        each is memo-copied.  Without it the items are OpenFlow messages,
        immutable once enqueued, and stay shared with the original.

        Under copy-on-write checkpointing the channel is shared (inside
        its switch/host) until the owning System materializes its copy via
        ``_dirty`` — enqueue/dequeue must never run on a shared channel.
        """
        new = Channel.__new__(Channel)
        new.name = self.name
        new.reliable = self.reliable
        new.failed = self.failed
        if packet_memo is None:
            new._items = list(self._items)
        else:
            new._items = [item.copy_memo(packet_memo)
                          for item in self._items]
        return new

    def clear(self) -> list:
        drained, self._items = self._items, []
        return drained

    # ------------------------------------------------------------------
    # Fault model (only meaningful on unreliable packet channels).
    # ------------------------------------------------------------------

    def fault_operations(self) -> list[tuple]:
        """Enumerate the fault transitions currently enabled on this channel.

        Returns descriptors understood by :meth:`apply_fault`:
        ``("drop", index)``, ``("duplicate", index)``,
        ``("reorder", index)`` (swap item *index* with its successor), and
        ``("fail",)``.
        """
        if self.reliable or self.failed or not self._items:
            # Faults on an idle channel are unobservable and would keep the
            # system from ever quiescing; they are enabled only while
            # traffic is present.
            return []
        ops: list[tuple] = [("fail",)]
        for i in range(len(self._items)):
            ops.append(("drop", i))
            ops.append(("duplicate", i))
        for i in range(len(self._items) - 1):
            ops.append(("reorder", i))
        return ops

    def apply_fault(self, op: tuple):
        """Apply a fault descriptor; returns the affected item (if any)."""
        if self.reliable:
            raise ChannelError(f"fault injection on reliable channel {self.name}")
        kind = op[0]
        if kind == "fail":
            self.failed = True
            return None
        index = op[1]
        if not 0 <= index < len(self._items):
            raise ChannelError(f"fault index {index} out of range on {self.name}")
        if kind == "drop":
            return self._items.pop(index)
        if kind == "duplicate":
            # Insert a distinct copy, not an alias: packets are mutated in
            # place as they traverse switches (hop recording), so an alias
            # left behind would see the other copy's hops — and would leave
            # stale memoized canonical forms once the aliases end up in
            # different components (System._dirty tracks mutations per
            # component).  Items without a copy() are immutable test values.
            item = self._items[index]
            dup = item.copy() if hasattr(item, "copy") else item
            self._items.insert(index, dup)
            return self._items[index]
        if kind == "reorder":
            if index + 1 >= len(self._items):
                raise ChannelError(f"reorder at tail of {self.name}")
            self._items[index], self._items[index + 1] = (
                self._items[index + 1],
                self._items[index],
            )
            return self._items[index]
        raise ChannelError(f"unknown fault op {op!r}")

    def canonical(self) -> tuple:
        """Stable serialization for state hashing."""
        def enc(item):
            canon = getattr(item, "canonical", None)
            return canon() if callable(canon) else item

        return (self.name, self.failed, tuple(enc(item) for item in self._items))

    def __repr__(self) -> str:
        state = "FAILED " if self.failed else ""
        return f"Channel({self.name}, {state}{len(self._items)} items)"
