"""Rule actions.

The paper's rules carry action lists: forwarding to a port, flooding,
dropping (an empty action list in real OpenFlow; an explicit action here so
tests read clearly), sending to the controller, and header modification.
Actions are plain, hashable value objects; the switch model interprets them.
"""

from __future__ import annotations

from repro.openflow.packet import MacAddress

#: Pseudo-port numbers, mirroring OFPP_FLOOD / OFPP_CONTROLLER.
FLOOD_PORT = 0xFFFB
CONTROLLER_PORT = 0xFFFD


class Action:
    """Base class for actions; subclasses are immutable value objects."""

    __slots__ = ()

    def canonical(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.canonical()))


class ActionOutput(Action):
    """Forward the packet out a specific port."""

    __slots__ = ("port",)

    def __init__(self, port: int):
        self.port = port

    def canonical(self) -> tuple:
        return ("output", self.port)

    def __repr__(self) -> str:
        return f"Output({self.port})"


class ActionFlood(Action):
    """Send the packet out every port except the one it arrived on."""

    __slots__ = ()

    def canonical(self) -> tuple:
        return ("flood",)

    def __repr__(self) -> str:
        return "Flood()"


class ActionDrop(Action):
    """Discard the packet."""

    __slots__ = ()

    def canonical(self) -> tuple:
        return ("drop",)

    def __repr__(self) -> str:
        return "Drop()"


class ActionController(Action):
    """Buffer the packet and send a packet-in (reason ACTION) to the controller."""

    __slots__ = ()

    def canonical(self) -> tuple:
        return ("controller",)

    def __repr__(self) -> str:
        return "ToController()"


class ActionTable(Action):
    """Process the packet through the flow table (OFPP_TABLE).

    Only valid inside packet-out messages; NOX's pyswitch releases buffered
    packets this way so they follow the rule just installed.
    """

    __slots__ = ()

    def canonical(self) -> tuple:
        return ("table",)

    def __repr__(self) -> str:
        return "ViaTable()"


class ActionSetDlSrc(Action):
    """Rewrite the Ethernet source address."""

    __slots__ = ("mac",)

    def __init__(self, mac: MacAddress):
        self.mac = mac

    def canonical(self) -> tuple:
        return ("set_dl_src", self.mac.canonical())

    def __repr__(self) -> str:
        return f"SetDlSrc({self.mac})"


class ActionSetDlDst(Action):
    """Rewrite the Ethernet destination address."""

    __slots__ = ("mac",)

    def __init__(self, mac: MacAddress):
        self.mac = mac

    def canonical(self) -> tuple:
        return ("set_dl_dst", self.mac.canonical())

    def __repr__(self) -> str:
        return f"SetDlDst({self.mac})"


def actions_from_pair(kind: str, arg) -> list[Action]:
    """Translate the paper's ``[OUTPUT, outport]`` action-pair style.

    Figure 3 writes ``actions = [OUTPUT, outport]``; this helper lets the
    reimplemented applications keep that shape.
    """
    kind = kind.lower()
    if kind == "output":
        return [ActionOutput(int(arg))]
    if kind == "flood":
        return [ActionFlood()]
    if kind == "drop":
        return [ActionDrop()]
    if kind == "controller":
        return [ActionController()]
    raise ValueError(f"unknown action kind {kind!r}")


def canonical_actions(actions: list[Action]) -> tuple:
    """Stable serialization of an action list for state hashing."""
    return tuple(action.canonical() for action in actions)
