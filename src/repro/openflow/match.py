"""Flow-table match patterns.

A :class:`Match` is a pattern over the OpenFlow header tuple.  Every field is
either a concrete value ("exact match") or ``None`` ("don't care").  IPv4
source/destination additionally support prefix wildcards — the load-balancer
application of Section 8.2 divides client IP space with wildcard rules like
``nw_src=64.0.0.0/2``.

Field-name constants (``DL_SRC`` etc.) mirror the names used in Figure 3 so
application code reads like the paper's pseudo-code.
"""

from __future__ import annotations

from repro.openflow.packet import MacAddress, Packet, ip_to_string

DL_SRC = "dl_src"
DL_DST = "dl_dst"
DL_TYPE = "dl_type"
IN_PORT = "in_port"
NW_SRC = "nw_src"
NW_DST = "nw_dst"
NW_PROTO = "nw_proto"
TP_SRC = "tp_src"
TP_DST = "tp_dst"

#: All match field names in canonical order.
MATCH_FIELDS = (
    IN_PORT,
    DL_SRC,
    DL_DST,
    DL_TYPE,
    NW_SRC,
    NW_DST,
    NW_PROTO,
    TP_SRC,
    TP_DST,
)


def _prefix_mask(bits: int) -> int:
    if not 0 <= bits <= 32:
        raise ValueError(f"prefix length out of range: {bits}")
    return 0 if bits == 0 else (0xFFFFFFFF << (32 - bits)) & 0xFFFFFFFF


class Match:
    """A match pattern; unspecified fields are wildcards.

    ``nw_src``/``nw_dst`` accept either a plain int (exact /32 match) or an
    ``(address, prefix_len)`` pair.
    """

    __slots__ = (
        "in_port",
        "dl_src",
        "dl_dst",
        "dl_type",
        "nw_src",
        "nw_src_bits",
        "nw_dst",
        "nw_dst_bits",
        "nw_proto",
        "tp_src",
        "tp_dst",
        "_canon",
    )

    def __init__(
        self,
        in_port: int | None = None,
        dl_src: MacAddress | None = None,
        dl_dst: MacAddress | None = None,
        dl_type: int | None = None,
        nw_src: int | tuple[int, int] | None = None,
        nw_dst: int | tuple[int, int] | None = None,
        nw_proto: int | None = None,
        tp_src: int | None = None,
        tp_dst: int | None = None,
    ):
        self.in_port = in_port
        self.dl_src = dl_src
        self.dl_dst = dl_dst
        self.dl_type = dl_type
        self.nw_src, self.nw_src_bits = self._parse_nw(nw_src)
        self.nw_dst, self.nw_dst_bits = self._parse_nw(nw_dst)
        self.nw_proto = nw_proto
        self.tp_src = tp_src
        self.tp_dst = tp_dst
        #: Lazily rendered canonical form; patterns are immutable once
        #: built, and flow-table hashing renders them constantly.
        self._canon: tuple | None = None

    @staticmethod
    def _parse_nw(spec: int | tuple[int, int] | None) -> tuple[int | None, int]:
        if spec is None:
            return None, 0
        if isinstance(spec, tuple):
            addr, bits = spec
            mask = _prefix_mask(bits)
            return addr & mask, bits
        return spec & 0xFFFFFFFF, 32

    @classmethod
    def from_dict(cls, fields: dict) -> "Match":
        """Build a match from a ``{DL_SRC: ..., IN_PORT: ...}`` dict.

        This is the construction style of Figure 3, line 11.
        """
        unknown = set(fields) - set(MATCH_FIELDS)
        if unknown:
            raise ValueError(f"unknown match fields: {sorted(unknown)}")
        return cls(**{name: fields.get(name) for name in MATCH_FIELDS})

    @classmethod
    def exact_from_packet(cls, packet: Packet, in_port: int) -> "Match":
        """The microflow rule pattern: exact match on every field."""
        return cls(
            in_port=in_port,
            dl_src=packet.eth_src,
            dl_dst=packet.eth_dst,
            dl_type=packet.eth_type,
            nw_src=packet.ip_src,
            nw_dst=packet.ip_dst,
            nw_proto=packet.nw_proto,
            tp_src=packet.tp_src,
            tp_dst=packet.tp_dst,
        )

    def matches(self, packet: Packet, in_port: int) -> bool:
        """True when ``packet`` arriving on ``in_port`` satisfies the pattern."""
        if self.in_port is not None and in_port != self.in_port:
            return False
        if self.dl_src is not None and packet.eth_src != self.dl_src:
            return False
        if self.dl_dst is not None and packet.eth_dst != self.dl_dst:
            return False
        if self.dl_type is not None and packet.eth_type != self.dl_type:
            return False
        if self.nw_src is not None:
            mask = _prefix_mask(self.nw_src_bits)
            if (packet.ip_src & mask) != self.nw_src:
                return False
        if self.nw_dst is not None:
            mask = _prefix_mask(self.nw_dst_bits)
            if (packet.ip_dst & mask) != self.nw_dst:
                return False
        if self.nw_proto is not None and packet.nw_proto != self.nw_proto:
            return False
        if self.tp_src is not None and packet.tp_src != self.tp_src:
            return False
        if self.tp_dst is not None and packet.tp_dst != self.tp_dst:
            return False
        return True

    def is_exact(self) -> bool:
        """True for microflow rules (every field concrete, /32 prefixes)."""
        all_set = all(
            getattr(self, name) is not None
            for name in ("in_port", "dl_src", "dl_dst", "dl_type", "nw_proto",
                         "tp_src", "tp_dst")
        )
        return (
            all_set
            and self.nw_src is not None and self.nw_src_bits == 32
            and self.nw_dst is not None and self.nw_dst_bits == 32
        )

    def specificity(self) -> int:
        """Count of constrained bits; a rough tiebreaker for overlap order."""
        score = 0
        for name in (self.in_port, self.dl_type, self.nw_proto, self.tp_src,
                     self.tp_dst):
            if name is not None:
                score += 16
        if self.dl_src is not None:
            score += 48
        if self.dl_dst is not None:
            score += 48
        score += self.nw_src_bits + self.nw_dst_bits
        return score

    def overlaps(self, other: "Match") -> bool:
        """True if some packet could match both patterns."""
        def scalar_clash(a, b):
            return a is not None and b is not None and a != b

        if scalar_clash(self.in_port, other.in_port):
            return False
        if scalar_clash(self.dl_src, other.dl_src):
            return False
        if scalar_clash(self.dl_dst, other.dl_dst):
            return False
        if scalar_clash(self.dl_type, other.dl_type):
            return False
        if scalar_clash(self.nw_proto, other.nw_proto):
            return False
        if scalar_clash(self.tp_src, other.tp_src):
            return False
        if scalar_clash(self.tp_dst, other.tp_dst):
            return False
        for a_addr, a_bits, b_addr, b_bits in (
            (self.nw_src, self.nw_src_bits, other.nw_src, other.nw_src_bits),
            (self.nw_dst, self.nw_dst_bits, other.nw_dst, other.nw_dst_bits),
        ):
            if a_addr is None or b_addr is None:
                continue
            bits = min(a_bits, b_bits)
            mask = _prefix_mask(bits)
            if (a_addr & mask) != (b_addr & mask):
                return False
        return True

    def canonical(self) -> tuple:
        """Stable, order-independent serialization for state hashing
        (cached: patterns never change after construction)."""
        canon = self._canon
        if canon is not None:
            return canon

        def enc(value):
            if value is None:
                return "*"
            if isinstance(value, MacAddress):
                return value.canonical()
            return value

        canon = self._canon = (
            enc(self.in_port),
            enc(self.dl_src),
            enc(self.dl_dst),
            enc(self.dl_type),
            "*" if self.nw_src is None else (self.nw_src, self.nw_src_bits),
            "*" if self.nw_dst is None else (self.nw_dst, self.nw_dst_bits),
            enc(self.nw_proto),
            enc(self.tp_src),
            enc(self.tp_dst),
        )
        return canon

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Match):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        parts = []
        for name in MATCH_FIELDS:
            if name == NW_SRC and self.nw_src is not None:
                parts.append(f"nw_src={ip_to_string(self.nw_src)}/{self.nw_src_bits}")
            elif name == NW_DST and self.nw_dst is not None:
                parts.append(f"nw_dst={ip_to_string(self.nw_dst)}/{self.nw_dst_bits}")
            else:
                value = getattr(self, name, None)
                if value is not None:
                    parts.append(f"{name}={value}")
        return f"Match({', '.join(parts) or '*'})"
