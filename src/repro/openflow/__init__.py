"""Simplified OpenFlow data plane: packets, matches, rules, switches.

This package implements the paper's simplified switch model (Section 2.2.2):
first-in first-out communication channels with an optional fault model, a
flow table with a canonical representation that merges semantically
equivalent states, and two transitions — ``process_pkt`` and ``process_of``.
"""

from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    ActionSetDlDst,
    ActionSetDlSrc,
    ActionTable,
    CONTROLLER_PORT,
    FLOOD_PORT,
)
from repro.openflow.channels import Channel
from repro.openflow.flowtable import FlowTable
from repro.openflow.match import Match
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    PacketIn,
    PacketOut,
    PortStatus,
    StatsReply,
    StatsRequest,
    OFPFC_ADD,
    OFPFC_DELETE,
    OFPFC_DELETE_STRICT,
    OFPR_ACTION,
    OFPR_NO_MATCH,
)
from repro.openflow.packet import (
    ETH_TYPE_ARP,
    ETH_TYPE_IP,
    ETH_TYPE_LLDP,
    IPPROTO_ICMP,
    IPPROTO_TCP,
    IPPROTO_UDP,
    MacAddress,
    Packet,
    TCP_ACK,
    TCP_FIN,
    TCP_RST,
    TCP_SYN,
)
from repro.openflow.rules import Rule, PERMANENT
from repro.openflow.switch import SwitchModel

__all__ = [
    "ActionController",
    "ActionDrop",
    "ActionFlood",
    "ActionOutput",
    "ActionSetDlDst",
    "ActionSetDlSrc",
    "ActionTable",
    "BarrierReply",
    "BarrierRequest",
    "Channel",
    "CONTROLLER_PORT",
    "ETH_TYPE_ARP",
    "ETH_TYPE_IP",
    "ETH_TYPE_LLDP",
    "FLOOD_PORT",
    "FlowMod",
    "FlowRemoved",
    "FlowTable",
    "IPPROTO_ICMP",
    "IPPROTO_TCP",
    "IPPROTO_UDP",
    "MacAddress",
    "Match",
    "OFPFC_ADD",
    "OFPFC_DELETE",
    "OFPFC_DELETE_STRICT",
    "OFPR_ACTION",
    "OFPR_NO_MATCH",
    "Packet",
    "PacketIn",
    "PacketOut",
    "PERMANENT",
    "PortStatus",
    "Rule",
    "StatsReply",
    "StatsRequest",
    "SwitchModel",
    "TCP_ACK",
    "TCP_FIN",
    "TCP_RST",
    "TCP_SYN",
]
