"""Packets and address types.

A :class:`Packet` is the unit of data-plane traffic.  Header fields follow
the OpenFlow 1.0 twelve-tuple restricted to the fields the paper's
applications use: input port (kept outside the packet), Ethernet
source/destination/type, IPv4 source/destination/protocol, and TCP/UDP
source/destination ports, plus TCP flags (the load balancer inspects SYN
bits) and the ARP opcode.

MAC addresses are :class:`MacAddress` values — 6-byte sequences supporting
the byte indexing used by controller programs (``pkt.src[0] & 1`` tests the
broadcast/multicast bit, exactly as in Figure 3 of the paper).

Packets also carry *model metadata* that is not part of any header: a unique
id (``uid``) assigned at injection time, a ``copy_id`` distinguishing flood
copies, and the list of ``(switch, in_port)`` hops traversed, which the
NoForwardingLoops property inspects.
"""

from __future__ import annotations

from typing import Iterator, Sequence

ETH_TYPE_IP = 0x0800
ETH_TYPE_ARP = 0x0806
ETH_TYPE_LLDP = 0x88CC

IPPROTO_ICMP = 1
IPPROTO_TCP = 6
IPPROTO_UDP = 17

TCP_FIN = 0x01
TCP_SYN = 0x02
TCP_RST = 0x04
TCP_ACK = 0x10

ARP_REQUEST = 1
ARP_REPLY = 2


class MacAddress:
    """An immutable 6-byte MAC address supporting byte indexing.

    >>> mac = MacAddress.from_string("00:00:00:00:00:01")
    >>> mac[0] & 1        # broadcast bit of the first byte
    0
    >>> MacAddress.broadcast()[0] & 1
    1
    """

    __slots__ = ("_bytes", "_canon")

    def __init__(self, data: Sequence[int]):
        data = tuple(int(b) for b in data)
        if len(data) != 6:
            raise ValueError(f"MAC address needs 6 bytes, got {len(data)}")
        for b in data:
            if not 0 <= b <= 0xFF:
                raise ValueError(f"MAC byte out of range: {b}")
        self._bytes = data
        #: Lazily rendered canonical text; immutable address, safe to keep.
        self._canon: str | None = None

    @classmethod
    def from_string(cls, text: str) -> "MacAddress":
        parts = text.split(":")
        if len(parts) != 6:
            raise ValueError(f"malformed MAC address {text!r}")
        return cls(tuple(int(p, 16) for p in parts))

    @classmethod
    def from_int(cls, value: int) -> "MacAddress":
        if not 0 <= value < (1 << 48):
            raise ValueError(f"MAC integer out of range: {value}")
        return cls(tuple((value >> (8 * (5 - i))) & 0xFF for i in range(6)))

    @classmethod
    def broadcast(cls) -> "MacAddress":
        return cls((0xFF,) * 6)

    def to_int(self) -> int:
        value = 0
        for b in self._bytes:
            value = (value << 8) | b
        return value

    @property
    def is_broadcast(self) -> bool:
        """True for group (broadcast/multicast) addresses: low bit of byte 0."""
        return bool(self._bytes[0] & 1)

    def __getitem__(self, index: int) -> int:
        return self._bytes[index]

    def __iter__(self) -> Iterator[int]:
        return iter(self._bytes)

    def __len__(self) -> int:
        return 6

    def __eq__(self, other: object) -> bool:
        if isinstance(other, MacAddress):
            return self._bytes == other._bytes
        if isinstance(other, (tuple, list)):
            return self._bytes == tuple(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._bytes)

    def __repr__(self) -> str:
        return ":".join(f"{b:02x}" for b in self._bytes)

    def canonical(self) -> str:
        """Stable serialization used for state hashing (cached: the address
        is immutable and state hashing renders it constantly)."""
        canon = self._canon
        if canon is None:
            canon = self._canon = repr(self)
        return canon


def ip_from_string(text: str) -> int:
    """Parse dotted-quad IPv4 text into a 32-bit integer."""
    parts = text.split(".")
    if len(parts) != 4:
        raise ValueError(f"malformed IPv4 address {text!r}")
    value = 0
    for p in parts:
        octet = int(p)
        if not 0 <= octet <= 255:
            raise ValueError(f"IPv4 octet out of range in {text!r}")
        value = (value << 8) | octet
    return value


def ip_to_string(value: int) -> str:
    """Format a 32-bit integer as dotted-quad IPv4 text."""
    return ".".join(str((value >> (8 * (3 - i))) & 0xFF) for i in range(4))


class Packet:
    """A data-plane packet: header fields plus model metadata.

    Header fields default to zero/None so tests can build minimal packets.
    ``size`` stands in for the wire length and feeds rule byte counters.
    """

    __slots__ = (
        "eth_src",
        "eth_dst",
        "eth_type",
        "ip_src",
        "ip_dst",
        "nw_proto",
        "tp_src",
        "tp_dst",
        "tcp_flags",
        "arp_op",
        "payload",
        "size",
        "uid",
        "copy_id",
        "hops",
        "_header",
    )

    def __init__(
        self,
        eth_src: MacAddress,
        eth_dst: MacAddress,
        eth_type: int = ETH_TYPE_IP,
        ip_src: int = 0,
        ip_dst: int = 0,
        nw_proto: int = 0,
        tp_src: int = 0,
        tp_dst: int = 0,
        tcp_flags: int = 0,
        arp_op: int = 0,
        payload: str = "",
        size: int = 64,
        uid: int = -1,
    ):
        self.eth_src = eth_src
        self.eth_dst = eth_dst
        self.eth_type = eth_type
        self.ip_src = ip_src
        self.ip_dst = ip_dst
        self.nw_proto = nw_proto
        self.tp_src = tp_src
        self.tp_dst = tp_dst
        self.tcp_flags = tcp_flags
        self.arp_op = arp_op
        self.payload = payload
        self.size = size
        self.uid = uid
        #: Flood copies extend this tuple with ``(switch, out_port)`` so copy
        #: identity is deterministic and independent of event interleaving
        #: (a per-switch counter would make equivalent states hash apart).
        self.copy_id: tuple = ()
        self.hops: list[tuple[str, int]] = []
        #: Lazily built header tuple.  The pipeline only rewrites header
        #: fields on freshly made copies (set-dl actions, ARP resolution),
        #: never on a packet that has already been observed/hashed, so the
        #: cache cannot go stale; identity fields (uid/copy_id/hops) do
        #: mutate in place and are deliberately not cached.
        self._header: tuple | None = None

    # Aliases matching the names controller programs use (Figure 3 uses
    # pkt.src / pkt.dst / pkt.type for the Ethernet header).
    @property
    def src(self) -> MacAddress:
        return self.eth_src

    @property
    def dst(self) -> MacAddress:
        return self.eth_dst

    @property
    def type(self) -> int:
        return self.eth_type

    def header_tuple(self) -> tuple:
        """All header fields, used for equality and canonical serialization."""
        header = self._header
        if header is None:
            header = self._header = (
                self.eth_src.canonical(),
                self.eth_dst.canonical(),
                self.eth_type,
                self.ip_src,
                self.ip_dst,
                self.nw_proto,
                self.tp_src,
                self.tp_dst,
                self.tcp_flags,
                self.arp_op,
                self.payload,
                self.size,
            )
        return header

    def flow_key(self) -> tuple:
        """Microflow identity: the 5-tuple plus MACs, ignoring flags/payload.

        Used by the FLOW-IR strategy's default ``is_same_flow`` and by the
        FlowAffinity property to group packets of one TCP connection.
        """
        return self.header_tuple()[:8]

    def same_headers(self, other: "Packet") -> bool:
        return self.header_tuple() == other.header_tuple()

    def copy(self, new_copy_id: tuple | None = None) -> "Packet":
        """Duplicate this packet (e.g. for flooding), keeping uid and hops."""
        dup = Packet(
            eth_src=self.eth_src,
            eth_dst=self.eth_dst,
            eth_type=self.eth_type,
            ip_src=self.ip_src,
            ip_dst=self.ip_dst,
            nw_proto=self.nw_proto,
            tp_src=self.tp_src,
            tp_dst=self.tp_dst,
            tcp_flags=self.tcp_flags,
            arp_op=self.arp_op,
            payload=self.payload,
            size=self.size,
            uid=self.uid,
        )
        dup.copy_id = self.copy_id if new_copy_id is None else new_copy_id
        dup.hops = list(self.hops)
        return dup

    def copy_memo(self, memo: dict) -> "Packet":
        """Memoized :meth:`copy` for checkpointing (``System.clone``).

        Keyed by ``id``: packets aliased in the source state (e.g. buffered
        *and* queued) stay aliased in the copy, exactly as one ``deepcopy``
        pass over the whole system would leave them.
        """
        dup = memo.get(id(self))
        if dup is None:
            dup = self.copy()
            memo[id(self)] = dup
        return dup

    def canonical(self) -> tuple:
        """Stable serialization for state hashing (includes identity)."""
        return self.header_tuple() + (self.uid, self.copy_id, tuple(self.hops))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def __repr__(self) -> str:
        kind = {ETH_TYPE_IP: "ip", ETH_TYPE_ARP: "arp", ETH_TYPE_LLDP: "lldp"}.get(
            self.eth_type, hex(self.eth_type)
        )
        return (
            f"Packet#{self.uid}.{self.copy_id}({kind} {self.eth_src}->{self.eth_dst}"
            f" nw={ip_to_string(self.ip_src)}->{ip_to_string(self.ip_dst)}"
            f" tp={self.tp_src}->{self.tp_dst})"
        )


def l2_ping(src: MacAddress, dst: MacAddress, payload: str = "ping") -> Packet:
    """The paper's "layer-2 ping": a minimal Ethernet frame from src to dst."""
    return Packet(eth_src=src, eth_dst=dst, eth_type=ETH_TYPE_IP, payload=payload)


def l2_pong(ping: Packet) -> Packet:
    """The reply to :func:`l2_ping` — swaps source and destination.

    The pong inherits the ping's payload tag (``ping3`` -> ``pong3``) so a
    ping/pong exchange stays recognizable as one flow group for FLOW-IR.
    """
    payload = str(ping.payload)
    tag = payload[4:] if payload.startswith("ping") else ""
    return Packet(
        eth_src=ping.eth_dst, eth_dst=ping.eth_src, eth_type=ping.eth_type,
        payload=f"pong{tag}",
    )


def tcp_packet(
    src: MacAddress,
    dst: MacAddress,
    ip_src: int,
    ip_dst: int,
    tp_src: int,
    tp_dst: int,
    flags: int = 0,
    payload: str = "",
) -> Packet:
    """Build a TCP segment (SYN/ACK/data depending on ``flags``/``payload``)."""
    return Packet(
        eth_src=src,
        eth_dst=dst,
        eth_type=ETH_TYPE_IP,
        ip_src=ip_src,
        ip_dst=ip_dst,
        nw_proto=IPPROTO_TCP,
        tp_src=tp_src,
        tp_dst=tp_dst,
        tcp_flags=flags,
        payload=payload,
    )


def arp_request(src: MacAddress, ip_src: int, ip_dst: int) -> Packet:
    """Build an ARP who-has request (broadcast destination)."""
    return Packet(
        eth_src=src,
        eth_dst=MacAddress.broadcast(),
        eth_type=ETH_TYPE_ARP,
        ip_src=ip_src,
        ip_dst=ip_dst,
        arp_op=ARP_REQUEST,
    )


def arp_reply(src: MacAddress, dst: MacAddress, ip_src: int, ip_dst: int) -> Packet:
    """Build an ARP is-at reply."""
    return Packet(
        eth_src=src,
        eth_dst=dst,
        eth_type=ETH_TYPE_ARP,
        ip_src=ip_src,
        ip_dst=ip_dst,
        arp_op=ARP_REPLY,
    )
