"""The simplified OpenFlow switch model (Section 2.2.2).

The switch is a set of communication channels, a flow table, and two
transitions:

* ``process_pkt`` — dequeues the first packet from *each* non-empty packet
  channel and processes all of them against the flow table as a single
  transition.  (Safe because the model checker already explores all packet
  arrival orderings; the paper makes the same optimization.)
* ``process_of`` — dequeues and applies one OpenFlow message from the
  controller channel.

A packet with no matching rule is buffered and announced to the controller
with a ``packet_in`` carrying reason ``NO_MATCH``; a rule whose action list
contains :class:`~repro.openflow.actions.ActionController` buffers the packet
with reason ``ACTION``.  The distinction matters: BUG-V in the paper's load
balancer stems from a handler that ignores ``NO_MATCH`` arrivals.

The switch never routes packets itself — transitions return *emissions*
(``(out_port, packet)`` pairs) that the surrounding
:class:`~repro.mc.system.System` delivers along links, so the switch stays
independently testable.
"""

from __future__ import annotations

from repro.errors import SwitchError
from repro.openflow.actions import (
    ActionController,
    ActionDrop,
    ActionFlood,
    ActionOutput,
    ActionSetDlDst,
    ActionSetDlSrc,
)
from repro.openflow.channels import Channel
from repro.openflow.flowtable import FlowTable
from repro.openflow.messages import (
    BarrierReply,
    BarrierRequest,
    FlowMod,
    FlowRemoved,
    OFPFC_ADD,
    OFPFC_DELETE,
    OFPFC_DELETE_STRICT,
    OFPR_ACTION,
    OFPR_NO_MATCH,
    PacketIn,
    PacketOut,
    StatsReply,
    StatsRequest,
)
from repro.openflow.packet import Packet
from repro.openflow.rules import Rule


def _new_port_stats() -> dict:
    return {"rx_packets": 0, "tx_packets": 0, "rx_bytes": 0, "tx_bytes": 0}


class SwitchModel:
    """One OpenFlow switch in the model."""

    def __init__(self, switch_id: str, ports: list[int],
                 canonical_flow_tables: bool = True,
                 reliable_packet_channels: bool = True):
        self.switch_id = switch_id
        self.ports = tuple(sorted(ports))
        if len(set(self.ports)) != len(self.ports):
            raise SwitchError(f"duplicate ports on switch {switch_id}")
        self.table = FlowTable(canonical=canonical_flow_tables)
        #: Per-port incoming packet channels.  ``reliable_packet_channels``
        #: False enables the optional fault model on them.
        self.port_in: dict[int, Channel] = {
            port: Channel(f"{switch_id}:port{port}", reliable=reliable_packet_channels)
            for port in self.ports
        }
        #: Control channels; reliable and in-order per the paper.
        self.ofp_in = Channel(f"ctrl->{switch_id}")
        self.ofp_out = Channel(f"{switch_id}->ctrl")
        #: Packets awaiting a controller decision: buffer_id -> (packet, in_port).
        self.buffers: dict[int, tuple[Packet, int]] = {}
        self._next_buffer_id = 1
        self.port_stats: dict[int, dict] = {
            port: _new_port_stats() for port in self.ports
        }
        self.port_up: dict[int, bool] = {port: True for port in self.ports}
        #: uids of packets discarded by an explicit drop rule or by a
        #: buffer-discarding packet-out; the packet ledger reads these.
        self.dropped: list[tuple] = []
        #: Whether rule/port counters participate in the state hash (see
        #: NiceConfig.hash_counters).  Counters always *function*; this only
        #: controls state-matching granularity.
        self.hash_counters = False
        #: History of every packet handed to the controller: (packet copy,
        #: reason) in occurrence order.  Properties read it (a pending
        #: PacketIn may be consumed within the same atomic step under
        #: NO-DELAY, so queue contents alone are not observable enough).
        #: History, not state: excluded from canonical().
        self.packet_in_log: list[tuple[Packet, str]] = []

    def clone(self, packet_memo: dict) -> "SwitchModel":
        """Checkpoint copy (``System.clone``), ~10x cheaper than deepcopy.

        Shared with the original: queued OpenFlow messages (immutable once
        enqueued — ``PacketIn`` carries a private packet copy, packet-outs
        copy before emitting) and the ``packet_in_log`` entries (private
        copies, read-only).  Memo-copied: data-plane packets in the port
        channels and the controller-decision buffers, which the pipeline
        mutates in place (hop recording, identity reset on release).

        Under copy-on-write checkpointing (``cow_clone``) this runs
        *lazily*: the whole switch stays shared between parent and child
        until ``System._dirty`` materializes the mutating side's own copy,
        so all mutation must go through the owning System (DESIGN.md,
        "Per-state hot path").
        """
        new = SwitchModel.__new__(SwitchModel)
        new.switch_id = self.switch_id
        new.ports = self.ports
        new.table = self.table.clone()
        new.port_in = {port: channel.clone(packet_memo)
                       for port, channel in self.port_in.items()}
        new.ofp_in = self.ofp_in.clone()
        new.ofp_out = self.ofp_out.clone()
        new.buffers = {
            buffer_id: (packet.copy_memo(packet_memo), in_port)
            for buffer_id, (packet, in_port) in self.buffers.items()
        }
        new._next_buffer_id = self._next_buffer_id
        new.port_stats = {port: dict(stats)
                          for port, stats in self.port_stats.items()}
        new.port_up = dict(self.port_up)
        new.dropped = list(self.dropped)
        new.hash_counters = self.hash_counters
        new.packet_in_log = list(self.packet_in_log)
        return new

    # ------------------------------------------------------------------
    # Transition guards
    # ------------------------------------------------------------------

    def can_process_pkt(self) -> bool:
        return any(len(ch) > 0 for ch in self.port_in.values())

    def can_process_of(self) -> bool:
        return len(self.ofp_in) > 0

    # ------------------------------------------------------------------
    # process_pkt
    # ------------------------------------------------------------------

    def process_pkt(self) -> list[tuple[int, Packet]]:
        """Dequeue the head packet of every non-empty channel and process it.

        Returns the emissions ``(out_port, packet)`` for the system to route.
        """
        if not self.can_process_pkt():
            raise SwitchError(f"process_pkt on {self.switch_id} with empty channels")
        emissions: list[tuple[int, Packet]] = []
        for port in self.ports:
            channel = self.port_in[port]
            if len(channel) == 0:
                continue
            packet = channel.dequeue()
            emissions.extend(self._handle_packet(packet, port))
        return emissions

    def _handle_packet(self, packet: Packet, in_port: int) -> list[tuple[int, Packet]]:
        stats = self.port_stats[in_port]
        stats["rx_packets"] += 1
        stats["rx_bytes"] += packet.size
        packet.hops.append((self.switch_id, in_port))

        rule = self.table.lookup(packet, in_port)
        if rule is None:
            self._buffer_and_notify(packet, in_port, OFPR_NO_MATCH)
            return []
        rule.record_hit(packet.size)
        return self._apply_actions(rule.actions, packet, in_port)

    def _buffer_and_notify(self, packet: Packet, in_port: int, reason: str) -> None:
        buffer_id = self._next_buffer_id
        self._next_buffer_id += 1
        self.buffers[buffer_id] = (packet, in_port)
        self.packet_in_log.append((packet.copy(), reason))
        self.ofp_out.enqueue(
            PacketIn(self.switch_id, in_port, packet.copy(), buffer_id, reason)
        )

    def _apply_actions(self, actions, packet: Packet,
                       in_port: int) -> list[tuple[int, Packet]]:
        """Interpret an action list; returns emissions."""
        emissions: list[tuple[int, Packet]] = []
        working = packet
        explicit_drop = False
        for action in actions:
            if isinstance(action, ActionOutput):
                emissions.append((action.port, working))
            elif isinstance(action, ActionFlood):
                for port in self.ports:
                    if port != in_port and self.port_up[port]:
                        emissions.append((port, working))
            elif isinstance(action, ActionController):
                # Buffer a copy: with an output action in the same list the
                # packet object is also emitted, and the two references must
                # not share in-place hop mutations (see Channel.apply_fault).
                self._buffer_and_notify(working.copy(), in_port, OFPR_ACTION)
            elif isinstance(action, ActionDrop):
                explicit_drop = True
            elif isinstance(action, ActionSetDlSrc):
                working = working.copy()
                working.eth_src = action.mac
            elif isinstance(action, ActionSetDlDst):
                working = working.copy()
                working.eth_dst = action.mac
            else:
                raise SwitchError(f"unknown action {action!r}")
        if explicit_drop and not emissions:
            self.dropped.append(("rule_drop", packet.uid, packet.copy_id))
        return self._materialize(emissions)

    def _materialize(self, emissions: list[tuple[int, Packet]]):
        """Give each emitted packet a distinct identity when copies fan out.

        A single emission keeps the original packet object (preserving uid
        and hop history); multiple emissions (flood) become copies whose
        ``copy_id`` extends with ``(switch, out_port)`` — deterministic and
        independent of the global event interleaving, so equivalent states
        still hash together.
        """
        if len(emissions) <= 1:
            out = emissions
        else:
            out = []
            for port, packet in emissions:
                dup = packet.copy(
                    new_copy_id=packet.copy_id + ((self.switch_id, port),)
                )
                out.append((port, dup))
        for port, packet in out:
            stats = self.port_stats.get(port)
            if stats is not None:
                stats["tx_packets"] += 1
                stats["tx_bytes"] += packet.size
        return out

    # ------------------------------------------------------------------
    # process_of
    # ------------------------------------------------------------------

    def process_of(self) -> list[tuple[int, Packet]]:
        """Apply the next OpenFlow message from the controller.

        Returns emissions (non-empty only for packet-out messages).
        """
        if not self.can_process_of():
            raise SwitchError(f"process_of on {self.switch_id} with empty channel")
        message = self.ofp_in.dequeue()
        return self.apply_of_message(message)

    def apply_of_message(self, message) -> list[tuple[int, Packet]]:
        if isinstance(message, FlowMod):
            self._apply_flow_mod(message)
            return []
        if isinstance(message, PacketOut):
            return self._apply_packet_out(message)
        if isinstance(message, StatsRequest):
            from repro.openflow.messages import OFPST_FLOW

            if message.kind == OFPST_FLOW:
                payload = self.flow_stats_snapshot()
            else:
                payload = self.stats_snapshot()
            self.ofp_out.enqueue(
                StatsReply(self.switch_id, message.kind, payload,
                           xid=message.xid)
            )
            return []
        if isinstance(message, BarrierRequest):
            self.ofp_out.enqueue(BarrierReply(self.switch_id, xid=message.xid))
            return []
        raise SwitchError(f"switch {self.switch_id} cannot handle {message!r}")

    def _apply_flow_mod(self, mod: FlowMod) -> None:
        if mod.command == OFPFC_ADD:
            self.table.install(
                Rule(
                    match=mod.match,
                    actions=mod.actions,
                    priority=mod.priority,
                    idle_timeout=mod.idle_timeout,
                    hard_timeout=mod.hard_timeout,
                    cookie=mod.cookie,
                )
            )
        elif mod.command == OFPFC_DELETE:
            self.table.remove(mod.match, strict=False)
        elif mod.command == OFPFC_DELETE_STRICT:
            self.table.remove(mod.match, priority=mod.priority, strict=True)

    def _apply_packet_out(self, out: PacketOut) -> list[tuple[int, Packet]]:
        if out.buffer_id is not None:
            entry = self.buffers.pop(out.buffer_id, None)
            if entry is None:
                # Unknown / already-released buffer: real switches return an
                # error message; the model records it and moves on.
                self.dropped.append(("bad_buffer", out.buffer_id, None))
                return []
            packet, in_port = entry
        else:
            packet, in_port = out.packet.copy(), -1
        if not out.actions:
            # Empty action list discards the buffered packet: this is how a
            # controller intentionally consumes a packet.
            self.dropped.append(("ctrl_discard", packet.uid, packet.copy_id))
            return []
        from repro.openflow.actions import ActionTable

        if any(isinstance(a, ActionTable) for a in out.actions):
            # OFPP_TABLE: run the packet through the flow table as if it had
            # just arrived on its original port (without re-counting rx).
            rule = self.table.lookup(packet, in_port)
            if rule is None:
                self._buffer_and_notify(packet, in_port, OFPR_NO_MATCH)
                return []
            rule.record_hit(packet.size)
            return self._apply_actions(rule.actions, packet, in_port)
        return self._apply_actions(out.actions, packet, in_port)

    # ------------------------------------------------------------------
    # Expiry, ports, stats
    # ------------------------------------------------------------------

    def expire_rule(self, rule_index: int) -> None:
        """Explicit expiry transition for rule ``rule_index`` (canonical order)."""
        expirable = self.table.expirable_rules()
        if not 0 <= rule_index < len(expirable):
            raise SwitchError(f"no expirable rule {rule_index} on {self.switch_id}")
        rule = expirable[rule_index]
        self.table.remove_rule(rule)
        self.ofp_out.enqueue(
            FlowRemoved(self.switch_id, rule.match, rule.priority,
                        rule.packet_count, rule.byte_count)
        )

    def set_port_state(self, port: int, is_up: bool) -> None:
        if port not in self.port_up:
            raise SwitchError(f"unknown port {port} on {self.switch_id}")
        if self.port_up[port] != is_up:
            self.port_up[port] = is_up
            from repro.openflow.messages import PortStatus

            self.ofp_out.enqueue(PortStatus(self.switch_id, port, is_up))

    def stats_snapshot(self) -> dict:
        """Deep copy of the per-port counters (for stats replies)."""
        return {port: dict(stats) for port, stats in self.port_stats.items()}

    def flow_stats_snapshot(self) -> dict:
        """Per-rule traffic counters, keyed by canonical rule position
        (OFPST_FLOW replies)."""
        return {
            index: {
                "match": rule.match.canonical(),
                "priority": rule.priority,
                "packet_count": rule.packet_count,
                "byte_count": rule.byte_count,
            }
            for index, rule in enumerate(self.table)
        }

    # ------------------------------------------------------------------
    # State serialization
    # ------------------------------------------------------------------

    def canonical(self) -> tuple:
        """Stable serialization of the entire switch state for hashing.

        In canonical mode (Section 2.2.2's merging of equivalent switch
        states) buffer ids are *renumbered* in a content-derived order —
        two interleavings that buffered the same packets in a different
        order still hash together.  References to buffer ids inside pending
        packet-in / packet-out messages are rewritten consistently.  The
        NO-SWITCH-REDUCTION baseline keeps raw ids (and unsorted tables).
        """
        canonical_mode = self.table.canonical_mode
        if canonical_mode and self.buffers:
            order = sorted(
                self.buffers,
                key=lambda bid: (repr(self.buffers[bid][0].canonical()),
                                 self.buffers[bid][1]),
            )
            remap = {bid: index for index, bid in enumerate(order)}
        else:
            remap = {}

        def msg_canonical(message):
            base = message.canonical()
            if not canonical_mode:
                return base
            if isinstance(message, PacketIn) and message.buffer_id in remap:
                return base[:4] + (remap[message.buffer_id],) + base[5:]
            if isinstance(message, PacketOut) and message.buffer_id in remap:
                return base[:1] + (remap[message.buffer_id],) + base[2:]
            return base

        def buffer_key(bid):
            return remap.get(bid, bid) if canonical_mode else bid

        if self.hash_counters:
            stats_part = tuple(sorted(
                (port, tuple(sorted(stats.items())))
                for port, stats in self.port_stats.items()
            ))
        else:
            stats_part = ()
        return (
            self.switch_id,
            self.table.canonical(include_counters=self.hash_counters),
            tuple(self.port_in[p].canonical() for p in self.ports),
            (self.ofp_in.name, self.ofp_in.failed,
             tuple(msg_canonical(m) for m in self.ofp_in.items())),
            (self.ofp_out.name, self.ofp_out.failed,
             tuple(msg_canonical(m) for m in self.ofp_out.items())),
            tuple(sorted(
                (buffer_key(bid), pkt.canonical(), port)
                for bid, (pkt, port) in self.buffers.items()
            )),
            stats_part,
            # self.ports is sorted, so this equals sorted(port_up.items()).
            tuple((p, self.port_up[p]) for p in self.ports),
            tuple(sorted(self.dropped, key=repr)),
        )

    def __repr__(self) -> str:
        return (f"SwitchModel({self.switch_id}, rules={len(self.table)},"
                f" buffered={len(self.buffers)})")
