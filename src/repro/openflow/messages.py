"""OpenFlow control messages exchanged between switches and the controller.

The subset the paper's applications use: packet-in (with the *reason code*
whose mishandling causes BUG-V), packet-out, flow-mod (add / delete /
delete-strict), stats request/reply (port statistics drive the
energy-efficient traffic-engineering application), barrier, port-status, and
flow-removed.  Messages are plain, canonically-serializable value objects.
"""

from __future__ import annotations

from repro.openflow.actions import Action, canonical_actions
from repro.openflow.match import Match
from repro.openflow.packet import Packet
from repro.openflow.rules import PERMANENT

# Flow-mod commands.
OFPFC_ADD = "add"
OFPFC_DELETE = "delete"
OFPFC_DELETE_STRICT = "delete_strict"

# Packet-in reasons.
OFPR_NO_MATCH = "no_match"
OFPR_ACTION = "action"

# Stats kinds.
OFPST_PORT = "port"
OFPST_FLOW = "flow"


class Message:
    """Base class for OpenFlow messages.

    ``seq`` is a model-level stamp (global issue order of controller-to-
    switch messages) used by the UNUSUAL search strategy to recognize and
    reverse "natural" installation orders.  It is not part of message
    equality.
    """

    __slots__ = ("seq", "_canon")

    def canonical(self) -> tuple:
        """Stable serialization for state hashing, cached per instance.

        Messages are immutable once enqueued (``PacketIn``/``PacketOut``
        carry packet references that are never mutated afterwards; ``seq``
        is deliberately outside equality and this form), so each message
        renders exactly once however many times its channel re-hashes.
        """
        canon = getattr(self, "_canon", None)
        if canon is None:
            canon = self._canon = self._render()
        return canon

    def _render(self) -> tuple:
        raise NotImplementedError

    def __eq__(self, other: object) -> bool:
        if type(other) is not type(self):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.canonical()))


class PacketIn(Message):
    """Switch -> controller: a packet needs the controller's attention."""

    __slots__ = ("switch", "in_port", "packet", "buffer_id", "reason")

    def __init__(self, switch: str, in_port: int, packet: Packet,
                 buffer_id: int, reason: str = OFPR_NO_MATCH):
        self.switch = switch
        self.in_port = in_port
        self.packet = packet
        self.buffer_id = buffer_id
        self.reason = reason

    def _render(self) -> tuple:
        return ("packet_in", self.switch, self.in_port,
                self.packet.canonical(), self.buffer_id, self.reason)

    def __repr__(self) -> str:
        return (f"PacketIn(sw={self.switch}, port={self.in_port},"
                f" buf={self.buffer_id}, reason={self.reason}, {self.packet!r})")


class PacketOut(Message):
    """Controller -> switch: release a buffered packet (or send a raw one)."""

    __slots__ = ("buffer_id", "packet", "actions")

    def __init__(self, buffer_id: int | None, packet: Packet | None,
                 actions: list[Action]):
        if buffer_id is None and packet is None:
            raise ValueError("PacketOut needs a buffer_id or a packet")
        self.buffer_id = buffer_id
        self.packet = packet
        self.actions = list(actions)

    def _render(self) -> tuple:
        return (
            "packet_out",
            self.buffer_id if self.buffer_id is not None else "*",
            self.packet.canonical() if self.packet is not None else "*",
            canonical_actions(self.actions),
        )

    def __repr__(self) -> str:
        return f"PacketOut(buf={self.buffer_id}, acts={self.actions!r})"


class FlowMod(Message):
    """Controller -> switch: install or remove rules."""

    __slots__ = ("command", "match", "actions", "priority", "idle_timeout",
                 "hard_timeout", "cookie")

    def __init__(self, command: str, match: Match,
                 actions: list[Action] | None = None,
                 priority: int = 0x8000,
                 idle_timeout: int = PERMANENT,
                 hard_timeout: int = PERMANENT,
                 cookie: int = 0):
        if command not in (OFPFC_ADD, OFPFC_DELETE, OFPFC_DELETE_STRICT):
            raise ValueError(f"unknown flow-mod command {command!r}")
        self.command = command
        self.match = match
        self.actions = list(actions or [])
        self.priority = priority
        self.idle_timeout = idle_timeout
        self.hard_timeout = hard_timeout
        self.cookie = cookie

    def _render(self) -> tuple:
        return ("flow_mod", self.command, self.match.canonical(),
                canonical_actions(self.actions), self.priority,
                self.idle_timeout, self.hard_timeout, self.cookie)

    def __repr__(self) -> str:
        return f"FlowMod({self.command}, {self.match!r}, prio={self.priority})"


class StatsRequest(Message):
    """Controller -> switch: ask for port or flow statistics."""

    __slots__ = ("kind", "xid")

    def __init__(self, kind: str = OFPST_PORT, xid: int = 0):
        self.kind = kind
        self.xid = xid

    def _render(self) -> tuple:
        return ("stats_request", self.kind, self.xid)

    def __repr__(self) -> str:
        return f"StatsRequest({self.kind}, xid={self.xid})"


class StatsReply(Message):
    """Switch -> controller: statistics payload.

    ``stats`` maps port number to a ``{"tx_bytes": ..., "rx_bytes": ...,
    "tx_packets": ..., "rx_packets": ...}`` dict for port stats, or rule
    serializations for flow stats.
    """

    __slots__ = ("switch", "kind", "stats", "xid")

    def __init__(self, switch: str, kind: str, stats: dict, xid: int = 0):
        self.switch = switch
        self.kind = kind
        self.stats = stats
        self.xid = xid

    def _render(self) -> tuple:
        def freeze(obj):
            if isinstance(obj, dict):
                return tuple(sorted((k, freeze(v)) for k, v in obj.items()))
            return obj

        return ("stats_reply", self.switch, self.kind, freeze(self.stats), self.xid)

    def __repr__(self) -> str:
        return f"StatsReply(sw={self.switch}, {self.kind}, xid={self.xid})"


class BarrierRequest(Message):
    """Controller -> switch: flush ordering barrier."""

    __slots__ = ("xid",)

    def __init__(self, xid: int = 0):
        self.xid = xid

    def _render(self) -> tuple:
        return ("barrier_request", self.xid)


class BarrierReply(Message):
    """Switch -> controller: all earlier messages have been processed."""

    __slots__ = ("switch", "xid")

    def __init__(self, switch: str, xid: int = 0):
        self.switch = switch
        self.xid = xid

    def _render(self) -> tuple:
        return ("barrier_reply", self.switch, self.xid)


class PortStatus(Message):
    """Switch -> controller: a port went up or down."""

    __slots__ = ("switch", "port", "is_up")

    def __init__(self, switch: str, port: int, is_up: bool):
        self.switch = switch
        self.port = port
        self.is_up = is_up

    def _render(self) -> tuple:
        return ("port_status", self.switch, self.port, self.is_up)


class FlowRemoved(Message):
    """Switch -> controller: a rule expired or was evicted."""

    __slots__ = ("switch", "match", "priority", "packet_count", "byte_count")

    def __init__(self, switch: str, match: Match, priority: int,
                 packet_count: int, byte_count: int):
        self.switch = switch
        self.match = match
        self.priority = priority
        self.packet_count = packet_count
        self.byte_count = byte_count

    def _render(self) -> tuple:
        return ("flow_removed", self.switch, self.match.canonical(),
                self.priority, self.packet_count, self.byte_count)
